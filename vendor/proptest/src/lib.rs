//! Offline stand-in for the parts of `proptest` this workspace uses:
//! the `proptest!` test macro with `#![proptest_config]`, range
//! strategies (`lo..hi` on integers and floats), and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are drawn from a deterministic per-test generator (seeded from
//! the test name), so failures reproduce across runs. There is no
//! shrinking: a failing case reports its number and message and panics
//! immediately.

use std::ops::Range;

pub mod prelude;

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test body is run with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A rejected test case: message carried back to the runner.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test-identifying value.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Stable 64-bit hash of a test name, for per-test seeds.
    pub fn seed_of(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Sources of test-case values (`lo..hi` ranges here).
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draw one case.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Define property tests: a block of `fn name(arg in strategy, ...)`
/// items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::new($crate::TestRng::seed_of(stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} vs {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            n in 3usize..40,
            x in -2.0f64..2.0,
            b in 0u8..3,
        ) {
            prop_assert!((3..40).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x), "x out of range: {x}");
            prop_assert!(b < 3);
            prop_assert_eq!(n + 1, 1 + n);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0u64..10) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn failures_panic_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(v in 0u64..10) {
                    prop_assert!(v > 100, "v was {v}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails failed on case 1/32"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::new(TestRng::seed_of("t"));
        let mut b = TestRng::new(TestRng::seed_of("t"));
        for _ in 0..10 {
            assert_eq!((0usize..100).pick(&mut a), (0usize..100).pick(&mut b));
        }
    }
}
