//! One-stop imports for property tests, mirroring
//! `proptest::prelude::*`.

pub use crate::{prop_assert, prop_assert_eq, proptest};
pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
