//! Offline stand-in for the parts of `serde` this workspace uses.
//!
//! The build container has no crates.io access, so this vendors a
//! value-tree serialization core: types implement [`Serialize`] /
//! [`Deserialize`] by converting to and from a self-describing
//! [`Value`], and `serde_json` renders/parses that tree. The
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` attributes are
//! provided by the companion `serde_mini_derive` proc-macro crate and
//! support plain structs with named fields — exactly what the bench
//! harness rows need.

pub use serde_mini_derive::{Deserialize, Serialize};

/// Self-describing data tree, the interchange point between typed
/// values and concrete formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number (integers round-trip losslessly up to 2⁵³).
    Num(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key → value map, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object key (linear scan; rows are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn serialize_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `value`, reporting a human-readable error on shape
    /// mismatch.
    fn deserialize_value(value: &Value) -> Result<Self, String>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

// Identity impls: parsing into `Value` itself gives callers the raw
// self-describing tree (e.g. validating documents of unknown shape).
impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, String> {
                match value {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(format!(
                        "expected number for {}, got {other:?}",
                        stringify!($t)
                    )),
                }
            }
        }
    )*};
}
impl_num!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::deserialize_value(&7usize.serialize_value()), Ok(7));
        assert_eq!(
            String::deserialize_value(&"hi".serialize_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<f64>::deserialize_value(&vec![1.5, -2.0].serialize_value()),
            Ok(vec![1.5, -2.0])
        );
        assert_eq!(Option::<u32>::deserialize_value(&Value::Null), Ok(None));
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(bool::deserialize_value(&Value::Num(1.0)).is_err());
        assert!(Vec::<f64>::deserialize_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.get("a"), Some(&Value::Num(1.0)));
        assert_eq!(v.get("b"), None);
    }
}
