//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` stand-in.
//!
//! Written against `proc_macro` alone (no `syn`/`quote` — the build
//! container is offline), so it supports exactly the shape the
//! workspace uses: non-generic structs with named fields. Anything
//! else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Find `struct <Name>`, skipping visibility and attributes.
    let name = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match tokens.get(i + 1) {
                Some(TokenTree::Ident(name)) => {
                    i += 2;
                    break name.to_string();
                }
                _ => return Err("expected a name after `struct`".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("enums are not supported; derive on a named-field struct".into());
            }
            Some(_) => i += 1,
            None => return Err("no `struct` found in derive input".into()),
        }
    };

    // Find the `{ ... }` body; a `<` first would mean generics.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("generic structs are not supported".into());
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("unit/tuple structs are not supported".into());
            }
            Some(_) => i += 1,
            None => return Err("struct has no `{ ... }` body".into()),
        }
    };

    // Walk the fields: `[attrs] [pub[(..)]] name : Type ,`
    let body: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut j = 0;
    while j < body.len() {
        // Skip attributes (including doc comments).
        while matches!(&body[j], TokenTree::Punct(p) if p.as_char() == '#') {
            j += 1; // '#'
            if matches!(body.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                j += 1;
            } else {
                return Err("malformed attribute in struct body".into());
            }
        }
        // Skip visibility.
        if matches!(&body[j], TokenTree::Ident(id) if id.to_string() == "pub") {
            j += 1;
            if matches!(body.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                j += 1;
            }
        }
        // Field name and ':'.
        let field = match body.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        j += 1;
        match body.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, got {other:?} (tuple structs unsupported)"
                ));
            }
        }
        fields.push(field);
        // Skip the type up to the next top-level comma, counting angle
        // brackets so `Vec<(A, B)>`-style generics don't split early.
        let mut angle_depth = 0i32;
        while j < body.len() {
            match &body[j] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    if fields.is_empty() {
        return Err("struct has no fields".into());
    }
    Ok(StructShape { name, fields })
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return error(&format!("#[derive(Serialize)]: {e}")),
    };
    let mut pairs = String::new();
    for f in &shape.fields {
        pairs.push_str(&format!(
            "(::std::string::String::from({f:?}), \
             ::serde::Serialize::serialize_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{pairs}])\n\
             }}\n\
         }}",
        name = shape.name
    )
    .parse()
    .unwrap()
}

/// Derive `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return error(&format!("#[derive(Deserialize)]: {e}")),
    };
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::deserialize_value(\
                 value.get({f:?}).ok_or_else(|| \
                     ::std::string::String::from(concat!(\"missing field `\", {f:?}, \"`\")))?\
             )?,"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = shape.name
    )
    .parse()
    .unwrap()
}
