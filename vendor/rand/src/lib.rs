//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a minimal, API-compatible subset: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] convenience methods
//! `gen` / `gen_range` / `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic per seed, statistically
//! solid for test workloads, but **not** the same stream as the real
//! `StdRng` (ChaCha12). Nothing in the workspace depends on the exact
//! stream, only on seed-reproducibility.

use std::ops::Range;

/// Core random source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (only the `seed_from_u64` form is needed).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like `rand_core` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2⁶⁴, irrelevant for test spans.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Convenience sampling methods, blanket-implemented for every core
/// generator like the real crate does.
pub trait Rng: RngCore {
    /// Sample a value over its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator (xoshiro256++ here;
    /// ChaCha12 in the real crate — streams differ, determinism holds).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(0usize..17);
            assert!(n < 17);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
