//! Offline stand-in for the parts of `serde_json` this workspace uses:
//! [`to_string_pretty`] and [`from_str`], over the vendored `serde`
//! value tree.

use serde::{Deserialize, Serialize, Value};

/// JSON error (message only).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize_value(&value).map_err(Error)
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // the writer infallible, which is all the harness needs.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_str(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                write_str(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    pairs.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            // Surrogate pairs are not needed by the
                            // harness's ASCII field names/values.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig5 \"quick\"".into())),
            ("n".into(), Value::Num(1536.0)),
            ("gflops".into(), Value::Num(12.25)),
            ("ok".into(), Value::Bool(true)),
            (
                "sizes".into(),
                Value::Array(vec![Value::Num(1.0), Value::Num(-2.5)]),
            ),
            ("none".into(), Value::Null),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn serialize_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Raw {
            fn deserialize_value(value: &Value) -> Result<Self, String> {
                Ok(Raw(value.clone()))
            }
        }
        let text = to_string_pretty(&Raw(v.clone())).unwrap();
        let back: Raw = from_str(&text).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn integers_render_without_fraction() {
        let text = to_string_pretty(&1536usize).unwrap();
        assert_eq!(text, "1536");
    }

    #[test]
    fn typed_vec_parses() {
        let v: Vec<f64> = from_str("[1, 2.5, -3e2]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, -300.0]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<Vec<f64>>("[1] tail").is_err());
    }
}
