//! Offline stand-in for the parts of `rayon` this workspace uses:
//! [`join`], [`scope`], [`spawn`], [`current_num_threads`], and
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`], plus the
//! `par_chunks[_mut]` slice iterators in [`prelude`].
//!
//! The build container has no crates.io access, so this crate is a thin
//! facade over the in-tree work-stealing scheduler
//! [`fmm_runtime`](../fmm_runtime/index.html): per-worker Chase–Lev
//! deques, a global injector, parked idle workers, and work-stealing
//! `join`/`scope` waits — real rayon semantics (panic propagation,
//! scoped borrows, nesting, pool `install`) on a real scheduler.
//!
//! The code in this workspace is written against the published rayon
//! 1.x API, so **switching to the real rayon** on a networked machine
//! remains the documented one-line swap: replace the
//! `rayon = { path = "vendor/rayon" }` workspace dependency with
//! `rayon = "1"` and drop the vendor member. (The scheduler statistics
//! that go beyond rayon's API — steal counters, worker indices — are
//! deliberately *not* exported here; `fmm-core` reads them from
//! `fmm-runtime` directly so this facade stays swap-compatible.)

pub mod prelude;

pub use fmm_runtime::{
    current_num_threads, join, scope, spawn, Scope, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn nested_joins_do_not_explode() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(18), 2584);
    }

    #[test]
    fn scope_runs_every_task() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        join(|| (), || panic!("boom"));
    }

    #[test]
    fn install_overrides_advertised_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn panicking_install_propagates_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| -> () { panic!("boom") });
        }));
        assert!(r.is_err());
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn width_one_pool_runs_joins_sequentially_correct() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let (a, b) = pool.install(|| join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }
}
