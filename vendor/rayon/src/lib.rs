//! Offline stand-in for the parts of `rayon` this workspace uses:
//! [`join`], [`scope`], [`current_num_threads`], and
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`].
//!
//! The build container has no crates.io access, so instead of a
//! work-stealing deque this maps tasks onto `std::thread::scope`
//! threads, capped by a global live-thread counter: once the cap is
//! reached, `join`/`spawn` degrade to sequential calls. That preserves
//! rayon's semantics (panic propagation, scoped borrows, nesting) and
//! gives real parallelism on the coarse outer levels where it matters,
//! without the risk of unbounded thread explosions from fine-grained
//! recursive joins.
//!
//! `ThreadPool::install` does not own threads; it sets a thread-local
//! override consulted by [`current_num_threads`] so callers that shape
//! their splits from the advertised width behave as if inside a pool of
//! that size, and clamps the spawn cap accordingly.

use std::cell::Cell;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude;

/// Live helper threads spawned by `join`/`scope` across the process.
static LIVE_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Pool-width override installed by [`ThreadPool::install`].
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Advertised parallelism: the installed pool width, or the hardware
/// thread count outside any pool.
pub fn current_num_threads() -> usize {
    POOL_WIDTH
        .with(|w| w.get())
        .unwrap_or_else(hardware_threads)
}

/// Extra threads this call site may spawn right now. Inside a pool of
/// width 1 this is 0, which makes `join`/`spawn` fully sequential.
fn spawn_budget() -> usize {
    let cap = current_num_threads().saturating_sub(1);
    cap.saturating_sub(LIVE_THREADS.load(Ordering::Relaxed))
}

/// Increments `LIVE_THREADS` for its lifetime; the `Drop` impl makes
/// the decrement unwind-safe, so a panicking task cannot permanently
/// shrink the process-wide spawn budget.
struct LiveThreadGuard;

impl LiveThreadGuard {
    fn acquire() -> Self {
        LIVE_THREADS.fetch_add(1, Ordering::Relaxed);
        LiveThreadGuard
    }
}

impl Drop for LiveThreadGuard {
    fn drop(&mut self) {
        LIVE_THREADS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Restores the caller's `POOL_WIDTH` override on drop, panic or not.
struct PoolWidthGuard {
    prev: Option<usize>,
}

impl PoolWidthGuard {
    fn set(width: usize) -> Self {
        PoolWidthGuard {
            prev: POOL_WIDTH.with(|w| w.replace(Some(width))),
        }
    }
}

impl Drop for PoolWidthGuard {
    fn drop(&mut self) {
        POOL_WIDTH.with(|w| w.set(self.prev));
    }
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Panics in either closure propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if spawn_budget() == 0 {
        return (oper_a(), oper_b());
    }
    let _live = LiveThreadGuard::acquire();
    std::thread::scope(|s| {
        let width = current_num_threads();
        let handle = s.spawn(move || {
            // Child threads inherit the caller's pool width so nested
            // width-sensitive splits stay consistent.
            POOL_WIDTH.with(|w| w.set(Some(width)));
            oper_b()
        });
        let ra = oper_a();
        let rb = match handle.join() {
            Ok(rb) => rb,
            Err(payload) => panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Scope handle passed to [`scope`] closures; `spawn` schedules a task
/// that must finish before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    width: usize,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Run `body` on a scoped thread when under the cap, inline
    /// otherwise.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        if spawn_budget() == 0 {
            body(self);
            return;
        }
        LIVE_THREADS.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner;
        let width = self.width;
        inner.spawn(move || {
            // Adopt the increment done by the spawning thread; drops
            // (and decrements) even if `body` panics.
            let _live = LiveThreadGuard;
            POOL_WIDTH.with(|w| w.set(Some(width)));
            body(&Scope { inner, width });
        });
    }
}

/// Structured task scope: every task spawned inside completes before
/// `scope` returns; task panics propagate.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    let width = current_num_threads();
    std::thread::scope(|s| f(&Scope { inner: s, width }))
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here, but
/// callers `unwrap`/`expect` it).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default (hardware) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the pool width; `0` means "default", as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the (virtual) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            width: self.num_threads.unwrap_or_else(hardware_threads),
        })
    }
}

/// A virtual pool: a width that [`install`](ThreadPool::install) makes
/// visible through [`current_num_threads`] for the duration of a call.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's width advertised to
    /// `current_num_threads` and the spawn cap.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let _width = PoolWidthGuard::set(self.width);
        op()
    }

    /// This pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::{Mutex, MutexGuard};

    /// `LIVE_THREADS` is process-global, so tests that spawn tasks or
    /// assert on the counter must not interleave with each other.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        // A `should_panic` test poisons the lock by design; the data
        // is `()`, so poisoning carries no state worth rejecting.
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn join_returns_both_results() {
        let _serial = serial();
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn nested_joins_do_not_explode() {
        let _serial = serial();
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(18), 2584);
    }

    #[test]
    fn scope_runs_every_task() {
        let _serial = serial();
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        let _serial = serial();
        join(|| (), || panic!("boom"));
    }

    #[test]
    fn panicking_join_releases_spawn_budget() {
        let _serial = serial();
        let before = LIVE_THREADS.load(Ordering::Relaxed);
        let _ = std::panic::catch_unwind(|| join(|| (), || panic!("boom")));
        assert_eq!(LIVE_THREADS.load(Ordering::Relaxed), before);
    }

    #[test]
    fn panicking_install_restores_width() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let _ = std::panic::catch_unwind(|| {
            pool.install(|| -> () { panic!("boom") });
        });
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn install_overrides_advertised_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn width_one_pool_is_sequential() {
        let _serial = serial();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            let before = LIVE_THREADS.load(Ordering::Relaxed);
            join(
                || assert_eq!(LIVE_THREADS.load(Ordering::Relaxed), before),
                || (),
            );
        });
    }
}
