//! Parallel-iterator subset: `par_chunks` / `par_chunks_mut` with
//! `zip` and `for_each`, backed by `fmm_runtime::iter`'s recursive
//! splitting (work actually spreads across the pool, unlike the old
//! sequential stand-in).

pub use fmm_runtime::iter::{
    IndexedParallelIterator, ParChunks, ParChunksMut, ParallelSlice, ParallelSliceMut, Zip,
};
