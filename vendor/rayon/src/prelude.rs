//! Parallel-iterator subset: `par_chunks` / `par_chunks_mut`.
//!
//! These return the standard sequential chunk iterators, so `.zip`,
//! `.for_each` and friends come from `std::iter::Iterator`. Work is
//! therefore *not* spread across threads on this path — acceptable for
//! the one bandwidth microbenchmark that uses it; revisit if a hot path
//! ever adopts `par_chunks`.

/// `par_chunks` for shared slices.
pub trait ParallelSlice<T> {
    /// Chunked view of the slice, `chunk_size` elements per chunk.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_chunks_mut` for mutable slices.
pub trait ParallelSliceMut<T> {
    /// Chunked mutable view of the slice.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}
