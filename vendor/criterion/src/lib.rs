//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build container has no crates.io access; this keeps the three
//! `crates/bench` benchmark targets compiling and gives `cargo bench` a
//! useful median/min report, without criterion's statistics, warm-up
//! calibration, or HTML output.

use std::time::Instant;

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            _crit: self,
            sample_size: 20,
        }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _crit: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one closure under this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// End the group (reports are printed eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { times: Vec::new() };
    // One untimed warm-up sample, then the measured ones.
    f(&mut b);
    b.times.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    b.times.sort_by(|a, b| a.total_cmp(b));
    if b.times.is_empty() {
        eprintln!("{name:<32} (no samples)");
        return;
    }
    let median = b.times[b.times.len() / 2];
    eprintln!(
        "{name:<32} median {:>12} min {:>12}  ({} samples)",
        fmt_secs(median),
        fmt_secs(b.times[0]),
        b.times.len()
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// Per-iteration timer handle.
pub struct Bencher {
    times: Vec<f64>,
}

impl Bencher {
    /// Time one sample of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.times.push(start.elapsed().as_secs_f64());
    }
}

/// Group benchmark targets into a runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut crit = $crate::Criterion::default();
            $($target(&mut crit);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export of `std::hint::black_box` for API compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_macro_produces_runner() {
        benches();
    }
}
