//! Facade crate: re-exports the full fast-matmul workspace API.
pub use fmm_algo as algo;
pub use fmm_core as core;
pub use fmm_gemm as gemm;
pub use fmm_matrix as matrix;
pub use fmm_search as search;
pub use fmm_tensor as tensor;
