//! Facade crate: re-exports the full fast-matmul workspace API.
//!
//! # Quickstart: plan once, execute many
//!
//! The primary entry point is the plan/execute API of [`core`]
//! (`fmm-core`): a [`core::Planner`] resolves the algorithm, recursion
//! depth (§3.4 cutoff rule, optionally from a measured
//! [`core::GemmProfile`]), parallel scheme and addition strategy into
//! an immutable [`core::Plan`], and executing the plan against a
//! reusable [`core::Workspace`] allocates nothing after the first call:
//!
//! ```
//! use fast_matmul::algo;
//! use fast_matmul::core::{GemmProfile, Planner, Workspace};
//! use fast_matmul::matrix::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Plan: pick depth for this machine profile and problem shape.
//! let profile = GemmProfile::from_samples(vec![(64, 4.0), (4096, 4.0)]);
//! let plan = Planner::new()
//!     .shape(256, 256, 256)
//!     .algorithm(&algo::strassen())
//!     .profile(profile)
//!     .plan()
//!     .unwrap();
//!
//! // Execute: repeated multiplies reuse one workspace, zero alloc.
//! let mut ws = Workspace::for_plan(&plan);
//! let mut rng = StdRng::seed_from_u64(1);
//! let a = Matrix::random(256, 256, &mut rng);
//! let b = Matrix::random(256, 256, &mut rng);
//! let mut c = Matrix::zeros(256, 256);
//! for _ in 0..3 {
//!     plan.execute(&a, &b, &mut c, &mut ws);
//! }
//!
//! // Batched front door: independent same-shape products in parallel.
//! let outs = plan.execute_batch(&[(&a, &b), (&b, &a)]);
//! assert_eq!(outs.len(), 2);
//! ```
//!
//! Let the planner choose the algorithm too, ranked for the problem
//! shape by [`algo::candidates_for_shape`]:
//!
//! ```no_run
//! use fast_matmul::{algo, core::{GemmProfile, Planner}};
//! let cands: Vec<_> = algo::candidates_for_shape(2000, 100, 2000)
//!     .into_iter()
//!     .map(|a| a.dec)
//!     .collect();
//! let plan = Planner::new()
//!     .shape(2000, 100, 2000)
//!     .auto_algorithm(&cands)
//!     .profile(GemmProfile::measure(&[128, 256, 512, 1024]))
//!     .plan::<f64>() // or ::<f32> — see "Element types" below
//!     .unwrap();
//! ```
//!
//! [`core::FastMul`] remains the low-level shape-agnostic path (it
//! sizes and allocates one workspace per call) for one-shot multiplies.
//!
//! # Element types
//!
//! The stack is generic over [`matrix::Scalar`] with `f64` defaults
//! throughout ([`matrix::Matrix`] is `DenseMatrix<f64>`; `Plan`,
//! `Workspace`, `FmmEngine` default their parameter), and `f32` ships
//! as a second instantiation — `FmmEngine::<f32>::builder()`,
//! `Planner::plan::<f32>()`, `DenseMatrix::<f32>` — doubling SIMD
//! width and halving memory traffic on the hot path. See the README's
//! "Element types" section for the migration note (existing code
//! changes nothing) and the GF(2)/semiring extension point.
//!
//! # Serving: the engine
//!
//! For long-lived processes that multiply *many* shapes from many
//! threads, [`FmmEngine`] wraps the whole lifecycle — a work-stealing
//! thread pool, an LRU plan cache that auto-plans new shapes from the
//! catalog, and a workspace pool, so steady-state serving allocates
//! nothing. Submit synchronously or get a handle back:
//!
//! ```
//! use fast_matmul::FmmEngine;
//! use fast_matmul::matrix::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let engine = FmmEngine::builder().threads(2).build().unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//! let a = Matrix::random(96, 96, &mut rng);
//! let b = Matrix::random(96, 96, &mut rng);
//!
//! let c = engine.multiply(&a, &b).unwrap();          // sync
//! let handle = engine.submit(a.clone(), b.clone());  // async
//! assert_eq!(handle.wait().unwrap(), c);
//! assert_eq!(engine.stats().plan_cache_hits, 1);
//! ```
//!
//! # Serving across processes: the fleet
//!
//! [`serve`] (`fmm-serve`) scales the engine past one process: shard
//! binaries each hosting an engine behind a Unix socket, a router that
//! hashes shapes onto shards (plan caches stay hot), retries
//! interrupted work onto siblings and respawns dead shards, and a
//! [`serve::ServeClient`] speaking the length-prefixed wire protocol.
//! See the README's "Serving tier" section and
//! `examples/serving_fleet.rs`.
//!
//! # Observability
//!
//! [`trace`] (`fmm-trace`) instruments the whole stack: every engine
//! keeps always-on log-bucketed latency histograms per shape class and
//! dtype (`EngineStats::latency`, merged fleet-wide into
//! `serve::FleetStats`), and `trace::set_enabled(true)` turns on span
//! recording — plan lookups, workspace checkouts, additions, base-case
//! gemms, steals/parks, RPC phases — exportable as Chrome/Perfetto
//! trace JSON or a textual per-worker timeline. See the README's
//! "Observability" section.
//!
//! The high-level types are re-exported at the root — `use
//! fast_matmul::{FmmEngine, Planner, Plan, Workspace, Options}` — so
//! typical users never need the `fast_matmul::core::...` paths.
pub use fmm_algo as algo;
pub use fmm_core as core;
pub use fmm_gemm as gemm;
pub use fmm_gf2 as gf2;
pub use fmm_matrix as matrix;
pub use fmm_search as search;
pub use fmm_serve as serve;
pub use fmm_tensor as tensor;
pub use fmm_trace as trace;
pub use fmm_verify as verify;

pub use fmm_core::{
    EngineBuilder, EngineError, EngineStats, FastMul, FmmEngine, GemmProfile, MultiplyHandle,
    Options, Plan, PlanCertificate, PlanError, Planner, Workspace,
};
