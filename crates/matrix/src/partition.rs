//! Block-grid partitioning and the dynamic-peeling split.
//!
//! A fast algorithm with base case `⟨M, K, N⟩` views its `P × Q` and
//! `Q × R` operands as `M × K` and `K × N` grids of equally-sized blocks.
//! When the dimensions do not divide evenly, the paper handles the
//! remainder with **dynamic peeling** (§3.5): at each recursive level the
//! divisible leading part recurses and thin boundary strips are fixed up
//! with classical multiplications.

use crate::scalar::Scalar;
use crate::view::{MatMut, MatRef};

/// Uniform grid description of a matrix: `br × bc` blocks, each
/// `rs × cs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Blocks per column of the grid (row direction count).
    pub br: usize,
    /// Blocks per row of the grid (column direction count).
    pub bc: usize,
    /// Rows per block.
    pub rs: usize,
    /// Columns per block.
    pub cs: usize,
}

impl Grid {
    /// Grid for splitting a `rows × cols` matrix into `br × bc` equal
    /// blocks.
    ///
    /// # Panics
    /// Panics when the dimensions are not divisible.
    pub fn new(rows: usize, cols: usize, br: usize, bc: usize) -> Self {
        assert!(rows.is_multiple_of(br), "rows {rows} not divisible by {br}");
        assert!(cols.is_multiple_of(bc), "cols {cols} not divisible by {bc}");
        Grid {
            br,
            bc,
            rs: rows / br,
            cs: cols / bc,
        }
    }

    /// Immutable view of block `(i, j)`.
    #[inline]
    pub fn block<'a, T: Scalar>(&self, m: &MatRef<'a, T>, i: usize, j: usize) -> MatRef<'a, T> {
        debug_assert!(i < self.br && j < self.bc);
        m.block(i * self.rs, j * self.cs, self.rs, self.cs)
    }

    /// All `br·bc` blocks in row-major order.
    pub fn blocks<'a, T: Scalar>(&self, m: &MatRef<'a, T>) -> Vec<MatRef<'a, T>> {
        let mut v = Vec::with_capacity(self.br * self.bc);
        for i in 0..self.br {
            for j in 0..self.bc {
                v.push(self.block(m, i, j));
            }
        }
        v
    }

    /// Partition a mutable view into all blocks in row-major order.
    pub fn blocks_mut<'a, T: Scalar>(&self, m: MatMut<'a, T>) -> Vec<MatMut<'a, T>> {
        let rcuts: Vec<usize> = (1..self.br).map(|i| i * self.rs).collect();
        let ccuts: Vec<usize> = (1..self.bc).map(|j| j * self.cs).collect();
        m.split_grid(&rcuts, &ccuts)
    }
}

/// The dynamic-peeling decomposition of a `P × Q × R` multiplication for
/// base case `⟨m, k, n⟩`: the *core* dimensions are the largest multiples
/// of the base dims, and the remainder strips are handled classically.
///
/// Writing `A = [A11 A12; A21 A22]`, `B = [B11 B12; B21 B22]` with `A11:
/// p1×q1`, `B11: q1×r1`, the recursive call computes `A11·B11` and the
/// fix-up multiplications are
///
/// ```text
/// C11 += A12·B21          C12  = A11·B12 + A12·B22
/// C21  = A21·B11 + A22·B21   C22 = A21·B12 + A22·B22
/// ```
///
/// all of which have at least one thin dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeelSplit {
    /// Core rows of A / C (`P − P mod m`).
    pub p1: usize,
    /// Core inner dimension (`Q − Q mod k`).
    pub q1: usize,
    /// Core columns of B / C (`R − R mod n`).
    pub r1: usize,
    /// Remainder rows (`P mod m`).
    pub dp: usize,
    /// Remainder inner (`Q mod k`).
    pub dq: usize,
    /// Remainder cols (`R mod n`).
    pub dr: usize,
}

impl PeelSplit {
    /// Compute the peel split of `P × Q × R` for base `⟨m, k, n⟩`.
    pub fn new(p: usize, q: usize, r: usize, m: usize, k: usize, n: usize) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "base dims must be positive");
        PeelSplit {
            p1: p - p % m,
            q1: q - q % k,
            r1: r - r % n,
            dp: p % m,
            dq: q % k,
            dr: r % n,
        }
    }

    /// True when no peeling is necessary at this level.
    pub fn is_exact(&self) -> bool {
        self.dp == 0 && self.dq == 0 && self.dr == 0
    }

    /// True when the core problem is empty (dimensions smaller than the
    /// base case), in which case the whole product must be done
    /// classically.
    pub fn core_is_empty(&self) -> bool {
        self.p1 == 0 || self.q1 == 0 || self.r1 == 0
    }
}

/// Largest recursion depth `L` such that every level of an `⟨m,k,n⟩`
/// algorithm sees sub-blocks no smaller than `min_dim` on the core
/// problem (a simple static form of the paper's §3.4 cutoff rule).
pub fn max_steps_for(
    p: usize,
    q: usize,
    r: usize,
    m: usize,
    k: usize,
    n: usize,
    min_dim: usize,
) -> usize {
    let mut steps = 0;
    let (mut p, mut q, mut r) = (p, q, r);
    while p / m >= min_dim && q / k >= min_dim && r / n >= min_dim {
        p /= m;
        q /= k;
        r /= n;
        steps += 1;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn grid_blocks_tile_matrix() {
        let m = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64);
        let g = Grid::new(6, 4, 3, 2);
        assert_eq!(g.rs, 2);
        assert_eq!(g.cs, 2);
        let v = m.as_ref();
        let b = g.block(&v, 2, 1);
        assert_eq!(b.get(0, 0), m[(4, 2)]);
        assert_eq!(g.blocks(&v).len(), 6);
    }

    #[test]
    fn grid_blocks_mut_disjoint() {
        let mut m = Matrix::zeros(4, 6);
        let g = Grid::new(4, 6, 2, 3);
        let blocks = g.blocks_mut(m.as_mut());
        assert_eq!(blocks.len(), 6);
        for (i, mut b) in blocks.into_iter().enumerate() {
            b.fill((i + 1) as f64);
        }
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(0, 4)], 3.0);
        assert_eq!(m[(3, 1)], 4.0);
        assert_eq!(m[(3, 3)], 5.0);
        assert_eq!(m[(3, 5)], 6.0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn grid_requires_divisibility() {
        let _ = Grid::new(5, 4, 2, 2);
    }

    #[test]
    fn peel_split_exact_case() {
        let s = PeelSplit::new(8, 8, 8, 2, 2, 2);
        assert!(s.is_exact());
        assert_eq!(s.p1, 8);
    }

    #[test]
    fn peel_split_remainders() {
        let s = PeelSplit::new(9, 10, 11, 2, 3, 4);
        assert_eq!((s.p1, s.q1, s.r1), (8, 9, 8));
        assert_eq!((s.dp, s.dq, s.dr), (1, 1, 3));
        assert!(!s.is_exact());
        assert!(!s.core_is_empty());
    }

    #[test]
    fn peel_split_core_empty_for_tiny_problems() {
        let s = PeelSplit::new(1, 5, 5, 2, 2, 2);
        assert!(s.core_is_empty());
    }

    #[test]
    fn max_steps_examples() {
        // 128 with base 2 and floor 16: 128→64→32→16, three steps.
        assert_eq!(max_steps_for(128, 128, 128, 2, 2, 2, 16), 3);
        // 100×1600×100 with base ⟨4,2,4⟩: one step leaves 25×800×25,
        // whose row dim 25 admits no further step above floor 8.
        assert_eq!(max_steps_for(100, 1600, 100, 4, 2, 4, 8), 1);
        assert_eq!(max_steps_for(10, 10, 10, 2, 2, 2, 16), 0);
    }
}
