//! Dense matrix substrate for the fast matrix multiplication workspace.
//!
//! This crate provides the storage layer every other crate builds on:
//!
//! * [`Matrix`] — an owned, dense, **row-major** `f64` matrix. Row-major
//!   matches the row-wise vectorization `vec(A)` used throughout the paper
//!   (Benson & Ballard, PPoPP 2015, §2.2.2), so entry `(i, j)` of an
//!   `M × K` matrix is element `i*K + j` of its vectorization.
//! * [`MatRef`] / [`MatMut`] — borrowed, possibly strided views used to
//!   address submatrix blocks without copying. All recursive block
//!   arithmetic in `fmm-core` operates on views.
//! * [`kernels`] — the bandwidth-bound addition kernels (`axpy`,
//!   write-once linear combinations, streaming scatter updates) that
//!   implement the three addition strategies of §3.2, in both sequential
//!   and rayon-parallel forms.
//! * [`partition`] — block-grid partitioning and the dynamic-peeling
//!   split (§3.5) used to handle arbitrary matrix dimensions.

mod dense;
pub mod kernels;
pub mod partition;
mod view;

pub use dense::Matrix;
pub use view::{MatMut, MatRef};

/// Maximum absolute difference between two equally-sized matrices.
///
/// Returns `None` when shapes differ.
pub fn max_abs_diff(a: &MatRef<'_>, b: &MatRef<'_>) -> Option<f64> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return None;
    }
    let mut m = 0.0f64;
    for i in 0..a.rows() {
        let ra = a.row(i);
        let rb = b.row(i);
        for j in 0..a.cols() {
            let d = (ra[j] - rb[j]).abs();
            if d > m {
                m = d;
            }
        }
    }
    Some(m)
}

/// Frobenius norm of a matrix view.
pub fn frobenius(a: &MatRef<'_>) -> f64 {
    let mut s = 0.0f64;
    for i in 0..a.rows() {
        for &x in a.row(i) {
            s += x * x;
        }
    }
    s.sqrt()
}

/// Relative forward error `‖A − B‖_F / ‖B‖_F` with `B` the reference.
///
/// When the reference has a (near-)zero norm this falls back to the
/// absolute Frobenius norm of the difference.
pub fn relative_error(a: &MatRef<'_>, reference: &MatRef<'_>) -> f64 {
    assert_eq!(a.rows(), reference.rows(), "row mismatch");
    assert_eq!(a.cols(), reference.cols(), "col mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for i in 0..a.rows() {
        let ra = a.row(i);
        let rb = reference.row(i);
        for j in 0..a.cols() {
            let d = ra[j] - rb[j];
            num += d * d;
            den += rb[j] * rb[j];
        }
    }
    if den <= f64::MIN_POSITIVE {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(max_abs_diff(&a.as_ref(), &b.as_ref()).is_none());
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let a = Matrix::from_fn(4, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(relative_error(&a.as_ref(), &a.as_ref()), 0.0);
    }

    #[test]
    fn frobenius_of_ones() {
        let a = Matrix::filled(3, 3, 1.0);
        assert!((frobenius(&a.as_ref()) - 3.0).abs() < 1e-14);
    }
}
