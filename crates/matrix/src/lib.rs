//! Dense matrix substrate for the fast matrix multiplication workspace.
//!
//! This crate provides the storage layer every other crate builds on:
//!
//! * [`DenseMatrix<T>`] — an owned, dense, **row-major** matrix, generic
//!   over the element type. Row-major matches the row-wise vectorization
//!   `vec(A)` used throughout the paper (Benson & Ballard, PPoPP 2015,
//!   §2.2.2), so entry `(i, j)` of an `M × K` matrix is element
//!   `i*K + j` of its vectorization. The [`Matrix`] alias pins the
//!   element type to `f64`, which keeps the historical API intact.
//! * [`MatRef`] / [`MatMut`] — borrowed, possibly strided views used to
//!   address submatrix blocks without copying. All recursive block
//!   arithmetic in `fmm-core` operates on views.
//! * [`kernels`] — the bandwidth-bound addition kernels (`axpy`,
//!   write-once linear combinations, streaming scatter updates) that
//!   implement the three addition strategies of §3.2, in both sequential
//!   and rayon-parallel forms.
//! * [`partition`] — block-grid partitioning and the dynamic-peeling
//!   split (§3.5) used to handle arbitrary matrix dimensions.
//!
//! # Element types: the [`Scalar`] seam
//!
//! The paper's framework is element-type agnostic — recursion, addition
//! strategies and peeling only need a ring whose elements scale by the
//! (real) decomposition coefficients. The [`Scalar`] trait captures
//! that contract, and every layer above this crate is generic over it:
//! `f64` is the default everywhere (via default type parameters, so
//! existing code changes nothing), `f32` ships as a second
//! instantiation (half the memory traffic, twice the SIMD width on the
//! hot path), and [`Scalar::from_coeff`] returning `Option` is the
//! designed extension point where a future non-field backend (e.g.
//! bit-packed GF(2)) rejects the fractional coefficients of APA
//! algorithms instead of computing nonsense.

mod dense;
pub mod kernels;
pub mod partition;
mod scalar;
mod view;

pub use dense::DenseMatrix;
pub use scalar::{AccumScalar, Scalar};
pub use view::{MatMut, MatRef};

/// The workspace's historical element type: a dense `f64` matrix.
///
/// Every pre-generics API keeps compiling against this alias; code that
/// wants another element type names [`DenseMatrix`] explicitly.
pub type Matrix = DenseMatrix<f64>;

/// Maximum absolute difference between two equally-sized matrices, in
/// the element type's wide accumulator ([`Scalar::Accum`]).
///
/// Returns `None` when shapes differ.
pub fn max_abs_diff<T: Scalar>(a: &MatRef<'_, T>, b: &MatRef<'_, T>) -> Option<T::Accum> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return None;
    }
    let mut m = T::Accum::ZERO;
    for i in 0..a.rows() {
        let ra = a.row(i);
        let rb = b.row(i);
        for j in 0..a.cols() {
            let d = (ra[j].to_accum() - rb[j].to_accum()).abs();
            if d > m {
                m = d;
            }
        }
    }
    Some(m)
}

/// Frobenius norm of a matrix view, accumulated in [`Scalar::Accum`]
/// (so `f32` norms do not lose the digits §6 measures).
pub fn frobenius<T: Scalar>(a: &MatRef<'_, T>) -> T::Accum {
    let mut s = T::Accum::ZERO;
    for i in 0..a.rows() {
        for &x in a.row(i) {
            let w = x.to_accum();
            s = s + w * w;
        }
    }
    s.sqrt()
}

/// Relative forward error `‖A − B‖_F / ‖B‖_F` with `B` the reference.
///
/// When the reference norm is below [`Scalar::tiny_norm`] — the
/// smallest positive normal magnitude of the *element* type, so the
/// guard scales with the dtype instead of being hard-coded to
/// `f64::MIN_POSITIVE` — this falls back to the absolute Frobenius norm
/// of the difference.
pub fn relative_error<T: Scalar>(a: &MatRef<'_, T>, reference: &MatRef<'_, T>) -> T::Accum {
    assert_eq!(a.rows(), reference.rows(), "row mismatch");
    assert_eq!(a.cols(), reference.cols(), "col mismatch");
    let mut num = T::Accum::ZERO;
    let mut den = T::Accum::ZERO;
    for i in 0..a.rows() {
        let ra = a.row(i);
        let rb = reference.row(i);
        for j in 0..a.cols() {
            let d = ra[j].to_accum() - rb[j].to_accum();
            let r = rb[j].to_accum();
            num = num + d * d;
            den = den + r * r;
        }
    }
    // `den` is the *squared* norm; compare in norm units (squaring the
    // guard instead would underflow to 0 for f64::MIN_POSITIVE).
    if den.sqrt() <= T::tiny_norm() {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(max_abs_diff(&a.as_ref(), &b.as_ref()).is_none());
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let a = Matrix::from_fn(4, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(relative_error(&a.as_ref(), &a.as_ref()), 0.0);
    }

    #[test]
    fn frobenius_of_ones() {
        let a = Matrix::filled(3, 3, 1.0);
        assert!((frobenius(&a.as_ref()) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn f32_norms_accumulate_in_f64() {
        let a = DenseMatrix::<f32>::filled(3, 3, 1.0);
        let f: f64 = frobenius(&a.as_ref());
        assert!((f - 3.0).abs() < 1e-14);
        let b = DenseMatrix::<f32>::filled(3, 3, 1.0 + f32::EPSILON);
        let e: f64 = relative_error(&b.as_ref(), &a.as_ref());
        // The perturbation is one f32 ulp — visible because the
        // accumulator is f64, and of f32-epsilon magnitude.
        assert!(e > 0.0 && e < 1e-6, "error {e}");
    }

    #[test]
    fn relative_error_guard_scales_with_the_element_type() {
        // A subnormal-f32-norm reference: under the old f64::MIN_POSITIVE
        // guard this would divide by a denormal-squared denominator and
        // explode; the per-type guard falls back to the absolute norm.
        let tiny = f32::MIN_POSITIVE / 4.0;
        let reference = DenseMatrix::<f32>::filled(2, 2, tiny);
        let a = DenseMatrix::<f32>::zeros(2, 2);
        let e: f64 = relative_error(&a.as_ref(), &reference.as_ref());
        let abs_diff: f64 = frobenius(&reference.as_ref());
        assert!(
            (e - abs_diff).abs() < 1e-20,
            "guard must fall back to absolute norm"
        );
    }

    #[test]
    fn relative_error_guard_compares_in_norm_units() {
        // A tiny-but-normal f32 reference (1e-20 ≫ MIN_POSITIVE): its
        // *squared* norm is ~4e-40, which a guard applied to the squared
        // sum would mistake for zero. The true relative error of an
        // all-zero estimate is exactly 1.
        let reference = DenseMatrix::<f32>::filled(2, 2, 1e-20);
        let a = DenseMatrix::<f32>::zeros(2, 2);
        let e: f64 = relative_error(&a.as_ref(), &reference.as_ref());
        assert!((e - 1.0).abs() < 1e-6, "expected relative error 1, got {e}");
    }
}
