//! Bandwidth-bound matrix addition kernels.
//!
//! These are the building blocks for the three addition strategies the
//! paper studies in §3.2:
//!
//! * **pairwise** — a sequence of [`axpy`] calls, one per term of the
//!   addition chain (the `daxpy` strategy);
//! * **write-once** — a single [`lincomb`] pass writing each output
//!   entry exactly once while reading every source;
//! * **streaming** — [`stream_update`] reads a source block once while
//!   updating *all* temporaries that depend on it.
//!
//! Each kernel has a rayon-parallel counterpart (`par_*`) that splits on
//! rows with a configurable grain, which is how the DFS scheme
//! parallelizes matrix additions (§4.1: "matrix additions are trivially
//! parallelized").
//!
//! All kernels are generic over the element type ([`Scalar`]): the
//! addition strategies only need ring arithmetic, so the same code path
//! serves `f64`, `f32` and future semiring backends.

use crate::scalar::Scalar;
use crate::view::{MatMut, MatRef};

/// Row count below which parallel kernels stop splitting.
pub const PAR_GRAIN_ROWS: usize = 64;

/// `dst ← src` (the copy that starts a pairwise addition chain).
pub fn copy<T: Scalar>(mut dst: MatMut<'_, T>, src: MatRef<'_, T>) {
    debug_assert_eq!(dst.rows(), src.rows());
    debug_assert_eq!(dst.cols(), src.cols());
    for i in 0..dst.rows() {
        dst.row_mut(i).copy_from_slice(src.row(i));
    }
}

/// `dst ← α·src`.
pub fn copy_scaled<T: Scalar>(mut dst: MatMut<'_, T>, alpha: T, src: MatRef<'_, T>) {
    debug_assert_eq!(dst.rows(), src.rows());
    debug_assert_eq!(dst.cols(), src.cols());
    for i in 0..dst.rows() {
        let d = dst.row_mut(i);
        let s = src.row(i);
        for j in 0..d.len() {
            d[j] = alpha * s[j];
        }
    }
}

/// `dst ← dst + α·src` — the `daxpy` primitive of the pairwise strategy.
pub fn axpy<T: Scalar>(mut dst: MatMut<'_, T>, alpha: T, src: MatRef<'_, T>) {
    debug_assert_eq!(dst.rows(), src.rows());
    debug_assert_eq!(dst.cols(), src.cols());
    for i in 0..dst.rows() {
        let d = dst.row_mut(i);
        let s = src.row(i);
        for j in 0..d.len() {
            d[j] += alpha * s[j];
        }
    }
}

/// `dst ← β·dst + Σ_t α_t·src_t` in a single pass over `dst`.
///
/// With `beta = 0` this is the **write-once** evaluation of an addition
/// chain: every destination entry is written exactly once, every source
/// is read exactly once (§3.2, variant 2). With `beta = 1` it accumulates
/// into the existing contents (used when combining output strips under
/// dynamic peeling).
pub fn lincomb<T: Scalar>(mut dst: MatMut<'_, T>, beta: T, terms: &[(T, MatRef<'_, T>)]) {
    let (rows, cols) = (dst.rows(), dst.cols());
    for (_, s) in terms {
        debug_assert_eq!(s.rows(), rows);
        debug_assert_eq!(s.cols(), cols);
    }
    match terms {
        [] => {
            if beta == T::ZERO {
                dst.fill(T::ZERO);
            } else if beta != T::ONE {
                for i in 0..rows {
                    dst.row_mut(i).iter_mut().for_each(|x| *x *= beta);
                }
            }
        }
        &[(a, s)] => {
            for i in 0..rows {
                let d = dst.row_mut(i);
                let sr = s.row(i);
                if beta == T::ZERO {
                    for j in 0..cols {
                        d[j] = a * sr[j];
                    }
                } else {
                    for j in 0..cols {
                        d[j] = beta * d[j] + a * sr[j];
                    }
                }
            }
        }
        &[(a0, s0), (a1, s1)] => {
            for i in 0..rows {
                let d = dst.row_mut(i);
                let r0 = s0.row(i);
                let r1 = s1.row(i);
                if beta == T::ZERO {
                    for j in 0..cols {
                        d[j] = a0 * r0[j] + a1 * r1[j];
                    }
                } else {
                    for j in 0..cols {
                        d[j] = beta * d[j] + a0 * r0[j] + a1 * r1[j];
                    }
                }
            }
        }
        _ => {
            for i in 0..rows {
                let d = dst.row_mut(i);
                if beta == T::ZERO {
                    let &(a0, s0) = &terms[0];
                    let r0 = s0.row(i);
                    for j in 0..cols {
                        d[j] = a0 * r0[j];
                    }
                } else if beta != T::ONE {
                    d.iter_mut().for_each(|x| *x *= beta);
                }
                let rest = if beta == T::ZERO { &terms[1..] } else { terms };
                for &(a, s) in rest {
                    let sr = s.row(i);
                    for j in 0..cols {
                        d[j] += a * sr[j];
                    }
                }
            }
        }
    }
}

/// Streaming update: `dst_t ← dst_t + α_t·src` for every target, reading
/// `src` once per row while all destination rows stream through cache
/// (§3.2, variant 3).
pub fn stream_update<T: Scalar>(dsts: &mut [(T, MatMut<'_, T>)], src: MatRef<'_, T>) {
    let (rows, cols) = (src.rows(), src.cols());
    for (_, d) in dsts.iter() {
        debug_assert_eq!(d.rows(), rows);
        debug_assert_eq!(d.cols(), cols);
    }
    for i in 0..rows {
        let s = src.row(i);
        for (alpha, d) in dsts.iter_mut() {
            let dr = d.row_mut(i);
            let a = *alpha;
            for j in 0..cols {
                dr[j] += a * s[j];
            }
        }
    }
}

/// Scale a block in place: `dst ← α·dst`.
pub fn scale<T: Scalar>(mut dst: MatMut<'_, T>, alpha: T) {
    if alpha == T::ONE {
        return;
    }
    for i in 0..dst.rows() {
        dst.row_mut(i).iter_mut().for_each(|x| *x *= alpha);
    }
}

/// Scaled operands of a linear combination: `(coefficient, matrix)`.
type Terms<'a, T> = Vec<(T, MatRef<'a, T>)>;

fn split_terms<'a, T: Scalar>(
    terms: &[(T, MatRef<'a, T>)],
    mid: usize,
) -> (Terms<'a, T>, Terms<'a, T>) {
    let top = terms
        .iter()
        .map(|(a, s)| (*a, s.block(0, 0, mid, s.cols())))
        .collect();
    let bot = terms
        .iter()
        .map(|(a, s)| (*a, s.block(mid, 0, s.rows() - mid, s.cols())))
        .collect();
    (top, bot)
}

/// Parallel [`lincomb`]: recursively splits on rows and runs leaf
/// lincombs under rayon `join`.
pub fn par_lincomb<T: Scalar>(dst: MatMut<'_, T>, beta: T, terms: &[(T, MatRef<'_, T>)]) {
    if dst.rows() <= PAR_GRAIN_ROWS {
        lincomb(dst, beta, terms);
        return;
    }
    let mid = dst.rows() / 2;
    let (top, bot) = dst.split_at_row(mid);
    let (tt, tb) = split_terms(terms, mid);
    rayon::join(
        || par_lincomb(top, beta, &tt),
        || par_lincomb(bot, beta, &tb),
    );
}

/// Parallel [`axpy`].
pub fn par_axpy<T: Scalar>(dst: MatMut<'_, T>, alpha: T, src: MatRef<'_, T>) {
    if dst.rows() <= PAR_GRAIN_ROWS {
        axpy(dst, alpha, src);
        return;
    }
    let mid = dst.rows() / 2;
    let (top, bot) = dst.split_at_row(mid);
    let st = src.block(0, 0, mid, src.cols());
    let sb = src.block(mid, 0, src.rows() - mid, src.cols());
    rayon::join(|| par_axpy(top, alpha, st), || par_axpy(bot, alpha, sb));
}

/// Parallel [`copy`].
pub fn par_copy<T: Scalar>(dst: MatMut<'_, T>, src: MatRef<'_, T>) {
    if dst.rows() <= PAR_GRAIN_ROWS {
        copy(dst, src);
        return;
    }
    let mid = dst.rows() / 2;
    let (top, bot) = dst.split_at_row(mid);
    let st = src.block(0, 0, mid, src.cols());
    let sb = src.block(mid, 0, src.rows() - mid, src.cols());
    rayon::join(|| par_copy(top, st), || par_copy(bot, sb));
}

/// Parallel [`stream_update`]: splits the source and every destination
/// on rows and streams each half under rayon `join`. Used by the DFS
/// scheme, which parallelizes *all* additions (§4.1), when the
/// streaming strategy is selected.
pub fn par_stream_update<T: Scalar>(dsts: &mut [(T, MatMut<'_, T>)], src: MatRef<'_, T>) {
    if src.rows() <= PAR_GRAIN_ROWS || dsts.is_empty() {
        stream_update(dsts, src);
        return;
    }
    let mid = src.rows() / 2;
    let s_top = src.block(0, 0, mid, src.cols());
    let s_bot = src.block(mid, 0, src.rows() - mid, src.cols());
    let mut tops: Vec<(T, MatMut<'_, T>)> = Vec::with_capacity(dsts.len());
    let mut bots: Vec<(T, MatMut<'_, T>)> = Vec::with_capacity(dsts.len());
    for (alpha, d) in dsts.iter_mut() {
        let rows = d.rows();
        let cols = d.cols();
        let (t, b) = d.reborrow().split_at_row(mid.min(rows));
        debug_assert_eq!(cols, src.cols());
        tops.push((*alpha, t));
        bots.push((*alpha, b));
    }
    rayon::join(
        || par_stream_update(&mut tops, s_top),
        || par_stream_update(&mut bots, s_bot),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseMatrix, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::random(r, c, &mut rng)
    }

    #[test]
    fn axpy_matches_reference() {
        let a = rand_mat(7, 5, 1);
        let mut c = rand_mat(7, 5, 2);
        let expect = Matrix::from_fn(7, 5, |i, j| c[(i, j)] + 2.5 * a[(i, j)]);
        axpy(c.as_mut(), 2.5, a.as_ref());
        assert_eq!(c, expect);
    }

    #[test]
    fn copy_scaled_matches_reference() {
        let a = rand_mat(4, 9, 3);
        let mut c = Matrix::zeros(4, 9);
        copy_scaled(c.as_mut(), -0.5, a.as_ref());
        for i in 0..4 {
            for j in 0..9 {
                assert_eq!(c[(i, j)], -0.5 * a[(i, j)]);
            }
        }
    }

    #[test]
    fn lincomb_write_once_three_terms() {
        let a = rand_mat(6, 6, 4);
        let b = rand_mat(6, 6, 5);
        let d = rand_mat(6, 6, 6);
        let mut c = rand_mat(6, 6, 7); // pre-existing junk must be overwritten
        lincomb(
            c.as_mut(),
            0.0,
            &[(1.0, a.as_ref()), (-2.0, b.as_ref()), (0.5, d.as_ref())],
        );
        for i in 0..6 {
            for j in 0..6 {
                let want = a[(i, j)] - 2.0 * b[(i, j)] + 0.5 * d[(i, j)];
                assert!((c[(i, j)] - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn lincomb_accumulates_with_beta_one() {
        let a = rand_mat(3, 3, 8);
        let mut c = Matrix::filled(3, 3, 1.0);
        lincomb(c.as_mut(), 1.0, &[(2.0, a.as_ref())]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((c[(i, j)] - (1.0 + 2.0 * a[(i, j)])).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn lincomb_empty_terms_scales() {
        let mut c = Matrix::filled(2, 2, 3.0);
        lincomb(c.as_mut(), 0.0, &[]);
        assert_eq!(c, Matrix::zeros(2, 2));
        let mut c2 = Matrix::filled(2, 2, 3.0);
        lincomb(c2.as_mut(), 2.0, &[]);
        assert_eq!(c2, Matrix::filled(2, 2, 6.0));
    }

    #[test]
    fn stream_update_matches_axpy_sequence() {
        let src = rand_mat(5, 4, 9);
        let mut t1 = rand_mat(5, 4, 10);
        let mut t2 = rand_mat(5, 4, 11);
        let mut r1 = t1.clone();
        let mut r2 = t2.clone();
        {
            let mut dsts = vec![(1.5, t1.as_mut()), (-3.0, t2.as_mut())];
            stream_update(&mut dsts, src.as_ref());
        }
        axpy(r1.as_mut(), 1.5, src.as_ref());
        axpy(r2.as_mut(), -3.0, src.as_ref());
        assert_eq!(t1, r1);
        assert_eq!(t2, r2);
    }

    #[test]
    fn parallel_kernels_match_sequential() {
        let a = rand_mat(300, 17, 12);
        let b = rand_mat(300, 17, 13);
        let mut c_seq = Matrix::zeros(300, 17);
        let mut c_par = Matrix::zeros(300, 17);
        lincomb(c_seq.as_mut(), 0.0, &[(1.0, a.as_ref()), (2.0, b.as_ref())]);
        par_lincomb(c_par.as_mut(), 0.0, &[(1.0, a.as_ref()), (2.0, b.as_ref())]);
        assert_eq!(c_seq, c_par);

        let mut d_seq = a.clone();
        let mut d_par = a.clone();
        axpy(d_seq.as_mut(), -1.25, b.as_ref());
        par_axpy(d_par.as_mut(), -1.25, b.as_ref());
        assert_eq!(d_seq, d_par);

        let mut e = Matrix::zeros(300, 17);
        par_copy(e.as_mut(), a.as_ref());
        assert_eq!(e, a);
    }

    #[test]
    fn par_stream_update_matches_sequential() {
        let src = rand_mat(257, 19, 31);
        let mut t1 = rand_mat(257, 19, 32);
        let mut t2 = rand_mat(257, 19, 33);
        let mut r1 = t1.clone();
        let mut r2 = t2.clone();
        {
            let mut dsts = vec![(0.5, t1.as_mut()), (2.0, t2.as_mut())];
            par_stream_update(&mut dsts, src.as_ref());
        }
        {
            let mut dsts = vec![(0.5, r1.as_mut()), (2.0, r2.as_mut())];
            stream_update(&mut dsts, src.as_ref());
        }
        assert_eq!(t1, r1);
        assert_eq!(t2, r2);
    }

    #[test]
    fn scale_in_place() {
        let mut c = Matrix::filled(3, 2, 2.0);
        scale(c.as_mut(), 0.5);
        assert_eq!(c, Matrix::filled(3, 2, 1.0));
    }

    #[test]
    fn f32_kernels_match_f64_on_exact_inputs() {
        // Small integer-valued operands: every kernel result is exact in
        // both dtypes, so the f32 path must agree with f64 bit-for-bit
        // after widening.
        let a64 = Matrix::from_fn(5, 4, |i, j| (i as f64) - (j as f64));
        let b64 = Matrix::from_fn(5, 4, |i, j| (i * j) as f64 - 3.0);
        let a32 = DenseMatrix::<f32>::from_fn(5, 4, |i, j| (i as f32) - (j as f32));
        let b32 = DenseMatrix::<f32>::from_fn(5, 4, |i, j| (i * j) as f32 - 3.0);
        let mut c64 = Matrix::zeros(5, 4);
        let mut c32 = DenseMatrix::<f32>::zeros(5, 4);
        lincomb(
            c64.as_mut(),
            0.0,
            &[(2.0, a64.as_ref()), (-1.0, b64.as_ref())],
        );
        lincomb(
            c32.as_mut(),
            0.0,
            &[(2.0, a32.as_ref()), (-1.0, b32.as_ref())],
        );
        for i in 0..5 {
            for j in 0..4 {
                assert_eq!(c64[(i, j)], c32[(i, j)] as f64);
            }
        }
        axpy(c32.as_mut(), 3.0, a32.as_ref());
        axpy(c64.as_mut(), 3.0, a64.as_ref());
        assert_eq!(c64[(4, 3)], c32[(4, 3)] as f64);
    }
}
