//! The element-type seam of the workspace: [`Scalar`].
//!
//! The framework of the paper is element-type agnostic — the recursion,
//! the §3.2 addition strategies and the §3.5 peeling only need a ring
//! whose elements can be scaled by the (real) coefficients of a
//! decomposition. [`Scalar`] captures exactly that contract, so one
//! generic stack (`DenseMatrix<T>` → kernels → gemm → executor →
//! engine) serves `f64`, `f32`, and — later — non-field semirings such
//! as bit-packed GF(2).
//!
//! Two design points matter for those future backends:
//!
//! * [`Scalar::from_coeff`] injects an `.alg` coefficient (always
//!   stored as `f64`) into the scalar type and **may fail**: a GF(2)
//!   backend would accept ±1/0 and reject the fractional coefficients
//!   of APA algorithms. Planning surfaces that rejection as an error
//!   instead of silently computing nonsense.
//! * Accuracy instrumentation accumulates in [`Scalar::Accum`] (a wide
//!   accumulator, `f64` for both float types) so `f32` norms do not
//!   lose the very digits the §6 experiments measure, and the
//!   near-zero-denominator guard of `relative_error` uses
//!   [`Scalar::tiny_norm`] — an epsilon appropriate to the *element*
//!   type, not hard-coded `f64::MIN_POSITIVE`.

use rand::Rng;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Wide accumulator used by norm and forward-error computations.
///
/// Both float scalars accumulate in `f64`; an exotic backend can pick
/// any type with ordered-field-enough structure (e.g. a mismatch
/// counter for exact semirings).
pub trait AccumScalar:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
{
    /// Additive identity of the accumulator.
    const ZERO: Self;
    /// Principal square root (norms are sums of squares).
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
}

impl AccumScalar for f64 {
    const ZERO: Self = 0.0;
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

/// A matrix element: `Copy` ring arithmetic plus the coefficient and
/// accuracy seams described above (coefficient injection, wide-
/// accumulator error measurement).
///
/// Implemented for `f64` (the default element type everywhere) and
/// `f32`. The trait is deliberately small — everything the executor
/// does is expressible with these operations, which is what keeps the
/// door open for semiring backends.
pub trait Scalar:
    Copy
    + PartialEq
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Short dtype name (`"f64"`, `"f32"`) for labels and reports.
    const NAME: &'static str;
    /// Machine epsilon of the element type, in accumulator units.
    const EPSILON: <Self as Scalar>::Accum;

    /// Wide accumulator for norms / error measurement.
    type Accum: AccumScalar;

    /// Inject a decomposition coefficient (`.alg` files store them as
    /// `f64`). Returns `None` when the coefficient is not representable
    /// — the designed rejection point for non-field semirings facing
    /// fractional APA coefficients. Both float types accept everything
    /// (rounding `f64 → f32` is the expected APA behaviour).
    fn from_coeff(c: f64) -> Option<Self>;

    /// Widen into the accumulator.
    fn to_accum(self) -> Self::Accum;

    /// Absolute value (used by `nnz` and max-norm diffs).
    fn abs(self) -> Self;

    /// Smallest positive normal magnitude of the *element* type, in
    /// accumulator units: the `relative_error` denominator guard. A
    /// reference norm below this is noise for this dtype even when it
    /// is comfortably representable in the accumulator.
    fn tiny_norm() -> Self::Accum;

    /// One i.i.d. sample uniform on `[-1, 1)` — the random workload
    /// distribution every benchmark in the paper uses.
    fn sample_unit<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";
    const EPSILON: f64 = f64::EPSILON;

    type Accum = f64;

    #[inline]
    fn from_coeff(c: f64) -> Option<Self> {
        Some(c)
    }
    #[inline]
    fn to_accum(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn tiny_norm() -> f64 {
        f64::MIN_POSITIVE
    }
    #[inline]
    fn sample_unit<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.gen_range(-1.0..1.0)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";
    const EPSILON: f64 = f32::EPSILON as f64;

    type Accum = f64;

    #[inline]
    fn from_coeff(c: f64) -> Option<Self> {
        Some(c as f32)
    }
    #[inline]
    fn to_accum(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn tiny_norm() -> f64 {
        f32::MIN_POSITIVE as f64
    }
    #[inline]
    fn sample_unit<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // An f64 draw in (1 − 2⁻²⁵, 1) would round *up* to 1.0f32 and
        // break the half-open contract; clamp to the largest f32 < 1.
        let x = rng.gen_range(-1.0..1.0) as f32;
        if x >= 1.0 {
            1.0 - f32::EPSILON / 2.0
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identities_and_names() {
        assert_eq!(<f64 as Scalar>::ZERO + <f64 as Scalar>::ONE, 1.0);
        assert_eq!(<f32 as Scalar>::ZERO + <f32 as Scalar>::ONE, 1.0f32);
        assert_eq!(<f64 as Scalar>::NAME, "f64");
        assert_eq!(<f32 as Scalar>::NAME, "f32");
    }

    #[test]
    fn from_coeff_floats_accept_everything() {
        assert_eq!(f64::from_coeff(-0.5), Some(-0.5));
        assert_eq!(f32::from_coeff(2.0), Some(2.0f32));
        // f32 rounds rather than rejects — the APA contract.
        let c = 1.0 + f64::EPSILON;
        assert_eq!(f32::from_coeff(c), Some(1.0f32));
    }

    #[test]
    fn epsilon_and_tiny_norm_scale_with_the_type() {
        let (e32, e64) = (<f32 as Scalar>::EPSILON, <f64 as Scalar>::EPSILON);
        assert!(e32 > e64);
        assert!(<f32 as Scalar>::tiny_norm() > <f64 as Scalar>::tiny_norm());
    }

    #[test]
    fn sample_unit_stays_in_range_for_both_types() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let x = f64::sample_unit(&mut rng);
            assert!((-1.0..1.0).contains(&x));
            let y = f32::sample_unit(&mut rng);
            assert!((-1.0..1.0).contains(&y));
        }
    }
}
