//! Owned dense row-major matrix, generic over the element type.

use crate::scalar::Scalar;
use crate::view::{MatMut, MatRef};
use rand::Rng;
use std::fmt;

/// An owned, dense, row-major matrix of [`Scalar`] values.
///
/// Entry `(i, j)` lives at `data[i * cols + j]`. The row-major layout
/// matches the row-wise vectorization used by the tensor formulation of
/// matrix multiplication (paper §2.2.2), so `vec(A)` is simply the backing
/// slice of `A`.
///
/// The element type defaults to `f64`, and the [`crate::Matrix`] alias
/// pins it there — existing `Matrix` call sites never see the type
/// parameter. Instantiate other element types explicitly:
///
/// ```
/// use fmm_matrix::DenseMatrix;
/// let m = DenseMatrix::<f32>::filled(2, 2, 1.5);
/// assert_eq!(m[(1, 1)], 1.5f32);
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// A `rows × cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build a matrix from a generator function on `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        DenseMatrix { rows, cols, data }
    }

    /// Build a matrix from nested row slices; rows must be equal length.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// A matrix with i.i.d. entries drawn uniformly from `[-1, 1)`
    /// ([`Scalar::sample_unit`]).
    ///
    /// Used by every workload generator in the experiment harness; the
    /// paper benchmarks on random dense matrices.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| T::sample_unit(rng)).collect();
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Backing row-major slice (`vec(A)` in the paper's notation).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Immutable full view of the matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef::from_slice(&self.data, self.rows, self.cols, self.cols)
    }

    /// Mutable full view of the matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_, T> {
        MatMut::from_slice(&mut self.data, self.rows, self.cols, self.cols)
    }

    /// Immutable view of the `rr × cc` block whose top-left corner is `(r0, c0)`.
    #[inline]
    pub fn block(&self, r0: usize, c0: usize, rr: usize, cc: usize) -> MatRef<'_, T> {
        self.as_ref().block(r0, c0, rr, cc)
    }

    /// Mutable view of the `rr × cc` block whose top-left corner is `(r0, c0)`.
    #[inline]
    pub fn block_mut(&mut self, r0: usize, c0: usize, rr: usize, cc: usize) -> MatMut<'_, T> {
        let cols = self.cols;
        MatMut::from_slice(&mut self.data, self.rows, cols, cols).into_block(r0, c0, rr, cc)
    }

    /// The transpose as a new owned matrix.
    pub fn transpose(&self) -> DenseMatrix<T> {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Set every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = T::ZERO);
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, alpha: T) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Number of entries whose magnitude exceeds `tol` (in accumulator
    /// units).
    ///
    /// This is the `nnz(·)` of the paper (Table 1) when applied to factor
    /// matrices of a decomposition.
    pub fn nnz(&self, tol: T::Accum) -> usize {
        self.data
            .iter()
            .filter(|x| x.abs().to_accum() > tol)
            .count()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` collected into a vector.
    pub fn col(&self, j: usize) -> Vec<T> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for DenseMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix<{}> {}x{} [", T::NAME, self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(10);
            for j in 0..show_cols {
                write!(f, "{:9.4} ", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use crate::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::DenseMatrix;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(2, 1)], 6.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::random(5, 3, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_entries() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn nnz_counts_threshold() {
        let m = Matrix::from_vec(1, 4, vec![0.0, 1e-14, -2.0, 0.5]);
        assert_eq!(m.nnz(1e-12), 2);
        assert_eq!(m.nnz(0.6), 1);
    }

    #[test]
    fn block_view_addresses_submatrix() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = m.block(1, 2, 2, 2);
        assert_eq!(b.get(0, 0), 6.0);
        assert_eq!(b.get(1, 1), 11.0);
    }

    #[test]
    fn block_mut_writes_through() {
        let mut m = Matrix::zeros(3, 3);
        {
            let mut b = m.block_mut(1, 1, 2, 2);
            b.set(0, 0, 5.0);
            b.set(1, 1, 7.0);
        }
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m[(2, 2)], 7.0);
    }

    #[test]
    fn random_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = Matrix::random(10, 10, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn scale_and_fill_zero() {
        let mut m = Matrix::filled(2, 2, 3.0);
        m.scale(2.0);
        assert_eq!(m[(1, 1)], 6.0);
        m.fill_zero();
        assert_eq!(m, Matrix::zeros(2, 2));
    }

    #[test]
    fn f32_matrix_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DenseMatrix::<f32>::random(6, 5, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-1.0f32..1.0).contains(&x)));
        assert_eq!(m.transpose().transpose(), m);
        let t = m.block(1, 1, 2, 3).to_matrix();
        assert_eq!(t[(0, 0)], m[(1, 1)]);
        let dbg = format!("{m:?}");
        assert!(dbg.contains("Matrix<f32>"), "{dbg}");
    }

    #[test]
    fn f32_and_f64_random_streams_share_the_rng_stream() {
        // Same seed, same draw sequence: the f32 sample is the f64
        // sample rounded, keeping cross-dtype workloads comparable.
        let mut r64 = StdRng::seed_from_u64(9);
        let mut r32 = StdRng::seed_from_u64(9);
        let a = Matrix::random(4, 4, &mut r64);
        let b = DenseMatrix::<f32>::random(4, 4, &mut r32);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a[(i, j)] as f32, b[(i, j)]);
            }
        }
    }
}
