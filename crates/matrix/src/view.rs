//! Borrowed, possibly strided matrix views.
//!
//! Recursive fast algorithms address submatrix blocks of the operands
//! without copying; these views carry a leading dimension (`stride`) so a
//! block of a larger row-major matrix is itself a matrix view. `MatRef`
//! is `Copy` and freely shareable; `MatMut` is an exclusive view that can
//! be *split* into disjoint pieces (rows, columns, or a full block grid)
//! so independent tasks may write different output blocks in parallel.
//!
//! Both views are generic over the element type (defaulting to `f64`,
//! like [`crate::DenseMatrix`]); a `MatRef<'_>` in a signature is a
//! `MatRef<'_, f64>`.

use crate::scalar::Scalar;
use std::marker::PhantomData;

/// Immutable strided matrix view.
pub struct MatRef<'a, T = f64> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: PhantomData<&'a T>,
}

impl<T> Clone for MatRef<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for MatRef<'_, T> {}

// SAFETY: `MatRef` is a read-only view with the aliasing rules of
// `&[T]`; `T: Scalar` implies `T: Send + Sync`.
unsafe impl<T: Scalar> Send for MatRef<'_, T> {}
unsafe impl<T: Scalar> Sync for MatRef<'_, T> {}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// View over a row-major buffer with leading dimension `stride`.
    ///
    /// # Panics
    /// Panics when the buffer is too short for the described view.
    pub fn from_slice(buf: &'a [T], rows: usize, cols: usize, stride: usize) -> Self {
        if rows > 0 && cols > 0 {
            assert!(stride >= cols, "stride {stride} < cols {cols}");
            assert!(
                (rows - 1) * stride + cols <= buf.len(),
                "buffer too short: need {} have {}",
                (rows - 1) * stride + cols,
                buf.len()
            );
        }
        MatRef {
            ptr: buf.as_ptr(),
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (distance in elements between row starts).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: bounds are checked in debug; the view invariant
        // guarantees the offset is in the borrowed buffer.
        unsafe { *self.ptr.add(i * self.stride + j) }
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [T] {
        debug_assert!(i < self.rows);
        // SAFETY: row `i` spans `cols` contiguous elements inside the
        // borrowed buffer by the view invariant.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Sub-block of size `rr × cc` with top-left corner `(r0, c0)`.
    #[inline]
    pub fn block(&self, r0: usize, c0: usize, rr: usize, cc: usize) -> MatRef<'a, T> {
        assert!(r0 + rr <= self.rows, "row block out of range");
        assert!(c0 + cc <= self.cols, "col block out of range");
        MatRef {
            // SAFETY: the new origin stays within the original view.
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows: rr,
            cols: cc,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Copy the view into an owned [`crate::DenseMatrix`].
    pub fn to_matrix(&self) -> crate::DenseMatrix<T> {
        crate::DenseMatrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

/// Exclusive strided matrix view.
pub struct MatMut<'a, T = f64> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: `MatMut` has the aliasing rules of `&mut [T]`: it is an
// exclusive view, so sending it to another thread is sound.
unsafe impl<T: Scalar> Send for MatMut<'_, T> {}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Exclusive view over a row-major buffer with leading dimension `stride`.
    ///
    /// # Panics
    /// Panics when the buffer is too short for the described view.
    pub fn from_slice(buf: &'a mut [T], rows: usize, cols: usize, stride: usize) -> Self {
        if rows > 0 && cols > 0 {
            assert!(stride >= cols, "stride {stride} < cols {cols}");
            assert!(
                (rows - 1) * stride + cols <= buf.len(),
                "buffer too short: need {} have {}",
                (rows - 1) * stride + cols,
                buf.len()
            );
        }
        MatMut {
            ptr: buf.as_mut_ptr(),
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: in-bounds by the view invariant.
        unsafe { *self.ptr.add(i * self.stride + j) }
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: in-bounds by the view invariant; exclusive access.
        unsafe { *self.ptr.add(i * self.stride + j) = v }
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        // SAFETY: row `i` spans `cols` contiguous in-bounds elements and
        // `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Immutable snapshot of this view (for reading while holding it).
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Reborrow with a shorter lifetime so the view can be used again
    /// after passing a value to a kernel.
    #[inline]
    pub fn reborrow(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Consume the view, producing the sub-block `rr × cc` at `(r0, c0)`.
    pub fn into_block(self, r0: usize, c0: usize, rr: usize, cc: usize) -> MatMut<'a, T> {
        assert!(r0 + rr <= self.rows, "row block out of range");
        assert!(c0 + cc <= self.cols, "col block out of range");
        MatMut {
            // SAFETY: the new origin stays within the original view and
            // `self` is consumed, preserving exclusivity.
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows: rr,
            cols: cc,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Split into top (`..mid`) and bottom (`mid..`) row ranges.
    pub fn split_at_row(self, mid: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(mid <= self.rows, "split row out of range");
        let top = MatMut {
            ptr: self.ptr,
            rows: mid,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        };
        let bot = MatMut {
            // SAFETY: rows `mid..` start `mid * stride` elements in; the
            // two views cover disjoint rows.
            ptr: unsafe { self.ptr.add(mid * self.stride) },
            rows: self.rows - mid,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        };
        (top, bot)
    }

    /// Split into left (`..mid`) and right (`mid..`) column ranges.
    pub fn split_at_col(self, mid: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(mid <= self.cols, "split col out of range");
        let left = MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: mid,
            stride: self.stride,
            _marker: PhantomData,
        };
        let right = MatMut {
            // SAFETY: columns `mid..` are disjoint elements from `..mid`
            // even though rows interleave in memory.
            ptr: unsafe { self.ptr.add(mid) },
            rows: self.rows,
            cols: self.cols - mid,
            stride: self.stride,
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Partition into an `row_cuts.len()+1 × col_cuts.len()+1` grid of
    /// disjoint mutable blocks, row-major order.
    ///
    /// `row_cuts`/`col_cuts` are strictly increasing interior cut points.
    pub fn split_grid(self, row_cuts: &[usize], col_cuts: &[usize]) -> Vec<MatMut<'a, T>> {
        let mut rbounds = Vec::with_capacity(row_cuts.len() + 2);
        rbounds.push(0);
        rbounds.extend_from_slice(row_cuts);
        rbounds.push(self.rows);
        let mut cbounds = Vec::with_capacity(col_cuts.len() + 2);
        cbounds.push(0);
        cbounds.extend_from_slice(col_cuts);
        cbounds.push(self.cols);
        for w in rbounds.windows(2) {
            assert!(w[0] <= w[1], "row cuts must be non-decreasing");
        }
        for w in cbounds.windows(2) {
            assert!(w[0] <= w[1], "col cuts must be non-decreasing");
        }
        assert!(*rbounds.last().unwrap() == self.rows);
        assert!(*cbounds.last().unwrap() == self.cols);

        let mut out = Vec::with_capacity((rbounds.len() - 1) * (cbounds.len() - 1));
        for ri in 0..rbounds.len() - 1 {
            for ci in 0..cbounds.len() - 1 {
                let (r0, r1) = (rbounds[ri], rbounds[ri + 1]);
                let (c0, c1) = (cbounds[ci], cbounds[ci + 1]);
                out.push(MatMut {
                    // SAFETY: grid cells are pairwise disjoint element
                    // sets of the original exclusive view (disjoint row
                    // ranges or disjoint column ranges), and `self` is
                    // consumed so no other access exists.
                    ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
                    rows: r1 - r0,
                    cols: c1 - c0,
                    stride: self.stride,
                    _marker: PhantomData,
                });
            }
        }
        out
    }

    /// Fill the viewed block with a constant.
    pub fn fill(&mut self, v: T) {
        for i in 0..self.rows {
            self.row_mut(i).iter_mut().for_each(|x| *x = v);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{DenseMatrix, Matrix};

    #[test]
    fn ref_block_of_block() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let b = m.block(1, 1, 4, 4);
        let bb = b.block(1, 1, 2, 2);
        assert_eq!(bb.get(0, 0), m[(2, 2)]);
        assert_eq!(bb.get(1, 1), m[(3, 3)]);
    }

    #[test]
    fn mut_split_rows_disjoint_writes() {
        let mut m = Matrix::zeros(4, 3);
        let (mut top, mut bot) = m.as_mut().split_at_row(2);
        top.fill(1.0);
        bot.fill(2.0);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(2, 0)], 2.0);
        assert_eq!(m[(3, 2)], 2.0);
    }

    #[test]
    fn mut_split_cols_disjoint_writes() {
        let mut m = Matrix::zeros(3, 4);
        let (mut l, mut r) = m.as_mut().split_at_col(1);
        l.fill(-1.0);
        r.fill(4.0);
        assert_eq!(m[(2, 0)], -1.0);
        assert_eq!(m[(0, 1)], 4.0);
        assert_eq!(m[(2, 3)], 4.0);
    }

    #[test]
    fn grid_partition_covers_matrix() {
        let mut m = Matrix::zeros(5, 7);
        let blocks = m.as_mut().split_grid(&[2], &[3, 5]);
        assert_eq!(blocks.len(), 6);
        for (idx, mut b) in blocks.into_iter().enumerate() {
            b.fill(idx as f64 + 1.0);
        }
        // every entry written exactly once, no zeros left
        assert!(m.as_slice().iter().all(|&x| x != 0.0));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 3)], 2.0);
        assert_eq!(m[(0, 6)], 3.0);
        assert_eq!(m[(4, 0)], 4.0);
        assert_eq!(m[(4, 4)], 5.0);
        assert_eq!(m[(4, 6)], 6.0);
    }

    #[test]
    fn row_slices_match_indexing() {
        let m = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let v = m.as_ref();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(v.row(i)[j], v.get(i, j));
            }
        }
    }

    #[test]
    fn to_matrix_round_trip() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = m.block(1, 1, 2, 3).to_matrix();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b[(0, 0)], m[(1, 1)]);
        assert_eq!(b[(1, 2)], m[(2, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.block(1, 1, 2, 2);
    }

    #[test]
    fn f32_views_split_and_write() {
        let mut m = DenseMatrix::<f32>::zeros(4, 4);
        let (mut top, mut bot) = m.as_mut().split_at_row(2);
        top.fill(1.0);
        bot.fill(-2.0);
        assert_eq!(m[(0, 3)], 1.0f32);
        assert_eq!(m[(3, 0)], -2.0f32);
        let b = m.block(2, 0, 2, 2);
        assert_eq!(b.get(1, 1), -2.0f32);
    }
}
