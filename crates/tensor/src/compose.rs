//! Constructions that build larger fast algorithms from smaller ones.
//!
//! * [`classical`] — the rank-`mkn` decomposition every base case
//!   trivially admits (this is also what the comparison baselines use);
//! * [`kron_compose`] — the tensor-product (a.k.a. recursive
//!   composition) `⟨a,b,c⟩ ⊗ ⟨d,e,f⟩ = ⟨ad,be,cf⟩` with rank `R₁·R₂`,
//!   used e.g. to derive `⟨2,2,4⟩` (rank 14) from Strassen ⊗ ⟨1,1,2⟩
//!   and the paper's ⟨54,54,54⟩ discussion (§5.2);
//! * [`direct_sum_m`]/[`direct_sum_k`]/[`direct_sum_n`] — dimension
//!   splitting `⟨m,k,n₁+n₂⟩ = ⟨m,k,n₁⟩ ⊕ ⟨m,k,n₂⟩` etc. with rank
//!   `R₁+R₂`, used to derive `⟨2,2,3⟩` (rank 11 = 7+4) and `⟨2,2,5⟩`
//!   (rank 18 = 14+4), matching the Hopcroft–Kerr ranks of Table 2.

use crate::decomp::Decomposition;
use fmm_matrix::Matrix;

/// The classical algorithm for `⟨m,k,n⟩` as a rank-`mkn` decomposition:
/// multiplication `r = (i,p,j)` computes `A_ip · B_pj` into `C_ij`.
pub fn classical(m: usize, k: usize, n: usize) -> Decomposition {
    assert!(m > 0 && k > 0 && n > 0, "dimensions must be positive");
    let r = m * k * n;
    let mut u = Matrix::zeros(m * k, r);
    let mut v = Matrix::zeros(k * n, r);
    let mut w = Matrix::zeros(m * n, r);
    let mut col = 0;
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                u[(i * k + p, col)] = 1.0;
                v[(p * n + j, col)] = 1.0;
                w[(i * n + j, col)] = 1.0;
                col += 1;
            }
        }
    }
    Decomposition::new(m, k, n, u, v, w)
}

/// Tensor-product composition: an algorithm for
/// `⟨m₁m₂, k₁k₂, n₁n₂⟩` with rank `R₁·R₂`.
///
/// Operands are viewed as `m₁×k₁` grids of `m₂×k₂` blocks; the index
/// maps below interleave the two levels so the result is a flat
/// decomposition of the composed base case.
pub fn kron_compose(a: &Decomposition, b: &Decomposition) -> Decomposition {
    let (m1, k1, n1) = a.base();
    let (m2, k2, n2) = b.base();
    let (m, k, n) = (m1 * m2, k1 * k2, n1 * n2);
    let (r1, r2) = (a.rank(), b.rank());
    let r = r1 * r2;

    let mut u = Matrix::zeros(m * k, r);
    let mut v = Matrix::zeros(k * n, r);
    let mut w = Matrix::zeros(m * n, r);

    for c1 in 0..r1 {
        for c2 in 0..r2 {
            let col = c1 * r2 + c2;
            // U: A entry ((i1,i2),(p1,p2)) ↦ row (i1·m2+i2)·k + (p1·k2+p2)
            for i1 in 0..m1 {
                for p1 in 0..k1 {
                    let u1 = a.u[(i1 * k1 + p1, c1)];
                    if u1 == 0.0 {
                        continue;
                    }
                    for i2 in 0..m2 {
                        for p2 in 0..k2 {
                            let u2 = b.u[(i2 * k2 + p2, c2)];
                            if u2 == 0.0 {
                                continue;
                            }
                            let row = (i1 * m2 + i2) * k + (p1 * k2 + p2);
                            u[(row, col)] = u1 * u2;
                        }
                    }
                }
            }
            // V: B entry ((p1,p2),(j1,j2)) ↦ row (p1·k2+p2)·n + (j1·n2+j2)
            for p1 in 0..k1 {
                for j1 in 0..n1 {
                    let v1 = a.v[(p1 * n1 + j1, c1)];
                    if v1 == 0.0 {
                        continue;
                    }
                    for p2 in 0..k2 {
                        for j2 in 0..n2 {
                            let v2 = b.v[(p2 * n2 + j2, c2)];
                            if v2 == 0.0 {
                                continue;
                            }
                            let row = (p1 * k2 + p2) * n + (j1 * n2 + j2);
                            v[(row, col)] = v1 * v2;
                        }
                    }
                }
            }
            // W: C entry ((i1,i2),(j1,j2)) ↦ row (i1·m2+i2)·n + (j1·n2+j2)
            for i1 in 0..m1 {
                for j1 in 0..n1 {
                    let w1 = a.w[(i1 * n1 + j1, c1)];
                    if w1 == 0.0 {
                        continue;
                    }
                    for i2 in 0..m2 {
                        for j2 in 0..n2 {
                            let w2 = b.w[(i2 * n2 + j2, c2)];
                            if w2 == 0.0 {
                                continue;
                            }
                            let row = (i1 * m2 + i2) * n + (j1 * n2 + j2);
                            w[(row, col)] = w1 * w2;
                        }
                    }
                }
            }
        }
    }
    Decomposition::new(m, k, n, u, v, w)
}

/// Direct sum along `n`: `⟨m,k,n₁⟩ ⊕ ⟨m,k,n₂⟩ = ⟨m,k,n₁+n₂⟩`,
/// multiplying `A` against the column blocks `[B₁ B₂]` independently.
pub fn direct_sum_n(a: &Decomposition, b: &Decomposition) -> Decomposition {
    let (m, k, n1) = a.base();
    let (m2, k2, n2) = b.base();
    assert_eq!((m, k), (m2, k2), "direct_sum_n requires matching m, k");
    let n = n1 + n2;
    let (r1, r2) = (a.rank(), b.rank());
    let mut u = Matrix::zeros(m * k, r1 + r2);
    let mut v = Matrix::zeros(k * n, r1 + r2);
    let mut w = Matrix::zeros(m * n, r1 + r2);
    // U is shared: both halves read the same A.
    for row in 0..m * k {
        for c in 0..r1 {
            u[(row, c)] = a.u[(row, c)];
        }
        for c in 0..r2 {
            u[(row, r1 + c)] = b.u[(row, c)];
        }
    }
    for p in 0..k {
        for j in 0..n1 {
            for c in 0..r1 {
                v[(p * n + j, c)] = a.v[(p * n1 + j, c)];
            }
        }
        for j in 0..n2 {
            for c in 0..r2 {
                v[(p * n + n1 + j, r1 + c)] = b.v[(p * n2 + j, c)];
            }
        }
    }
    for i in 0..m {
        for j in 0..n1 {
            for c in 0..r1 {
                w[(i * n + j, c)] = a.w[(i * n1 + j, c)];
            }
        }
        for j in 0..n2 {
            for c in 0..r2 {
                w[(i * n + n1 + j, r1 + c)] = b.w[(i * n2 + j, c)];
            }
        }
    }
    Decomposition::new(m, k, n, u, v, w)
}

/// Direct sum along `m`: `⟨m₁,k,n⟩ ⊕ ⟨m₂,k,n⟩ = ⟨m₁+m₂,k,n⟩`,
/// multiplying the row blocks `[A₁; A₂]` against a shared `B`.
pub fn direct_sum_m(a: &Decomposition, b: &Decomposition) -> Decomposition {
    let (m1, k, n) = a.base();
    let (m2, k2, n2) = b.base();
    assert_eq!((k, n), (k2, n2), "direct_sum_m requires matching k, n");
    let m = m1 + m2;
    let (r1, r2) = (a.rank(), b.rank());
    let mut u = Matrix::zeros(m * k, r1 + r2);
    let mut v = Matrix::zeros(k * n, r1 + r2);
    let mut w = Matrix::zeros(m * n, r1 + r2);
    for p in 0..k * n {
        for c in 0..r1 {
            v[(p, c)] = a.v[(p, c)];
        }
        for c in 0..r2 {
            v[(p, r1 + c)] = b.v[(p, c)];
        }
    }
    for i in 0..m1 {
        for p in 0..k {
            for c in 0..r1 {
                u[(i * k + p, c)] = a.u[(i * k + p, c)];
            }
        }
        for j in 0..n {
            for c in 0..r1 {
                w[(i * n + j, c)] = a.w[(i * n + j, c)];
            }
        }
    }
    for i in 0..m2 {
        for p in 0..k {
            for c in 0..r2 {
                u[((m1 + i) * k + p, r1 + c)] = b.u[(i * k + p, c)];
            }
        }
        for j in 0..n {
            for c in 0..r2 {
                w[((m1 + i) * n + j, r1 + c)] = b.w[(i * n + j, c)];
            }
        }
    }
    Decomposition::new(m, k, n, u, v, w)
}

/// Direct sum along `k`: `⟨m,k₁,n⟩ ⊕ ⟨m,k₂,n⟩ = ⟨m,k₁+k₂,n⟩`,
/// computing `C = A₁B₁ + A₂B₂` with a shared output.
pub fn direct_sum_k(a: &Decomposition, b: &Decomposition) -> Decomposition {
    let (m, k1, n) = a.base();
    let (m2, k2, n2) = b.base();
    assert_eq!((m, n), (m2, n2), "direct_sum_k requires matching m, n");
    let k = k1 + k2;
    let (r1, r2) = (a.rank(), b.rank());
    let mut u = Matrix::zeros(m * k, r1 + r2);
    let mut v = Matrix::zeros(k * n, r1 + r2);
    let mut w = Matrix::zeros(m * n, r1 + r2);
    for row in 0..m * n {
        for c in 0..r1 {
            w[(row, c)] = a.w[(row, c)];
        }
        for c in 0..r2 {
            w[(row, r1 + c)] = b.w[(row, c)];
        }
    }
    for i in 0..m {
        for p in 0..k1 {
            for c in 0..r1 {
                u[(i * k + p, c)] = a.u[(i * k1 + p, c)];
            }
        }
        for p in 0..k2 {
            for c in 0..r2 {
                u[(i * k + k1 + p, r1 + c)] = b.u[(i * k2 + p, c)];
            }
        }
    }
    for p in 0..k1 {
        for j in 0..n {
            for c in 0..r1 {
                v[(p * n + j, c)] = a.v[(p * n + j, c)];
            }
        }
    }
    for p in 0..k2 {
        for j in 0..n {
            for c in 0..r2 {
                v[((k1 + p) * n + j, r1 + c)] = b.v[(p * n + j, c)];
            }
        }
    }
    Decomposition::new(m, k, n, u, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fixtures::strassen;

    #[test]
    fn classical_is_exact_for_many_bases() {
        for &(m, k, n) in &[(1, 1, 1), (2, 2, 2), (3, 2, 4), (1, 5, 2), (4, 4, 4)] {
            let c = classical(m, k, n);
            assert_eq!(c.rank(), m * k * n);
            c.verify(0.0).unwrap();
            // classical algorithm needs no additions on the input side
            // and (k-1) per output entry.
            assert_eq!(c.addition_count(1e-12), m * n * (k - 1));
        }
    }

    #[test]
    fn strassen_squared_is_444_rank_49() {
        let s = strassen();
        let s2 = kron_compose(&s, &s);
        assert_eq!(s2.base(), (4, 4, 4));
        assert_eq!(s2.rank(), 49);
        s2.verify(1e-12).unwrap();
    }

    #[test]
    fn strassen_times_112_is_224_rank_14() {
        let s = strassen();
        let c112 = classical(1, 1, 2);
        let d = kron_compose(&s, &c112);
        assert_eq!(d.base(), (2, 2, 4));
        assert_eq!(d.rank(), 14);
        d.verify(1e-12).unwrap();
    }

    #[test]
    fn compose_with_identity_base_preserves() {
        let s = strassen();
        let c111 = classical(1, 1, 1);
        let d = kron_compose(&s, &c111);
        assert_eq!(d.base(), (2, 2, 2));
        assert_eq!(d.rank(), 7);
        d.verify(1e-12).unwrap();
    }

    #[test]
    fn direct_sum_n_builds_223_rank_11() {
        let s = strassen();
        let c221 = classical(2, 2, 1);
        let d = direct_sum_n(&s, &c221);
        assert_eq!(d.base(), (2, 2, 3));
        assert_eq!(d.rank(), 11); // Hopcroft–Kerr optimal rank
        d.verify(1e-12).unwrap();
    }

    #[test]
    fn direct_sum_m_builds_322() {
        let s = strassen();
        let c122 = classical(1, 2, 2);
        let d = direct_sum_m(&s, &c122);
        assert_eq!(d.base(), (3, 2, 2));
        assert_eq!(d.rank(), 11);
        d.verify(1e-12).unwrap();
    }

    #[test]
    fn direct_sum_k_builds_232() {
        let s = strassen();
        let c212 = classical(2, 1, 2);
        let d = direct_sum_k(&s, &c212);
        assert_eq!(d.base(), (2, 3, 2));
        assert_eq!(d.rank(), 11);
        d.verify(1e-12).unwrap();
    }

    #[test]
    fn chained_sums_build_225_rank_18() {
        let s = strassen();
        let c112 = classical(1, 1, 2);
        let a224 = kron_compose(&s, &c112);
        let c221 = classical(2, 2, 1);
        let a225 = direct_sum_n(&a224, &c221);
        assert_eq!(a225.base(), (2, 2, 5));
        assert_eq!(a225.rank(), 18); // Hopcroft–Kerr rank from Table 2
        a225.verify(1e-12).unwrap();
    }

    #[test]
    fn composition_is_associative_in_rank_and_dims() {
        let s = strassen();
        let a = kron_compose(&kron_compose(&s, &s), &s);
        let b = kron_compose(&s, &kron_compose(&s, &s));
        assert_eq!(a.base(), (8, 8, 8));
        assert_eq!(b.base(), (8, 8, 8));
        assert_eq!(a.rank(), 343);
        assert_eq!(b.rank(), 343);
        a.verify(1e-12).unwrap();
        b.verify(1e-12).unwrap();
    }
}
