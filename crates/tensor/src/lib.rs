//! Tensor formulation of fast matrix multiplication.
//!
//! A fast algorithm for the base case `⟨M, K, N⟩` is a rank-`R`
//! decomposition `⟦U, V, W⟧` of the matrix-multiplication tensor
//! `T_{MKN}` (paper §2.2): `U ∈ R^{MK×R}`, `V ∈ R^{KN×R}`,
//! `W ∈ R^{MN×R}` with `t_ijk = Σ_r u_ir · v_jr · w_kr`.
//!
//! This crate provides:
//!
//! * [`Tensor3`] and [`matmul_tensor`] — the exact tensor `T_{MKN}`
//!   (§2.2.2) plus contraction/outer-product operations;
//! * [`Decomposition`] — the `⟦U,V,W⟧` triple with residual/verification
//!   against the Brent equations, sparsity statistics and cost model;
//! * [`transform`] — the permutation transforms of Propositions 2.1/2.2
//!   and the equivalence transforms of Proposition 2.3;
//! * [`compose`] — tensor-product composition and direct-sum splitting,
//!   the constructions used to derive higher base cases from smaller
//!   verified ones;
//! * [`linalg`] — the small dense kernels (Kronecker product, inversion,
//!   Householder-QR least squares) that the transforms and the ALS
//!   search (`fmm-search`) are built on.

pub mod compose;
mod decomp;
pub mod linalg;
mod tensor3;
pub mod transform;

pub use decomp::Decomposition;
pub use tensor3::{matmul_tensor, Tensor3};

/// Test fixtures shared by this crate's unit tests.
///
/// Note on conventions: the paper prints Strassen's `W` with rows
/// ordered by `vec(Cᵀ)` (column-major C); this workspace consistently
/// uses row-major `vec(C)`, so rows 2 and 3 are swapped relative to the
/// paper's §2.2.2 display.
#[cfg(test)]
pub(crate) mod fixtures {
    use crate::Decomposition;
    use fmm_matrix::Matrix;

    /// Strassen's rank-7 algorithm in row-major-vec convention.
    pub fn strassen() -> Decomposition {
        let u = Matrix::from_rows(&[
            &[1., 0., 1., 0., 1., -1., 0.],
            &[0., 0., 0., 0., 1., 0., 1.],
            &[0., 1., 0., 0., 0., 1., 0.],
            &[1., 1., 0., 1., 0., 0., -1.],
        ]);
        let v = Matrix::from_rows(&[
            &[1., 1., 0., -1., 0., 1., 0.],
            &[0., 0., 1., 0., 0., 1., 0.],
            &[0., 0., 0., 1., 0., 0., 1.],
            &[1., 0., -1., 0., 1., 0., 1.],
        ]);
        let w = Matrix::from_rows(&[
            &[1., 0., 0., 1., -1., 0., 1.], // C11 = M1+M4-M5+M7
            &[0., 0., 1., 0., 1., 0., 0.],  // C12 = M3+M5
            &[0., 1., 0., 1., 0., 0., 0.],  // C21 = M2+M4
            &[1., -1., 1., 0., 0., 1., 0.], // C22 = M1-M2+M3+M6
        ]);
        Decomposition::new(2, 2, 2, u, v, w)
    }
}
