//! `⟦U, V, W⟧` decompositions of matrix-multiplication tensors.

use crate::tensor3::{matmul_tensor, Tensor3};
use fmm_matrix::Matrix;

/// A (candidate) fast algorithm for the base case `⟨m, k, n⟩`: a rank-`R`
/// decomposition of `T_{⟨m,k,n⟩}` into factor matrices
/// `U ∈ R^{mk×R}`, `V ∈ R^{kn×R}`, `W ∈ R^{mn×R}`.
///
/// Column `r` encodes one "active multiplication":
/// `S_r = Σ u_{(i,p),r}·A_{ip}`, `T_r = Σ v_{(p,j),r}·B_{pj}`,
/// `M_r = S_r·T_r`, and `C_{ij} = Σ_r w_{(i,j),r}·M_r`.
#[derive(Clone, Debug, PartialEq)]
pub struct Decomposition {
    /// Base-case rows of A.
    pub m: usize,
    /// Base-case inner dimension.
    pub k: usize,
    /// Base-case columns of B.
    pub n: usize,
    /// `mk × R` factor for A-side linear combinations.
    pub u: Matrix,
    /// `kn × R` factor for B-side linear combinations.
    pub v: Matrix,
    /// `mn × R` factor for the output combinations.
    pub w: Matrix,
}

impl Decomposition {
    /// Assemble and shape-check a decomposition.
    ///
    /// # Panics
    /// Panics when the factor shapes are inconsistent with `⟨m,k,n⟩`.
    pub fn new(m: usize, k: usize, n: usize, u: Matrix, v: Matrix, w: Matrix) -> Self {
        assert_eq!(u.rows(), m * k, "U must have m·k = {} rows", m * k);
        assert_eq!(v.rows(), k * n, "V must have k·n = {} rows", k * n);
        assert_eq!(w.rows(), m * n, "W must have m·n = {} rows", m * n);
        let r = u.cols();
        assert_eq!(v.cols(), r, "V must have the same column count as U");
        assert_eq!(w.cols(), r, "W must have the same column count as U");
        Decomposition { m, k, n, u, v, w }
    }

    /// The rank `R` — the number of active multiplications per
    /// recursive step.
    #[inline]
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// Base case as a tuple.
    #[inline]
    pub fn base(&self) -> (usize, usize, usize) {
        (self.m, self.k, self.n)
    }

    /// Number of multiplies the classical algorithm uses for this base
    /// case (`m·k·n`).
    #[inline]
    pub fn classical_rank(&self) -> usize {
        self.m * self.k * self.n
    }

    /// Multiplication speedup per recursive step if additions were free
    /// (Table 2: `mkn/R − 1`, reported as a percentage).
    pub fn speedup_per_step(&self) -> f64 {
        self.classical_rank() as f64 / self.rank() as f64 - 1.0
    }

    /// Exponent of the arithmetic cost for *square* multiplication
    /// obtained by composing this base case with its permutations:
    /// `ω₀ = 3·log_{mkn}(R)` (§5.2 uses this for ⟨3,3,6⟩ ⇒ 2.775).
    pub fn square_exponent(&self) -> f64 {
        3.0 * (self.rank() as f64).ln() / ((self.m * self.k * self.n) as f64).ln()
    }

    /// Total non-zeros in the three factors, `nnz(U,V,W)` of §3.2.
    pub fn nnz(&self, tol: f64) -> usize {
        self.u.nnz(tol) + self.v.nnz(tol) + self.w.nnz(tol)
    }

    /// Reconstruct `Σ_r u_r ∘ v_r ∘ w_r` as a dense tensor.
    pub fn reconstruct(&self) -> Tensor3 {
        let mut t = Tensor3::zeros(self.u.rows(), self.v.rows(), self.w.rows());
        for r in 0..self.rank() {
            let ur = self.u.col(r);
            let vr = self.v.col(r);
            let wr = self.w.col(r);
            t.add_outer(1.0, &ur, &vr, &wr);
        }
        t
    }

    /// Max-norm residual against the exact matmul tensor — i.e. the
    /// worst violation of the Brent equations
    /// `Σ_r u_{ir} v_{jr} w_{kr} = t_{ijk}`.
    pub fn residual(&self) -> f64 {
        let exact = matmul_tensor(self.m, self.k, self.n);
        self.reconstruct().max_abs_diff(&exact)
    }

    /// Verify the decomposition is an exact algorithm within `tol`.
    pub fn verify(&self, tol: f64) -> Result<(), String> {
        let r = self.residual();
        if r <= tol {
            Ok(())
        } else {
            Err(format!(
                "⟨{},{},{}⟩ rank-{} candidate violates Brent equations: residual {r:.3e} > {tol:.1e}",
                self.m, self.k, self.n, self.rank()
            ))
        }
    }

    /// Number of *additions* needed to form all `S_r` and `T_r` and to
    /// combine the `M_r` into `C`, without common subexpression
    /// elimination: each column with `z` non-zeros costs `z − 1`
    /// additions, and each output block row similarly.
    pub fn addition_count(&self, tol: f64) -> usize {
        let col_adds = |mat: &Matrix| -> usize {
            (0..mat.cols())
                .map(|c| {
                    let z = (0..mat.rows()).filter(|&i| mat[(i, c)].abs() > tol).count();
                    z.saturating_sub(1)
                })
                .sum()
        };
        // U and V columns build S_r/T_r; W *rows* build the outputs C_ij
        // (each C_ij is a combination of the M_r with its row of W).
        let row_adds = |mat: &Matrix| -> usize {
            (0..mat.rows())
                .map(|i| {
                    let z = (0..mat.cols()).filter(|&c| mat[(i, c)].abs() > tol).count();
                    z.saturating_sub(1)
                })
                .sum()
        };
        col_adds(&self.u) + col_adds(&self.v) + row_adds(&self.w)
    }

    /// True when every factor entry is (within `tol`) a small dyadic
    /// rational `p/2^q` with `|p| ≤ 8`, `q ≤ 3` — the "simple values"
    /// the paper prefers for performance (§2.3).
    pub fn is_discrete(&self, tol: f64) -> bool {
        let ok = |x: f64| {
            for q in 0..=3 {
                let scaled = x * f64::powi(2.0, q);
                if (scaled - scaled.round()).abs() <= tol * f64::powi(2.0, q)
                    && scaled.round().abs() <= 8.0
                {
                    return true;
                }
            }
            false
        };
        self.u.as_slice().iter().all(|&x| ok(x))
            && self.v.as_slice().iter().all(|&x| ok(x))
            && self.w.as_slice().iter().all(|&x| ok(x))
    }

    /// Round near-dyadic entries to exact dyadic rationals in place
    /// (used after a successful numerical search).
    pub fn round_entries(&mut self, tol: f64) {
        let round_one = |x: &mut f64| {
            for q in 0..=3 {
                let p2 = f64::powi(2.0, q);
                let scaled = *x * p2;
                if (scaled - scaled.round()).abs() <= tol * p2 {
                    *x = scaled.round() / p2;
                    return;
                }
            }
        };
        self.u.as_mut_slice().iter_mut().for_each(round_one);
        self.v.as_mut_slice().iter_mut().for_each(round_one);
        self.w.as_mut_slice().iter_mut().for_each(round_one);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fixtures::strassen;

    #[test]
    fn strassen_satisfies_brent_equations() {
        let s = strassen();
        assert_eq!(s.rank(), 7);
        assert_eq!(s.residual(), 0.0);
        s.verify(0.0).unwrap();
    }

    #[test]
    fn strassen_statistics() {
        let s = strassen();
        assert!((s.speedup_per_step() - (8.0 / 7.0 - 1.0)).abs() < 1e-15);
        // ω = log2(7) ≈ 2.807
        assert!((s.square_exponent() - 7.0f64.log2() / 2.0f64.log2() * 3.0 / 3.0).abs() < 1e-12);
        assert!(s.is_discrete(1e-12));
        // Strassen: 18 additions without CSE (paper §2.1), counting the
        // W side by output rows: U has 5 two-term columns... total 18.
        assert_eq!(s.addition_count(1e-12), 18);
    }

    #[test]
    fn corrupted_strassen_fails_verification() {
        let mut s = strassen();
        s.u[(0, 0)] = 2.0;
        assert!(s.verify(1e-10).is_err());
        assert!(s.residual() > 0.5);
    }

    #[test]
    fn round_entries_snaps_noise() {
        let mut s = strassen();
        s.u[(0, 0)] += 1e-9;
        s.v[(3, 6)] -= 1e-9;
        s.round_entries(1e-7);
        assert_eq!(s.residual(), 0.0);
    }

    #[test]
    fn shape_checks_panic() {
        let u = Matrix::zeros(4, 7);
        let v = Matrix::zeros(4, 7);
        let w = Matrix::zeros(3, 7);
        let result = std::panic::catch_unwind(|| Decomposition::new(2, 2, 2, u, v, w));
        assert!(result.is_err());
    }

    #[test]
    fn discreteness_detects_halves_and_rejects_junk() {
        let mut s = strassen();
        s.u[(0, 0)] = 0.5;
        assert!(s.is_discrete(1e-12));
        s.u[(0, 0)] = 0.3333333;
        assert!(!s.is_discrete(1e-12));
    }
}
