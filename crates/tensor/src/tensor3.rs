//! Dense order-3 tensors and the matrix-multiplication tensor.

use fmm_matrix::Matrix;

/// A dense, real, order-3 tensor `T ∈ R^{I×J×K}`.
///
/// Entry `(i, j, k)` is stored at `data[(i*J + j)*K + k]` (the third
/// index is contiguous, i.e. the "tube" fibers are contiguous).
#[derive(Clone, PartialEq)]
pub struct Tensor3 {
    dims: [usize; 3],
    data: Vec<f64>,
}

impl Tensor3 {
    /// Zero tensor of the given dimensions.
    pub fn zeros(i: usize, j: usize, k: usize) -> Self {
        Tensor3 {
            dims: [i, j, k],
            data: vec![0.0; i * j * k],
        }
    }

    /// Dimensions `[I, J, K]`.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Entry `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[(i * self.dims[1] + j) * self.dims[2] + k]
    }

    /// Write entry `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        self.data[(i * self.dims[1] + j) * self.dims[2] + k] = v;
    }

    /// Backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of entries with magnitude above `tol`.
    pub fn nnz(&self, tol: f64) -> usize {
        self.data.iter().filter(|x| x.abs() > tol).count()
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `self += coef · (u ∘ v ∘ w)` (rank-one update, paper Table 1).
    pub fn add_outer(&mut self, coef: f64, u: &[f64], v: &[f64], w: &[f64]) {
        assert_eq!(u.len(), self.dims[0]);
        assert_eq!(v.len(), self.dims[1]);
        assert_eq!(w.len(), self.dims[2]);
        for (i, &ui) in u.iter().enumerate() {
            if ui == 0.0 {
                continue;
            }
            for (j, &vj) in v.iter().enumerate() {
                let uv = coef * ui * vj;
                if uv == 0.0 {
                    continue;
                }
                let base = (i * self.dims[1] + j) * self.dims[2];
                for (k, &wk) in w.iter().enumerate() {
                    self.data[base + k] += uv * wk;
                }
            }
        }
    }

    /// Contraction `T ×₁ a ×₂ b = c ∈ R^K`, i.e. `c_k = aᵀ T_k b`
    /// (paper §1.2). For the matmul tensor with `a = vec(A)`,
    /// `b = vec(B)` this yields `vec(C)`.
    pub fn contract12(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(a.len(), self.dims[0]);
        assert_eq!(b.len(), self.dims[1]);
        let mut c = vec![0.0; self.dims[2]];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                let ab = ai * bj;
                if ab == 0.0 {
                    continue;
                }
                let base = (i * self.dims[1] + j) * self.dims[2];
                for (k, ck) in c.iter_mut().enumerate() {
                    *ck += ab * self.data[base + k];
                }
            }
        }
        c
    }

    /// Frontal slice `T_k` as a matrix (paper Table 1: `T_k = t_{:,:,k}`).
    pub fn frontal_slice(&self, k: usize) -> Matrix {
        Matrix::from_fn(self.dims[0], self.dims[1], |i, j| self.get(i, j, k))
    }

    /// Mode-1 unfolding: `I × (J·K)` matrix with `(i, j*K+k) = t_ijk`.
    pub fn unfold1(&self) -> Matrix {
        Matrix::from_vec(self.dims[0], self.dims[1] * self.dims[2], self.data.clone())
    }

    /// Mode-2 unfolding: `J × (I·K)` matrix with `(j, i*K+k) = t_ijk`.
    pub fn unfold2(&self) -> Matrix {
        Matrix::from_fn(self.dims[1], self.dims[0] * self.dims[2], |j, col| {
            let (i, k) = (col / self.dims[2], col % self.dims[2]);
            self.get(i, j, k)
        })
    }

    /// Mode-3 unfolding: `K × (I·J)` matrix with `(k, i*J+j) = t_ijk`.
    pub fn unfold3(&self) -> Matrix {
        Matrix::from_fn(self.dims[2], self.dims[0] * self.dims[1], |k, col| {
            let (i, j) = (col / self.dims[1], col % self.dims[1]);
            self.get(i, j, k)
        })
    }

    /// Maximum absolute entry-wise difference with another tensor.
    pub fn max_abs_diff(&self, other: &Tensor3) -> f64 {
        assert_eq!(self.dims, other.dims, "tensor shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Debug for Tensor3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor3 {}x{}x{} (nnz {})",
            self.dims[0],
            self.dims[1],
            self.dims[2],
            self.nnz(0.0)
        )
    }
}

/// The matrix-multiplication tensor `T_{⟨M,K,N⟩}` of dimensions
/// `MK × KN × MN` (paper §2.2.2).
///
/// With row-major vectorizations `x = vec(A)`, `y = vec(B)`,
/// `z = vec(C)`, the tensor satisfies `T ×₁ x ×₂ y = z` for all valid
/// `A, B`. Entry `t_{ijl} = 1` exactly when the scalar product
/// `x_i · y_j` contributes to `z_l` in the classical algorithm.
pub fn matmul_tensor(m: usize, k: usize, n: usize) -> Tensor3 {
    assert!(m > 0 && k > 0 && n > 0, "dimensions must be positive");
    let mut t = Tensor3::zeros(m * k, k * n, m * n);
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                // A(i,p) * B(p,j) contributes to C(i,j).
                t.set(i * k + p, p * n + j, i * n + j, 1.0);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_tensor_has_mkn_nonzeros() {
        for &(m, k, n) in &[(2, 2, 2), (3, 2, 4), (1, 5, 2)] {
            let t = matmul_tensor(m, k, n);
            assert_eq!(t.dims(), [m * k, k * n, m * n]);
            assert_eq!(t.nnz(0.0), m * k * n);
        }
    }

    #[test]
    fn matmul_tensor_222_frontal_slices_match_paper() {
        // §2.2.2 writes the four frontal slices of T_{⟨2,2,2⟩} explicitly;
        // T3 ×₁ vec(A) ×₂ vec(B) = a21·b11 + a22·b21 = c21.
        let t = matmul_tensor(2, 2, 2);
        let t3 = t.frontal_slice(2); // zero-indexed slice 2 == paper's T3
        let expect = Matrix::from_rows(&[
            &[0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]);
        assert_eq!(t3, expect);
    }

    #[test]
    fn matmul_tensor_index_conditions() {
        // The paper's three 1-indexed membership conditions (§2.2.2)
        // must agree with our constructive definition.
        let (m, k, n) = (3, 4, 2);
        let t = matmul_tensor(m, k, n);
        for i in 1..=m * k {
            for j in 1..=k * n {
                for l in 1..=m * n {
                    let cond = (i - 1) % k == (j - 1) / n
                        && (j - 1) % n == (l - 1) % n
                        && (i - 1) / k == (l - 1) / n;
                    let val = t.get(i - 1, j - 1, l - 1);
                    assert_eq!(val != 0.0, cond, "mismatch at ({i},{j},{l})");
                }
            }
        }
    }

    #[test]
    fn contraction_computes_matmul() {
        let (m, k, n) = (3, 2, 4);
        let t = matmul_tensor(m, k, n);
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let z = t.contract12(a.as_slice(), b.as_slice());
        // Reference product.
        for i in 0..m {
            for j in 0..n {
                let want: f64 = (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum();
                assert!((z[i * n + j] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_outer_then_contract_is_bilinear() {
        let mut t = Tensor3::zeros(2, 3, 2);
        t.add_outer(2.0, &[1.0, 0.0], &[0.0, 1.0, 0.0], &[1.0, -1.0]);
        assert_eq!(t.get(0, 1, 0), 2.0);
        assert_eq!(t.get(0, 1, 1), -2.0);
        assert_eq!(t.nnz(0.0), 2);
        let c = t.contract12(&[3.0, 5.0], &[7.0, 11.0, 13.0]);
        assert_eq!(c, vec![2.0 * 3.0 * 11.0, -2.0 * 3.0 * 11.0]);
    }

    #[test]
    // spelled-out strides document the unfolding layout
    #[allow(clippy::identity_op, clippy::erasing_op)]
    fn unfoldings_preserve_entries() {
        let mut t = Tensor3::zeros(2, 3, 4);
        t.set(1, 2, 3, 5.0);
        t.set(0, 1, 2, -1.0);
        assert_eq!(t.unfold1()[(1, 2 * 4 + 3)], 5.0);
        assert_eq!(t.unfold2()[(2, 1 * 4 + 3)], 5.0);
        assert_eq!(t.unfold3()[(3, 1 * 3 + 2)], 5.0);
        assert_eq!(t.unfold3()[(2, 0 * 3 + 1)], -1.0);
    }

    #[test]
    fn frobenius_and_diff() {
        let mut a = Tensor3::zeros(2, 2, 2);
        a.set(0, 0, 0, 3.0);
        a.set(1, 1, 1, 4.0);
        assert!((a.frobenius() - 5.0).abs() < 1e-14);
        let b = Tensor3::zeros(2, 2, 2);
        assert_eq!(a.max_abs_diff(&b), 4.0);
    }
}
