//! Small dense linear-algebra kernels.
//!
//! These are helpers for *algorithm-sized* problems (factor matrices
//! have at most a few hundred rows), not for the multiplication
//! workloads themselves: Kronecker products for the Proposition 2.3
//! transforms, Gauss–Jordan inversion for the sandwich transform, and
//! regularized least squares for the ALS search of §2.3.2.

use fmm_matrix::Matrix;

/// Kronecker product `A ⊗ B`.
///
/// With row-major vectorization, `vec(P·A·Q) = (P ⊗ Qᵀ)·vec(A)`, which
/// is the identity the equivalence transforms rely on.
pub fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    Matrix::from_fn(ar * br, ac * bc, |i, j| {
        a[(i / br, j / bc)] * b[(i % br, j % bc)]
    })
}

/// Dense matrix product for small matrices (row-major, naive).
pub fn matmul_small(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for p in 0..a.cols() {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                c[(i, j)] += aip * b[(p, j)];
            }
        }
    }
    c
}

/// Inverse of a small square matrix by Gauss–Jordan elimination with
/// partial pivoting. Returns `None` for (numerically) singular input.
pub fn invert(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "invert requires a square matrix");
    let mut work = a.clone();
    let mut inv = Matrix::identity(n);
    for col in 0..n {
        // Pivot selection.
        let mut piv = col;
        let mut best = work[(col, col)].abs();
        for r in col + 1..n {
            if work[(r, col)].abs() > best {
                best = work[(r, col)].abs();
                piv = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if piv != col {
            for j in 0..n {
                let t = work[(col, j)];
                work[(col, j)] = work[(piv, j)];
                work[(piv, j)] = t;
                let t = inv[(col, j)];
                inv[(col, j)] = inv[(piv, j)];
                inv[(piv, j)] = t;
            }
        }
        let d = work[(col, col)];
        for j in 0..n {
            work[(col, j)] /= d;
            inv[(col, j)] /= d;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = work[(r, col)];
            if f == 0.0 {
                continue;
            }
            for j in 0..n {
                work[(r, j)] -= f * work[(col, j)];
                inv[(r, j)] -= f * inv[(col, j)];
            }
        }
    }
    Some(inv)
}

/// Solve the ridge-regularized least squares problem
/// `min_X ‖A·X − B‖² + λ‖X‖²` via the normal equations
/// `(AᵀA + λI)·X = AᵀB` with a Cholesky factorization.
///
/// This is the inner solve of one ALS half-step (§2.3.2); the
/// regularization term is the paper's ill-conditioning remedy.
pub fn ridge_solve(a: &Matrix, b: &Matrix, lambda: f64) -> Option<Matrix> {
    assert_eq!(a.rows(), b.rows(), "row mismatch in ridge_solve");
    let n = a.cols();
    let at = a.transpose();
    let mut g = matmul_small(&at, a);
    for i in 0..n {
        g[(i, i)] += lambda;
    }
    let rhs = matmul_small(&at, b);
    cholesky_solve(&g, &rhs)
}

/// Solve the attracted ridge problem
/// `min_X ‖A·X − B‖² + λ‖X‖² + μ‖X − T‖²` via
/// `(AᵀA + (λ+μ)I)·X = AᵀB + μ·T`.
///
/// With `T` a discretized snapshot of the current factor this is the
/// Smirnov-style penalty the paper's search uses to steer ALS toward
/// sparse, discrete solutions (§2.3.2: "using and adjusting the
/// regularization penalty term throughout the iteration").
pub fn ridge_solve_toward(
    a: &Matrix,
    b: &Matrix,
    lambda: f64,
    mu: f64,
    target: &Matrix,
) -> Option<Matrix> {
    assert_eq!(a.rows(), b.rows(), "row mismatch in ridge_solve_toward");
    assert_eq!(target.rows(), a.cols(), "target row mismatch");
    assert_eq!(target.cols(), b.cols(), "target col mismatch");
    let n = a.cols();
    let at = a.transpose();
    let mut g = matmul_small(&at, a);
    for i in 0..n {
        g[(i, i)] += lambda + mu;
    }
    let mut rhs = matmul_small(&at, b);
    for i in 0..n {
        for j in 0..rhs.cols() {
            rhs[(i, j)] += mu * target[(i, j)];
        }
    }
    cholesky_solve(&g, &rhs)
}

/// Solve `G·X = B` for symmetric positive-definite `G` via Cholesky.
pub fn cholesky_solve(g: &Matrix, b: &Matrix) -> Option<Matrix> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "cholesky requires square input");
    assert_eq!(b.rows(), n, "rhs row mismatch");
    // Factor G = L·Lᵀ.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = g[(i, j)];
            for p in 0..j {
                s -= l[(i, p)] * l[(j, p)];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    // Forward/backward substitution for each right-hand side column.
    let p = b.cols();
    let mut x = Matrix::zeros(n, p);
    for c in 0..p {
        // L·y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[(i, c)];
            for j in 0..i {
                s -= l[(i, j)] * y[j];
            }
            y[i] = s / l[(i, i)];
        }
        // Lᵀ·x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= l[(j, i)] * x[(j, c)];
            }
            x[(i, c)] = s / l[(i, i)];
        }
    }
    Some(x)
}

/// Khatri–Rao product (column-wise Kronecker): for `A (I×R)`, `B (J×R)`
/// returns the `IJ × R` matrix whose `r`-th column is `a_r ⊗ b_r`.
///
/// ALS solves for one factor with the Khatri–Rao product of the other
/// two as the design matrix.
pub fn khatri_rao(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "column mismatch in khatri_rao");
    let (i, r) = a.shape();
    let j = b.rows();
    Matrix::from_fn(i * j, r, |row, c| a[(row / j, c)] * b[(row % j, c)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kron_identity_is_identity() {
        let i2 = Matrix::identity(2);
        let i3 = Matrix::identity(3);
        assert_eq!(kron(&i2, &i3), Matrix::identity(6));
    }

    #[test]
    fn kron_small_example() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let k = kron(&a, &b);
        assert_eq!(k, Matrix::from_rows(&[&[3.0, 6.0], &[4.0, 8.0]]));
    }

    #[test]
    fn invert_round_trip() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                3.0
            } else {
                0.3 * ((i * 5 + j) as f64).sin()
            }
        });
        let ainv = invert(&a).expect("well-conditioned");
        let prod = matmul_small(&a, &ainv);
        let id = Matrix::identity(5);
        let d = fmm_matrix::max_abs_diff(&prod.as_ref(), &id.as_ref()).unwrap();
        assert!(d < 1e-10, "residual {d}");
    }

    #[test]
    fn invert_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(invert(&a).is_none());
    }

    #[test]
    fn ridge_solve_recovers_exact_solution() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::random(20, 6, &mut rng);
        let x_true = Matrix::random(6, 3, &mut rng);
        let b = matmul_small(&a, &x_true);
        let x = ridge_solve(&a, &b, 0.0).unwrap();
        let d = fmm_matrix::max_abs_diff(&x.as_ref(), &x_true.as_ref()).unwrap();
        assert!(d < 1e-9, "residual {d}");
    }

    #[test]
    fn ridge_regularization_shrinks_solution() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::random(15, 4, &mut rng);
        let b = Matrix::random(15, 1, &mut rng);
        let x0 = ridge_solve(&a, &b, 0.0).unwrap();
        let x1 = ridge_solve(&a, &b, 100.0).unwrap();
        let n0: f64 = x0.as_slice().iter().map(|v| v * v).sum();
        let n1: f64 = x1.as_slice().iter().map(|v| v * v).sum();
        assert!(n1 < n0);
    }

    #[test]
    fn ridge_toward_interpolates_to_target() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::random(12, 3, &mut rng);
        let b = Matrix::random(12, 2, &mut rng);
        let target = Matrix::filled(3, 2, 1.0);
        let x_free = ridge_solve(&a, &b, 0.0).unwrap();
        let x_pulled = ridge_solve_toward(&a, &b, 0.0, 1e6, &target).unwrap();
        // Huge attraction ⇒ solution ≈ target.
        let d = fmm_matrix::max_abs_diff(&x_pulled.as_ref(), &target.as_ref()).unwrap();
        assert!(d < 1e-3, "pulled {d}");
        // Zero attraction ⇒ plain least squares.
        let x_zero = ridge_solve_toward(&a, &b, 0.0, 0.0, &target).unwrap();
        let d0 = fmm_matrix::max_abs_diff(&x_zero.as_ref(), &x_free.as_ref()).unwrap();
        assert!(d0 < 1e-12);
    }

    #[test]
    fn khatri_rao_columns_are_krons() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]);
        let kr = khatri_rao(&a, &b);
        assert_eq!(kr.shape(), (6, 2));
        // column 0 = [1,3] ⊗ [5,7,9]
        assert_eq!(kr.col(0), vec![5.0, 7.0, 9.0, 15.0, 21.0, 27.0]);
        // column 1 = [2,4] ⊗ [6,8,10]
        assert_eq!(kr.col(1), vec![12.0, 16.0, 20.0, 24.0, 32.0, 40.0]);
    }

    #[test]
    fn cholesky_solve_spd() {
        let g = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let x = cholesky_solve(&g, &b).unwrap();
        // 4x + y = 1; x + 3y = 2 → x = 1/11, y = 7/11
        assert!((x[(0, 0)] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 7.0 / 11.0).abs() < 1e-12);
    }
}
