//! End-to-end: Strassen and two shape-matched algorithms against the
//! classical baseline at a fixed, CI-friendly size.

use criterion::{criterion_group, criterion_main, Criterion};
use fmm_core::{Planner, Workspace};
use fmm_gemm::gemm;
use fmm_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fast(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 512;
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);
    let mut out = Matrix::zeros(n, n);

    let mut group = c.benchmark_group("fast-vs-classical-512");
    group.sample_size(10);
    group.bench_function("classical", |bench| {
        bench.iter(|| {
            gemm(1.0, a.as_ref(), b.as_ref(), 0.0, out.as_mut());
            black_box(&out);
        })
    });
    for (name, alg, steps) in [
        ("strassen-1step", fmm_algo::strassen(), 1),
        ("strassen-2step", fmm_algo::strassen(), 2),
        ("winograd-2step", fmm_algo::winograd(), 2),
        (
            "<4,2,4>-1step",
            fmm_algo::by_name("<4,2,4>").unwrap().dec,
            1,
        ),
    ] {
        // Plan once outside the measured loop; the loop is the
        // allocation-free execute path on a reused workspace.
        let plan = Planner::new()
            .shape(n, n, n)
            .algorithm(&alg)
            .steps(steps)
            .plan()
            .expect("complete configuration");
        let mut ws = Workspace::for_plan(&plan);
        group.bench_function(name, |bench| {
            bench.iter(|| {
                plan.execute(&a, &b, &mut out, &mut ws);
                black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fast);
criterion_main!(benches);
