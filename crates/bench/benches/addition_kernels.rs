//! Microbenchmarks of the addition strategies' kernels (§3.2): the
//! same three-term chain evaluated pairwise, write-once and streaming.

use criterion::{criterion_group, criterion_main, Criterion};
use fmm_matrix::kernels;
use fmm_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_additions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 512;
    let x = Matrix::random(n, n, &mut rng);
    let y = Matrix::random(n, n, &mut rng);
    let z = Matrix::random(n, n, &mut rng);
    let mut out = Matrix::zeros(n, n);

    let mut group = c.benchmark_group("additions-512");
    group.bench_function("pairwise(copy+2axpy)", |bench| {
        bench.iter(|| {
            kernels::copy_scaled(out.as_mut(), 1.0, x.as_ref());
            kernels::axpy(out.as_mut(), -1.0, y.as_ref());
            kernels::axpy(out.as_mut(), 0.5, z.as_ref());
            black_box(&out);
        })
    });
    group.bench_function("write-once(lincomb)", |bench| {
        bench.iter(|| {
            kernels::lincomb(
                out.as_mut(),
                0.0,
                &[(1.0, x.as_ref()), (-1.0, y.as_ref()), (0.5, z.as_ref())],
            );
            black_box(&out);
        })
    });
    let mut t1 = Matrix::zeros(n, n);
    let mut t2 = Matrix::zeros(n, n);
    group.bench_function("streaming(one src, two dst)", |bench| {
        bench.iter(|| {
            let mut dsts = vec![(1.0, t1.as_mut()), (-0.5, t2.as_mut())];
            kernels::stream_update(&mut dsts, x.as_ref());
            black_box((&t1, &t2));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_additions);
criterion_main!(benches);
