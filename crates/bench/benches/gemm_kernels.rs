//! Microbenchmarks of the classical gemm substrate: block-size
//! ablation (DESIGN.md §5.6) and the packed vs naive gap.

use criterion::{criterion_group, criterion_main, Criterion};
use fmm_gemm::{gemm_with, naive_gemm, GemmConfig};
use fmm_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 256;
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);
    let mut out = Matrix::zeros(n, n);

    let mut group = c.benchmark_group("gemm-256");
    group.bench_function("naive", |bench| {
        bench.iter(|| {
            naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, out.as_mut());
            black_box(&out);
        })
    });
    for (label, cfg) in [
        ("packed-default", GemmConfig::default()),
        (
            "packed-small-blocks",
            GemmConfig {
                mc: 32,
                kc: 64,
                nc: 256,
                small_cutoff: 16,
            },
        ),
        (
            "packed-large-blocks",
            GemmConfig {
                mc: 256,
                kc: 512,
                nc: 4096,
                small_cutoff: 32,
            },
        ),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                gemm_with(&cfg, 1.0, a.as_ref(), b.as_ref(), 0.0, out.as_mut());
                black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
