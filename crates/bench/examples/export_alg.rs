//! Export a catalog algorithm as a `.alg` coefficient file on stdout,
//! e.g. to seed `crates/algo/data/`:
//!
//! ```text
//! cargo run -p fmm-bench --example export_alg -- strassen \
//!     > crates/algo/data/strassen_222.alg
//! ```

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: export_alg <name>   (e.g. strassen, winograd, '<2,2,3>')");
        std::process::exit(2);
    });
    let alg = fmm_algo::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown algorithm {name:?}");
        std::process::exit(2);
    });
    let comment = format!(
        "{} {} — rank {}, provenance {:?}",
        alg.name,
        alg.base_label(),
        alg.dec.rank(),
        alg.provenance
    );
    print!("{}", fmm_algo::serialize(&alg.dec, Some(&comment)));
}
