fn main() {
    let src = fmm_core::generate_rust(&fmm_algo::strassen(), "strassen_generated", false);
    std::fs::write("tests/generated/strassen_gen.rs", src).unwrap();
    println!("written");
}
