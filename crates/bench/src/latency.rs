//! Shared stream/latency measurement for the serving harnesses.
//!
//! `throughput` (one in-process engine) and `loadgen` (a shard fleet
//! behind `fmm-serve`) measure the same thing: N client threads
//! hammering a multiply service with a mixed-shape request stream,
//! reporting sustained multiplies/sec and p50/p99 latency. This module
//! is the single implementation of that loop and its percentile math,
//! so the two binaries' numbers are comparable by construction.

use std::time::Instant;

/// Summary statistics of one latency sample set.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Number of successful requests sampled.
    pub count: usize,
    /// Median request latency, seconds.
    pub p50_s: f64,
    /// 99th-percentile request latency, seconds.
    pub p99_s: f64,
    /// 99.9th-percentile request latency, seconds.
    pub p999_s: f64,
    /// Mean request latency, seconds.
    pub mean_s: f64,
}

impl LatencyStats {
    /// Compute from raw per-request seconds (order irrelevant; the
    /// slice is sorted in place). An empty sample yields zeros.
    pub fn from_samples(samples: &mut [f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats {
                count: 0,
                p50_s: 0.0,
                p99_s: 0.0,
                p999_s: 0.0,
                mean_s: 0.0,
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        LatencyStats {
            count: samples.len(),
            p50_s: percentile_sorted(samples, 0.50),
            p99_s: percentile_sorted(samples, 0.99),
            p999_s: percentile_sorted(samples, 0.999),
            mean_s: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }

    /// Compute from a nanosecond-valued latency
    /// [`Histogram`](fmm_trace::Histogram) — how
    /// the harnesses read tails straight out of engine/fleet stats
    /// instead of keeping every raw sample. Quantiles inherit the
    /// histogram's bucket-midpoint resolution
    /// (±[`fmm_trace::RELATIVE_ERROR_BOUND`]).
    pub fn from_histogram(hist: &fmm_trace::Histogram) -> LatencyStats {
        const NS: f64 = 1e9;
        LatencyStats {
            count: hist.count() as usize,
            p50_s: hist.quantile(0.50) as f64 / NS,
            p99_s: hist.quantile(0.99) as f64 / NS,
            p999_s: hist.quantile(0.999) as f64 / NS,
            mean_s: hist.mean() / NS,
        }
    }
}

/// Quantile `q` of an ascending-sorted sample. This is a re-export of
/// the workspace's one percentile implementation
/// ([`fmm_trace::percentile_sorted`]; the historical `throughput`
/// rule, index `⌊len·q⌋` clamped, `0.0` on an empty sample) — keep it
/// the only definition so `throughput`, `loadgen`, and the histogram
/// quantiles stay comparable by construction.
pub use fmm_trace::{percentile_rank, percentile_sorted};

/// One timed request from a mixed stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamSample {
    /// Which entry of the shape list this request multiplied.
    pub shape_idx: usize,
    /// Request latency, seconds.
    pub seconds: f64,
}

/// Everything a mixed-shape stream run produced.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Per-request samples of the *successful* requests.
    pub samples: Vec<StreamSample>,
    /// Requests whose worker reported failure.
    pub failures: usize,
    /// Wall-clock seconds for the whole stream (all clients).
    pub total_s: f64,
}

impl StreamOutcome {
    /// Sustained successful multiplies per second.
    pub fn mps(&self) -> f64 {
        if self.total_s > 0.0 {
            self.samples.len() as f64 / self.total_s
        } else {
            0.0
        }
    }

    /// Latency statistics across every successful request.
    pub fn latency(&self) -> LatencyStats {
        let mut lat: Vec<f64> = self.samples.iter().map(|s| s.seconds).collect();
        LatencyStats::from_samples(&mut lat)
    }

    /// Mean latency of the requests that hit shape `idx` (`None` if
    /// the stream never touched it).
    pub fn shape_mean(&self, idx: usize) -> Option<f64> {
        let lat: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.shape_idx == idx)
            .map(|s| s.seconds)
            .collect();
        if lat.is_empty() {
            None
        } else {
            Some(lat.iter().sum::<f64>() / lat.len() as f64)
        }
    }
}

/// Drive a mixed-shape request stream from `clients` OS threads.
///
/// Each client issues `requests_per_client` requests, walking the
/// shape list staggered by client index (`(client + req) % num_shapes`)
/// so the stream stays mixed at every instant — the same access
/// pattern the `throughput` binary has always used. `make_worker`
/// builds one worker per client thread (its chance to clone an engine
/// handle or open its own connection); the worker executes one request
/// for a shape index and reports success.
pub fn run_mixed_stream<W, F>(
    clients: usize,
    requests_per_client: usize,
    num_shapes: usize,
    make_worker: F,
) -> StreamOutcome
where
    F: Fn(usize) -> W + Sync,
    W: FnMut(usize) -> bool,
{
    assert!(num_shapes > 0, "a stream needs at least one shape");
    let clients = clients.max(1);
    let t0 = Instant::now();
    let per_client: Vec<(Vec<StreamSample>, usize)> = std::thread::scope(|scope| {
        let make_worker = &make_worker;
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut worker = make_worker(client);
                    let mut local = Vec::with_capacity(requests_per_client);
                    let mut failures = 0usize;
                    for req in 0..requests_per_client {
                        let shape_idx = (client + req) % num_shapes;
                        let t = Instant::now();
                        if worker(shape_idx) {
                            local.push(StreamSample {
                                shape_idx,
                                seconds: t.elapsed().as_secs_f64(),
                            });
                        } else {
                            failures += 1;
                        }
                    }
                    (local, failures)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream client thread"))
            .collect()
    });
    let total_s = t0.elapsed().as_secs_f64();
    let mut samples = Vec::with_capacity(clients * requests_per_client);
    let mut failures = 0;
    for (local, f) in per_client {
        samples.extend(local);
        failures += f;
    }
    StreamOutcome {
        samples,
        failures,
        total_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_match_historical_rule() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&sorted, 0.50), 51.0);
        assert_eq!(percentile_sorted(&sorted, 0.99), 100.0);
        assert_eq!(percentile_sorted(&[7.0], 0.50), 7.0);
        assert_eq!(percentile_sorted(&[7.0], 0.99), 7.0);
        // Edge cases that used to bite: empty set no longer panics,
        // and a single sample answers every quantile.
        assert_eq!(percentile_sorted(&[], 0.50), 0.0);
        assert_eq!(percentile_rank(0, 0.99), None);
        assert_eq!(percentile_sorted(&[7.0], 0.999), 7.0);
    }

    #[test]
    fn stats_from_histogram_track_recorded_values() {
        let mut hist = fmm_trace::Histogram::new();
        // 1 ms × 99, 100 ms × 1: p50 near 1 ms, p999 near 100 ms.
        hist.record_n(1_000_000, 99);
        hist.record(100_000_000);
        let stats = LatencyStats::from_histogram(&hist);
        assert_eq!(stats.count, 100);
        assert!((stats.p50_s - 1e-3).abs() <= 1e-3 * fmm_trace::RELATIVE_ERROR_BOUND);
        assert!((stats.p999_s - 0.1).abs() <= 0.1 * fmm_trace::RELATIVE_ERROR_BOUND);
        assert!(stats.p50_s <= stats.p99_s && stats.p99_s <= stats.p999_s);

        let empty = LatencyStats::from_histogram(&fmm_trace::Histogram::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p999_s, 0.0);
    }

    #[test]
    fn latency_stats_handles_empty_and_unsorted() {
        let empty = LatencyStats::from_samples(&mut []);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p50_s, 0.0);

        let mut raw = vec![3.0, 1.0, 2.0];
        let stats = LatencyStats::from_samples(&mut raw);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.p50_s, 2.0);
        assert_eq!(stats.p99_s, 3.0);
        assert!((stats.mean_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_stream_staggers_clients_and_counts_failures() {
        let outcome = run_mixed_stream(3, 8, 4, |client| {
            move |shape_idx: usize| {
                // Client 2 fails every request to shape 0.
                !(client == 2 && shape_idx == 0)
            }
        });
        // 3 clients × 8 requests; client 2 hits shape 0 twice.
        assert_eq!(outcome.samples.len() + outcome.failures, 24);
        assert_eq!(outcome.failures, 2);
        assert!(outcome.total_s >= 0.0);
        assert!(outcome.mps() > 0.0);
        // Every shape got traffic from the stagger pattern.
        for idx in 0..4 {
            assert!(outcome.shape_mean(idx).is_some(), "shape {idx} unserved");
        }
        assert_eq!(outcome.latency().count, 22);
    }
}
