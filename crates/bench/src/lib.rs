//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/`; this
//! library provides the common pieces: median timing, thread-pool
//! control (the analog of the paper's 6-core/24-core sweeps at this
//! machine's scale), best-of-steps selection (§5: "we take the best of
//! one, two, or three steps of recursion"), and CSV/JSON emission so
//! EXPERIMENTS.md can quote results directly.

pub mod latency;

pub use latency::{
    percentile_rank, percentile_sorted, run_mixed_stream, LatencyStats, StreamOutcome, StreamSample,
};

use fmm_core::{AdditionMethod, GemmScalar, Options, Planner, Scheme, Workspace};
use fmm_matrix::{DenseMatrix, Matrix, Scalar};
use fmm_tensor::Decomposition;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Element type a harness binary runs its measurements in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dtype {
    /// Double precision (the historical default).
    #[default]
    F64,
    /// Single precision: half the memory traffic, double SIMD width.
    F32,
}

/// Command-line configuration shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Quick mode shrinks sweeps for CI; full mode runs the real sizes.
    pub quick: bool,
    /// Timing repetitions (median is reported; paper uses 5).
    pub trials: usize,
    /// Thread counts to sweep for parallel experiments.
    pub thread_counts: Vec<usize>,
    /// Optional JSON output path.
    pub json_out: Option<String>,
    /// Optional path for an end-of-run engine/fleet stats JSON dump
    /// (`--stats-json PATH`; which document depends on the binary).
    pub stats_json: Option<String>,
    /// Element type to measure in (`--dtype f32|f64`; default f64).
    pub dtype: Dtype,
}

impl HarnessConfig {
    /// Parse from `std::env::args`: `--quick` (default), `--full`,
    /// `--trials T`, `--threads 1,2`, `--json PATH`,
    /// `--stats-json PATH`, `--dtype f32|f64`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut cfg = HarnessConfig {
            quick: true,
            trials: 3,
            thread_counts: vec![1, num_threads_available()],
            json_out: None,
            stats_json: None,
            dtype: Dtype::F64,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => cfg.quick = true,
                "--full" => cfg.quick = false,
                "--trials" => {
                    i += 1;
                    cfg.trials = args[i].parse().expect("--trials N");
                }
                "--threads" => {
                    i += 1;
                    cfg.thread_counts = args[i]
                        .split(',')
                        .map(|t| t.parse().expect("--threads 1,2"))
                        .collect();
                }
                "--json" => {
                    i += 1;
                    cfg.json_out = Some(args[i].clone());
                }
                "--stats-json" => {
                    i += 1;
                    cfg.stats_json = Some(args[i].clone());
                }
                "--dtype" => {
                    i += 1;
                    cfg.dtype = match args[i].as_str() {
                        "f64" => Dtype::F64,
                        "f32" => Dtype::F32,
                        other => panic!("--dtype must be f32 or f64, got {other}"),
                    };
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
            i += 1;
        }
        cfg
    }
}

/// Available hardware parallelism.
pub fn num_threads_available() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get())
}

/// A rayon pool with exactly `threads` threads, memoized per width for
/// the whole process: the fig/table binaries call this once per
/// measurement, and spinning worker threads up (and tearing them down)
/// inside a sweep both wastes time and — when the caller times around
/// the `install` — pollutes the measured region. Every caller of the
/// same width shares one long-lived pool.
pub fn pool(threads: usize) -> Arc<rayon::ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut by_width = pools.lock().unwrap();
    Arc::clone(by_width.entry(threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool"),
        )
    }))
}

/// Median wall-clock seconds over `trials` runs of `f`.
pub fn time_median<F: FnMut()>(mut f: F, trials: usize) -> f64 {
    let mut times: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Random operands for a `P × Q × R` problem, in any element type.
/// Same seed ⇒ the same underlying draw sequence for every dtype, so
/// cross-dtype comparisons multiply "the same" matrices.
pub fn workload_in<T: GemmScalar>(
    p: usize,
    q: usize,
    r: usize,
    seed: u64,
) -> (DenseMatrix<T>, DenseMatrix<T>) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        DenseMatrix::random(p, q, &mut rng),
        DenseMatrix::random(q, r, &mut rng),
    )
}

/// [`workload_in`] at the default element type.
pub fn workload(p: usize, q: usize, r: usize, seed: u64) -> (Matrix, Matrix) {
    workload_in::<f64>(p, q, r, seed)
}

/// One measurement row, serializable for EXPERIMENTS.md extraction.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Experiment identifier (e.g. "fig5-square").
    pub experiment: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Problem dims.
    pub p: usize,
    /// Inner dimension.
    pub q: usize,
    /// Output columns.
    pub r: usize,
    /// Threads used (1 = sequential).
    pub threads: usize,
    /// Recursion steps that achieved the best time (0 = classical).
    pub steps: usize,
    /// Median seconds.
    pub seconds: f64,
    /// Effective GFLOPS (Eq. 3).
    pub effective_gflops: f64,
}

impl Measurement {
    /// CSV header matching [`Measurement::csv_row`].
    pub fn csv_header() -> &'static str {
        "experiment,algorithm,p,q,r,threads,steps,seconds,effective_gflops"
    }

    /// Render as a CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.6},{:.3}",
            self.experiment,
            self.algorithm,
            self.p,
            self.q,
            self.r,
            self.threads,
            self.steps,
            self.seconds,
            self.effective_gflops
        )
    }
}

/// Time the classical baseline (our MKL stand-in) on a problem, in any
/// element type. The f32 row is labelled `classical(gemm)[f32]` so
/// `summarize` keeps the dtypes apart.
pub fn measure_classical_in<T: GemmScalar>(
    experiment: &str,
    p: usize,
    q: usize,
    r: usize,
    threads: usize,
    trials: usize,
) -> Measurement {
    let (a, b) = workload_in::<T>(p, q, r, 42);
    let mut c = DenseMatrix::<T>::zeros(p, r);
    let tp = pool(threads);
    let secs = if threads == 1 {
        time_median(
            || fmm_gemm::gemm(T::ONE, a.as_ref(), b.as_ref(), T::ZERO, c.as_mut()),
            trials,
        )
    } else {
        tp.install(|| {
            time_median(
                || fmm_gemm::par_gemm(T::ONE, a.as_ref(), b.as_ref(), T::ZERO, c.as_mut()),
                trials,
            )
        })
    };
    Measurement {
        experiment: experiment.into(),
        algorithm: format!("classical(gemm){}", dtype_tag::<T>()),
        p,
        q,
        r,
        threads,
        steps: 0,
        seconds: secs,
        effective_gflops: fmm_gemm::effective_gflops(p, q, r, secs),
    }
}

/// `""` for f64 (keeping historical labels stable), `"[f32]"` etc.
/// otherwise.
pub fn dtype_tag<T: Scalar>() -> String {
    if T::NAME == "f64" {
        String::new()
    } else {
        format!("[{}]", T::NAME)
    }
}

/// [`measure_classical_in`] at the default element type.
pub fn measure_classical(
    experiment: &str,
    p: usize,
    q: usize,
    r: usize,
    threads: usize,
    trials: usize,
) -> Measurement {
    measure_classical_in::<f64>(experiment, p, q, r, threads, trials)
}

/// Time a fast algorithm with the given options, taking the best over
/// `steps_candidates` recursion depths (paper §5 protocol).
///
/// Planning (and the workspace allocation it sizes) happens once per
/// depth candidate, outside the timed region — the timed loop is the
/// allocation-free [`fmm_core::Plan::execute`] hot path, which is what
/// a production caller would run.
#[allow(clippy::too_many_arguments)]
pub fn measure_fast_in<T: GemmScalar>(
    experiment: &str,
    name: &str,
    dec: &Decomposition,
    p: usize,
    q: usize,
    r: usize,
    threads: usize,
    steps_candidates: &[usize],
    base_opts: Options,
    trials: usize,
) -> Measurement {
    let (a, b) = workload_in::<T>(p, q, r, 42);
    let mut c = DenseMatrix::<T>::zeros(p, r);
    let tp = pool(threads);
    let mut best = (f64::INFINITY, 0usize);
    for &steps in steps_candidates {
        let plan = Planner::new()
            .shape(p, q, r)
            .algorithm(dec)
            .steps(steps)
            .options(base_opts)
            .plan::<T>()
            .expect("harness planner configuration is complete");
        let mut ws = Workspace::for_plan(&plan);
        let secs = tp.install(|| time_median(|| plan.execute(&a, &b, &mut c, &mut ws), trials));
        if secs < best.0 {
            best = (secs, steps);
        }
    }
    Measurement {
        experiment: experiment.into(),
        algorithm: format!("{name}{}", dtype_tag::<T>()),
        p,
        q,
        r,
        threads,
        steps: best.1,
        seconds: best.0,
        effective_gflops: fmm_gemm::effective_gflops(p, q, r, best.0),
    }
}

/// [`measure_fast_in`] at the default element type.
#[allow(clippy::too_many_arguments)]
pub fn measure_fast(
    experiment: &str,
    name: &str,
    dec: &Decomposition,
    p: usize,
    q: usize,
    r: usize,
    threads: usize,
    steps_candidates: &[usize],
    base_opts: Options,
    trials: usize,
) -> Measurement {
    measure_fast_in::<f64>(
        experiment,
        name,
        dec,
        p,
        q,
        r,
        threads,
        steps_candidates,
        base_opts,
        trials,
    )
}

/// Scheme used by the paper's §5 protocol at a given core count:
/// best of BFS and HYBRID on few cores, best of DFS and HYBRID on many.
pub fn schemes_for_threads(threads: usize) -> Vec<Scheme> {
    if threads == 1 {
        vec![Scheme::Sequential]
    } else if threads <= 8 {
        vec![Scheme::Bfs, Scheme::Hybrid]
    } else {
        vec![Scheme::Dfs, Scheme::Hybrid]
    }
}

/// Best measurement across the §5 scheme set for this thread count.
#[allow(clippy::too_many_arguments)]
pub fn measure_fast_best_scheme(
    experiment: &str,
    name: &str,
    dec: &Decomposition,
    p: usize,
    q: usize,
    r: usize,
    threads: usize,
    steps_candidates: &[usize],
    trials: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for scheme in schemes_for_threads(threads) {
        let m = measure_fast(
            experiment,
            name,
            dec,
            p,
            q,
            r,
            threads,
            steps_candidates,
            Options {
                scheme,
                additions: AdditionMethod::WriteOnce,
                ..Options::default()
            },
            trials,
        );
        if best.as_ref().is_none_or(|b| m.seconds < b.seconds) {
            best = Some(m);
        }
    }
    best.expect("at least one scheme")
}

/// Emit measurements: CSV to stdout, optional JSON file.
pub fn emit(cfg: &HarnessConfig, rows: &[Measurement]) {
    println!("{}", Measurement::csv_header());
    for row in rows {
        println!("{}", row.csv_row());
    }
    if let Some(path) = &cfg.json_out {
        let json = serde_json::to_string_pretty(rows).expect("serialize");
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_median_is_positive_and_ordered() {
        let t = time_median(
            || {
                std::hint::black_box(1 + 1);
            },
            5,
        );
        assert!(t >= 0.0);
    }

    #[test]
    fn measurement_csv_row_has_all_fields() {
        let m = Measurement {
            experiment: "x".into(),
            algorithm: "y".into(),
            p: 1,
            q: 2,
            r: 3,
            threads: 1,
            steps: 1,
            seconds: 0.5,
            effective_gflops: 1.0,
        };
        assert_eq!(m.csv_row().split(',').count(), 9);
        assert_eq!(Measurement::csv_header().split(',').count(), 9);
    }

    #[test]
    fn pool_is_memoized_per_width() {
        let first = pool(2);
        let second = pool(2);
        assert!(
            Arc::ptr_eq(&first, &second),
            "same width must share one pool"
        );
        assert_eq!(first.current_num_threads(), 2);
        let other = pool(3);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(other.current_num_threads(), 3);
    }

    #[test]
    fn classical_measurement_runs() {
        let m = measure_classical("t", 64, 64, 64, 1, 1);
        assert!(m.seconds > 0.0);
        assert!(m.effective_gflops > 0.0);
    }

    #[test]
    fn fast_measurement_picks_a_step_count() {
        let s = fmm_algo::strassen();
        let m = measure_fast(
            "t",
            "strassen",
            &s,
            64,
            64,
            64,
            1,
            &[1, 2],
            Options::default(),
            1,
        );
        assert!(m.steps == 1 || m.steps == 2);
    }

    #[test]
    fn scheme_selection_matches_paper_protocol() {
        assert_eq!(schemes_for_threads(1), vec![Scheme::Sequential]);
        assert_eq!(schemes_for_threads(2), vec![Scheme::Bfs, Scheme::Hybrid]);
        assert_eq!(schemes_for_threads(24), vec![Scheme::Dfs, Scheme::Hybrid]);
    }
}
