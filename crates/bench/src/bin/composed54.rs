//! §5.2: the composed ⟨54,54,54⟩ algorithm — asymptotically the
//! fastest implemented (ω₀ ≈ 2.775 with rank-40 ⟨3,3,6⟩), but not
//! practical at modest sizes. Compares the three-level schedule
//! against Strassen and the classical baseline.

use fmm_bench::*;
use fmm_matrix::Matrix;

fn main() {
    let cfg = HarnessConfig::from_args();
    let sizes: Vec<usize> = if cfg.quick {
        vec![216, 324, 432]
    } else {
        vec![324, 540, 756, 1080]
    };
    let sched = fmm_algo::schedule_54();
    let strassen = fmm_algo::strassen();
    // One sequential engine pinned to the composed schedule serves
    // every problem size; its plan cache keeps each size's plan.
    let engine = fmm_core::FmmEngine::builder()
        .threads(1)
        .schedule(&sched)
        .build()
        .expect("engine");
    let mut rows = Vec::new();
    for &n in &sizes {
        rows.push(measure_classical("composed54", n, n, n, 1, cfg.trials));
        rows.push(measure_fast(
            "composed54",
            "strassen",
            &strassen,
            n,
            n,
            n,
            1,
            &[1, 2, 3],
            Default::default(),
            cfg.trials,
        ));
        // The full three-level schedule behind the engine front door:
        // the warm-up call plans the shape and sizes a pooled
        // workspace, so the timed region is cache-hit, allocation-free
        // serving.
        let (a, b) = workload(n, n, n, 42);
        let mut c = Matrix::zeros(n, n);
        engine.multiply_into(&a, &b, &mut c).expect("warm-up");
        let secs = time_median(
            || engine.multiply_into(&a, &b, &mut c).expect("serve"),
            cfg.trials,
        );
        rows.push(Measurement {
            experiment: "composed54".into(),
            algorithm: "<54,54,54> (336∘363∘633)".into(),
            p: n,
            q: n,
            r: n,
            threads: 1,
            steps: 3,
            seconds: secs,
            effective_gflops: fmm_gemm::effective_gflops(n, n, n, secs),
        });
    }
    let rank: usize = sched.iter().map(|d| d.rank()).product();
    eprintln!(
        "schedule rank {rank} → ω₀ = {:.3}",
        3.0 * (rank as f64).ln() / (54.0f64 * 54.0 * 54.0).ln()
    );
    emit(&cfg, &rows);
}
