//! Figure 2: the three addition strategies (pairwise / write-once /
//! streaming) with and without CSE, for ⟨4,2,4⟩ on an outer-product
//! shape and ⟨4,2,3⟩ on square problems, at one and two recursive steps.

use fmm_bench::*;
use fmm_core::{AdditionMethod, Options};

fn main() {
    let cfg = HarnessConfig::from_args();
    let k_fixed = if cfg.quick { 512 } else { 1600 };
    let sizes: Vec<usize> = if cfg.quick {
        vec![256, 384, 512, 768]
    } else {
        vec![512, 1024, 1536, 2048]
    };
    let a424 = fmm_algo::by_name("<4,2,4>").unwrap();
    let a423 = fmm_algo::by_name("<4,2,3>").unwrap();
    let variants = [
        ("write-once", AdditionMethod::WriteOnce, false),
        ("write-once+CSE", AdditionMethod::WriteOnce, true),
        ("streaming", AdditionMethod::Streaming, false),
        ("streaming+CSE", AdditionMethod::Streaming, true),
        ("pairwise", AdditionMethod::Pairwise, false),
        ("pairwise+CSE", AdditionMethod::Pairwise, true),
    ];
    let mut rows = Vec::new();
    for steps in [1usize, 2] {
        for &n in &sizes {
            for (vname, additions, cse) in variants {
                let opts = Options {
                    steps,
                    additions,
                    cse,
                    ..Default::default()
                };
                let mut m = measure_fast(
                    &format!("fig2-424-{steps}step"),
                    &format!("<4,2,4> {vname}"),
                    &a424.dec,
                    n,
                    k_fixed,
                    n,
                    1,
                    &[steps],
                    opts,
                    cfg.trials,
                );
                m.steps = steps;
                rows.push(m);
                let mut m = measure_fast(
                    &format!("fig2-423-{steps}step"),
                    &format!("<4,2,3> {vname}"),
                    &a423.dec,
                    n,
                    n,
                    n,
                    1,
                    &[steps],
                    opts,
                    cfg.trials,
                );
                m.steps = steps;
                rows.push(m);
            }
        }
    }
    emit(&cfg, &rows);
}
