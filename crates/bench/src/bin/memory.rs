//! §4.2 memory-footprint experiment: measured temporary storage of the
//! executor per scheme and step count, against the paper's R/(MN)
//! model. (The paper reports that some 3-step square runs exceeded the
//! node's 64 GB; this harness shows the growth law.)

use fmm_bench::*;
use fmm_core::FmmEngine;
use fmm_matrix::Matrix;

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = if cfg.quick { 512 } else { 2048 };
    println!("algorithm,steps,temp_MB,workspace_MB,model_MB,c_MB");
    for name in ["strassen", "<4,2,4>", "<4,3,3>", "<3,3,3>"] {
        let alg = fmm_algo::by_name(name).unwrap();
        let (m, _, nn) = alg.dec.base();
        let rank = alg.dec.rank() as f64;
        let (a, b) = workload(n, n, n, 1);
        let mut c = Matrix::zeros(n, n);
        for steps in 1..=2usize {
            // One sequential engine per (algorithm, depth) — both are
            // engine-level configuration in this ablation — whose
            // single serve returns the snapshot carrying the measured
            // temporary footprint.
            let engine = FmmEngine::builder()
                .threads(1)
                .algorithm(&alg.dec)
                .steps(steps)
                .build()
                .expect("engine");
            let stats = engine.multiply_with_stats(&a, &b, &mut c).expect("serve");
            let temp_mb = stats.temp_elements as f64 * 8.0 / 1e6;
            let ws_mb = stats.workspace_bytes as f64 / 1e6;
            // Geometric model: Σ_l (R/(M·N))^l · |C| for the M_r alone.
            let ratio = rank / (m as f64 * nn as f64);
            let model: f64 =
                (1..=steps).map(|l| ratio.powi(l as i32)).sum::<f64>() * (n * n) as f64 * 8.0 / 1e6;
            println!(
                "{name},{steps},{temp_mb:.1},{ws_mb:.1},{model:.1},{:.1}",
                (n * n) as f64 * 8.0 / 1e6
            );
        }
    }
}
