//! Read the JSON emitted by figure binaries and print a paper-style
//! comparison: per experiment and problem size, which algorithm wins
//! and the percentage gap to the classical baseline. This is the table
//! generator behind EXPERIMENTS.md.

use serde::Deserialize;
use std::collections::BTreeMap;

#[derive(Deserialize)]
struct Row {
    experiment: String,
    algorithm: String,
    p: usize,
    q: usize,
    r: usize,
    threads: usize,
    effective_gflops: f64,
}

/// Element-type tag of a measurement row: the `[tag]` the measure
/// helpers append to non-f64 algorithm names, `"f64"` when absent.
fn dtype_of(algorithm: &str) -> String {
    algorithm
        .find('[')
        .and_then(|open| {
            let rest = &algorithm[open + 1..];
            rest.find(']').map(|close| rest[..close].to_string())
        })
        .unwrap_or_else(|| "f64".into())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: summarize <results.json>…");
        std::process::exit(2);
    }
    let mut rows: Vec<Row> = Vec::new();
    for p in &paths {
        let text = std::fs::read_to_string(p).expect("read json");
        let batch: Vec<Row> = serde_json::from_str(&text).expect("parse json");
        rows.extend(batch);
    }
    // (experiment, dtype, p, q, r, threads) → [(alg, gflops)]. The
    // dtype comes from the `[f32]`-style tag the measure helpers append
    // to non-f64 algorithm names; grouping on it keeps an f32 winner
    // from being scored against the f64 classical baseline (or vice
    // versa) when result files of both dtypes are summarized together.
    type Groups = BTreeMap<(String, String, usize, usize, usize, usize), Vec<(String, f64)>>;
    let mut groups: Groups = BTreeMap::new();
    for row in rows {
        let dtype = dtype_of(&row.algorithm);
        groups
            .entry((row.experiment, dtype, row.p, row.q, row.r, row.threads))
            .or_default()
            .push((row.algorithm, row.effective_gflops));
    }
    println!(
        "{:<14} {:>22} {:>3}T  {:<22} {:>8}  {:>12}",
        "experiment", "problem", "", "winner", "GFLOPS", "vs classical"
    );
    for ((exp, _dtype, p, q, r, threads), algs) in groups {
        // The serving-tier experiment has no classical row: its
        // baseline is the single-process engine the fleet competes
        // against.
        let baseline_prefix = if exp == "loadgen" {
            "engine"
        } else {
            "classical"
        };
        let classical = algs
            .iter()
            .find(|(name, _)| name.starts_with(baseline_prefix))
            .map(|&(_, g)| g);
        let (best_name, best_g) = algs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .cloned()
            .unwrap();
        let vs = classical
            .map(|c| format!("{:+.1}%", (best_g / c - 1.0) * 100.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:<14} {:>22} {:>3}T  {:<22} {:>8.2}  {:>12}",
            exp,
            format!("{p}x{q}x{r}"),
            threads,
            best_name,
            best_g,
            vs
        );
    }
}
