//! Read the JSON emitted by figure binaries and print a paper-style
//! comparison: per experiment and problem size, which algorithm wins
//! and the percentage gap to the classical baseline. This is the table
//! generator behind EXPERIMENTS.md.
//!
//! Beyond the measurement tables, two stats-document modes digest the
//! always-on latency histograms:
//!
//! * `--engine-stats FILE` — an [`fmm_core::EngineStats`] JSON (from
//!   `throughput --stats-json`): per-shape-class p50/p99/p999 columns.
//! * `--fleet-stats FILE` — an [`fmm_serve::FleetStats`] JSON (from
//!   `loadgen --stats-json`): the same table for both the engine-side
//!   and router-side views, plus a fleet-vs-engine tail score (the
//!   serving tier's p99/p999 overhead over the raw engines).

use fmm_trace::{merged_total, HistogramRow, RELATIVE_ERROR_BOUND};
use serde::Deserialize;
use std::collections::BTreeMap;

#[derive(Deserialize)]
struct Row {
    experiment: String,
    algorithm: String,
    p: usize,
    q: usize,
    r: usize,
    threads: usize,
    effective_gflops: f64,
}

/// Element-type tag of a measurement row: the `[tag]` the measure
/// helpers append to non-f64 algorithm names, `"f64"` when absent.
fn dtype_of(algorithm: &str) -> String {
    algorithm
        .find('[')
        .and_then(|open| {
            let rest = &algorithm[open + 1..];
            rest.find(']').map(|close| rest[..close].to_string())
        })
        .unwrap_or_else(|| "f64".into())
}

/// Per-shape-class latency table from histogram rows, with a merged
/// "(all)" footer. Values are nanoseconds in the histogram.
fn print_tails(title: &str, rows: &[HistogramRow]) {
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "\n{title} latency by shape class (histogram resolution ±{:.0}%):",
        RELATIVE_ERROR_BOUND * 100.0
    );
    println!(
        "{:<16} {:>9} {:>10} {:>10} {:>10}",
        "shape-class", "count", "p50_ms", "p99_ms", "p999_ms"
    );
    for row in rows {
        println!(
            "{:<16} {:>9} {:>10.3} {:>10.3} {:>10.3}",
            row.label,
            row.hist.count(),
            ms(row.hist.quantile(0.50)),
            ms(row.hist.quantile(0.99)),
            ms(row.hist.quantile(0.999)),
        );
    }
    let total = merged_total(rows);
    println!(
        "{:<16} {:>9} {:>10.3} {:>10.3} {:>10.3}",
        "(all)",
        total.count(),
        ms(total.quantile(0.50)),
        ms(total.quantile(0.99)),
        ms(total.quantile(0.999)),
    );
}

/// Digest a `throughput --stats-json` document.
fn summarize_engine_stats(path: &str) {
    let text = std::fs::read_to_string(path).expect("read engine stats json");
    let stats: fmm_core::EngineStats = serde_json::from_str(&text).expect("parse engine stats");
    println!(
        "\nengine stats from {path}: {} multiplies on {} threads, cache {}/{} hit/miss",
        stats.multiplies, stats.threads, stats.plan_cache_hits, stats.plan_cache_misses
    );
    print_tails("engine", &stats.latency);
}

/// Digest a `loadgen --stats-json` document: both latency views plus
/// the fleet-vs-engine tail score.
fn summarize_fleet_stats(path: &str) {
    let text = std::fs::read_to_string(path).expect("read fleet stats json");
    let stats = fmm_serve::FleetStats::from_json(&text).expect("parse fleet stats");
    println!(
        "\nfleet stats from {path}: {} shards, {} completions, {} retries, {} respawns",
        stats.shards, stats.router.completions, stats.router.retries, stats.router.respawns
    );
    print_tails("engine-side (live shards)", &stats.latency);
    print_tails("router-side (crash-immune)", &stats.router_latency);
    let engine = stats.merged_engine_latency();
    let router = stats.merged_router_latency();
    if !engine.is_empty() && !router.is_empty() {
        let score = |q: f64| {
            let e = engine.quantile(q).max(1) as f64;
            router.quantile(q) as f64 / e
        };
        println!(
            "\nfleet vs engine tails: p50 ×{:.2}  p99 ×{:.2}  p999 ×{:.2} \
             (router-observed over engine-side; the serving tier's wire + queueing overhead)",
            score(0.50),
            score(0.99),
            score(0.999)
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut engine_stats: Vec<String> = Vec::new();
    let mut fleet_stats: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--engine-stats" => {
                i += 1;
                engine_stats.push(args[i].clone());
            }
            "--fleet-stats" => {
                i += 1;
                fleet_stats.push(args[i].clone());
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    if paths.is_empty() && engine_stats.is_empty() && fleet_stats.is_empty() {
        eprintln!(
            "usage: summarize [<results.json>…] [--engine-stats stats.json] \
             [--fleet-stats fleet.json]"
        );
        std::process::exit(2);
    }
    for path in &engine_stats {
        summarize_engine_stats(path);
    }
    for path in &fleet_stats {
        summarize_fleet_stats(path);
    }
    if paths.is_empty() {
        return;
    }
    let mut rows: Vec<Row> = Vec::new();
    for p in &paths {
        let text = std::fs::read_to_string(p).expect("read json");
        let batch: Vec<Row> = serde_json::from_str(&text).expect("parse json");
        rows.extend(batch);
    }
    // (experiment, dtype, p, q, r, threads) → [(alg, gflops)]. The
    // dtype comes from the `[f32]`-style tag the measure helpers append
    // to non-f64 algorithm names; grouping on it keeps an f32 winner
    // from being scored against the f64 classical baseline (or vice
    // versa) when result files of both dtypes are summarized together.
    type Groups = BTreeMap<(String, String, usize, usize, usize, usize), Vec<(String, f64)>>;
    let mut groups: Groups = BTreeMap::new();
    for row in rows {
        let dtype = dtype_of(&row.algorithm);
        groups
            .entry((row.experiment, dtype, row.p, row.q, row.r, row.threads))
            .or_default()
            .push((row.algorithm, row.effective_gflops));
    }
    println!(
        "{:<14} {:>22} {:>3}T  {:<22} {:>8}  {:>12}",
        "experiment", "problem", "", "winner", "GFLOPS", "vs classical"
    );
    for ((exp, _dtype, p, q, r, threads), algs) in groups {
        // The serving-tier experiment has no classical row: its
        // baseline is the single-process engine the fleet competes
        // against.
        let baseline_prefix = if exp == "loadgen" {
            "engine"
        } else {
            "classical"
        };
        let classical = algs
            .iter()
            .find(|(name, _)| name.starts_with(baseline_prefix))
            .map(|&(_, g)| g);
        let (best_name, best_g) = algs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .cloned()
            .unwrap();
        let vs = classical
            .map(|c| format!("{:+.1}%", (best_g / c - 1.0) * 100.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:<14} {:>22} {:>3}T  {:<22} {:>8.2}  {:>12}",
            exp,
            format!("{p}x{q}x{r}"),
            threads,
            best_name,
            best_g,
            vs
        );
    }
}
