//! Figure 4: DFS vs BFS vs HYBRID parallel schemes on three
//! representative algorithm/shape pairs, across thread counts.
//!
//! `--dtype f32` runs the identical sweep in single precision (rows are
//! tagged `[f32]` so `summarize` keeps the dtypes apart).

use fmm_bench::*;
use fmm_core::{GemmScalar, Options, Scheme};

fn main() {
    let cfg = HarnessConfig::from_args();
    match cfg.dtype {
        Dtype::F64 => run::<f64>(&cfg),
        Dtype::F32 => run::<f32>(&cfg),
    }
}

fn run<T: GemmScalar>(cfg: &HarnessConfig) {
    let sizes: Vec<usize> = if cfg.quick {
        vec![256, 512, 768]
    } else {
        vec![512, 1024, 1536, 2048]
    };
    let k424 = if cfg.quick { 448 } else { 2800 };
    let k433 = if cfg.quick { 480 } else { 3000 };
    let strassen = fmm_algo::strassen();
    let a424 = fmm_algo::by_name("<4,2,4>").unwrap().dec;
    let a433 = fmm_algo::by_name("<4,3,3>").unwrap().dec;
    let schemes = [
        ("DFS", Scheme::Dfs),
        ("BFS", Scheme::Bfs),
        ("HYBRID", Scheme::Hybrid),
    ];
    let steps: &[usize] = &[1, 2];
    let mut rows = Vec::new();
    for &threads in &cfg.thread_counts {
        for &n in &sizes {
            rows.push(measure_classical_in::<T>(
                "fig4-square",
                n,
                n,
                n,
                threads,
                cfg.trials,
            ));
            rows.push(measure_classical_in::<T>(
                "fig4-424", n, k424, n, threads, cfg.trials,
            ));
            rows.push(measure_classical_in::<T>(
                "fig4-433", n, k433, k433, threads, cfg.trials,
            ));
            for (sname, scheme) in schemes {
                if threads == 1 && scheme != Scheme::Dfs {
                    continue; // schemes coincide at one thread
                }
                let opts = Options {
                    scheme,
                    ..Default::default()
                };
                rows.push(measure_fast_in::<T>(
                    "fig4-square",
                    &format!("strassen {sname}"),
                    &strassen,
                    n,
                    n,
                    n,
                    threads,
                    steps,
                    opts,
                    cfg.trials,
                ));
                rows.push(measure_fast_in::<T>(
                    "fig4-424",
                    &format!("<4,2,4> {sname}"),
                    &a424,
                    n,
                    k424,
                    n,
                    threads,
                    steps,
                    opts,
                    cfg.trials,
                ));
                rows.push(measure_fast_in::<T>(
                    "fig4-433",
                    &format!("<4,3,3> {sname}"),
                    &a433,
                    n,
                    k433,
                    k433,
                    threads,
                    steps,
                    opts,
                    cfg.trials,
                ));
            }
        }
    }
    emit(cfg, &rows);
}
