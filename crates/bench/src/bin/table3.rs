//! Table 3: additions saved by greedy length-2 common subexpression
//! elimination in the formation of the S and T matrices.

fn main() {
    println!(
        "{:<10} {:>9} {:>6} {:>14} {:>9}",
        "base", "original", "CSE", "subexpressions", "saved"
    );
    for name in ["<3,3,3>", "<4,2,4>", "<4,3,2>", "<4,3,3>", "<5,2,2>"] {
        let alg = fmm_algo::by_name(name).expect("catalog entry");
        let stats = fmm_core::cse_stats(&alg.dec.u, &alg.dec.v, 1e-12);
        println!(
            "{:<10} {:>9} {:>6} {:>14} {:>9}",
            name,
            stats.original_adds,
            stats.cse_adds,
            stats.subexpressions,
            stats.saved()
        );
    }
    println!("\nNote: counts depend on the coefficient matrices; ours come from");
    println!("searched/derived algorithms, so absolute numbers differ from the");
    println!("paper's coefficient files while the effect (CSE reduces adds) holds.");
}
