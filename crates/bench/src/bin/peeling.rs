//! §3.5 ablation: dynamic-peeling overhead. Times Strassen at sizes
//! straddling powers of two; peeling keeps the penalty for
//! non-divisible sizes small and smooth.

use fmm_bench::*;

fn main() {
    let cfg = HarnessConfig::from_args();
    let centers: Vec<usize> = if cfg.quick {
        vec![256, 512]
    } else {
        vec![512, 1024, 2048]
    };
    let s = fmm_algo::strassen();
    println!("n,seconds,effective_gflops");
    for &c in &centers {
        for delta in [-3i64, -1, 0, 1, 3] {
            let n = (c as i64 + delta) as usize;
            let m = measure_fast(
                "peeling",
                "strassen",
                &s,
                n,
                n,
                n,
                1,
                &[1, 2],
                Default::default(),
                cfg.trials,
            );
            println!("{n},{:.6},{:.3}", m.seconds, m.effective_gflops);
        }
    }
}
