//! §2.2.3 / §6: numerical accuracy. Forward error of exact fast
//! algorithms grows mildly with recursion depth; APA algorithms lose
//! roughly half the digits per recursive step.

use fmm_bench::*;
use fmm_core::{forward_error, Options};

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = if cfg.quick { 256 } else { 1024 };
    println!("algorithm,steps,relative_error");
    let mut algos = vec![
        fmm_algo::classical(2, 2, 2),
        fmm_algo::by_name("strassen").unwrap(),
        fmm_algo::by_name("winograd").unwrap(),
        fmm_algo::by_name("<3,3,3>").unwrap(),
        fmm_algo::by_name("<4,2,4>").unwrap(),
        fmm_algo::by_name("<4,3,3>").unwrap(),
    ];
    for apa in [fmm_algo::bini_apa(), fmm_algo::schonhage_apa()]
        .into_iter()
        .flatten()
    {
        algos.push(apa);
    }
    for alg in &algos {
        for steps in 1..=3usize {
            let e = forward_error(
                &alg.dec,
                Options {
                    steps,
                    ..Default::default()
                },
                n,
                7,
            );
            println!("{},{steps},{e:.3e}", alg.name);
        }
    }
}
