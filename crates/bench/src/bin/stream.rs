//! §4.5: shared-memory bandwidth limitations. A STREAM-triad
//! microbenchmark and the gemm compute benchmark, each at 1..=P
//! threads, demonstrating that additions (bandwidth-bound) scale worse
//! than multiplications (compute-bound).

use fmm_bench::*;
use rayon::prelude::*;

fn triad_gbs(len: usize, threads: usize, trials: usize) -> f64 {
    let a = vec![1.0f64; len];
    let b = vec![2.0f64; len];
    let mut c = vec![0.0f64; len];
    let tp = pool(threads);
    let secs = tp.install(|| {
        time_median(
            || {
                c.par_chunks_mut(1 << 14)
                    .zip(a.par_chunks(1 << 14).zip(b.par_chunks(1 << 14)))
                    .for_each(|(cc, (aa, bb))| {
                        for i in 0..cc.len() {
                            cc[i] = aa[i] + 3.0 * bb[i];
                        }
                    });
            },
            trials,
        )
    });
    // triad moves 3 doubles per element
    (len * 3 * 8) as f64 / secs / 1e9
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let len = if cfg.quick { 1 << 24 } else { 1 << 26 };
    let n = if cfg.quick { 768 } else { 1536 };
    println!("threads,triad_GBs,triad_scaling,gemm_gflops,gemm_scaling");
    let base_bw = triad_gbs(len, 1, cfg.trials);
    let base_gemm = measure_classical("stream", n, n, n, 1, cfg.trials).effective_gflops;
    for &threads in &cfg.thread_counts {
        let bw = triad_gbs(len, threads, cfg.trials);
        let gf = measure_classical("stream", n, n, n, threads, cfg.trials).effective_gflops;
        println!(
            "{threads},{bw:.2},{:.2}x,{gf:.2},{:.2}x",
            bw / base_bw,
            gf / base_gemm
        );
    }
}
