//! GF(2) backend benchmark: word-packed boolean matrix multiply.
//!
//! Three algorithms on square `n × n × n` boolean problems:
//! `classical-words` (the naive broadcast-XOR word kernel — the honest
//! bit-packed baseline, already 64-way parallel per word op), `m4rm`
//! (Method of Four Russians base case), and `strassen-m4rm` (Strassen
//! recursion over the `.alg` catalog lifted mod 2, with M4RM leaves).
//!
//! "GFLOPS" rows use the same `2·m·k·n` operation count as the float
//! experiments so `summarize` scales them consistently — for GF(2)
//! read the column as effective giga-bit-ops.
//!
//! Run with: `cargo run --release -p fmm-bench --bin gf2bench -- --full`

use fmm_bench::*;
use fmm_gf2::{Gf2Matrix, Gf2Planner, Gf2Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn row(experiment: &str, algorithm: &str, n: usize, steps: usize, secs: f64) -> Measurement {
    Measurement {
        experiment: experiment.into(),
        algorithm: algorithm.into(),
        p: n,
        q: n,
        r: n,
        threads: 1,
        steps,
        seconds: secs,
        effective_gflops: fmm_gemm::effective_gflops(n, n, n, secs),
    }
}

/// Best (seconds, depth) over explicit recursion depths 1 and 2. The
/// timed region is the allocation-free `execute_into` hot path.
fn best_strassen(a: &Gf2Matrix, b: &Gf2Matrix, n: usize, trials: usize) -> (f64, usize) {
    let mut best = (f64::INFINITY, 0usize);
    for steps in [1usize, 2] {
        let plan = Gf2Planner::new()
            .shape(n, n, n)
            .steps(steps)
            .plan()
            .expect("strassen lifts mod 2");
        let mut ws = Gf2Workspace::for_plan(&plan);
        let mut c = Gf2Matrix::zeros(n, n);
        let secs = time_median(|| plan.execute_into(a, b, &mut c, &mut ws), trials);
        if secs < best.0 {
            best = (secs, steps);
        }
    }
    best
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let sizes: Vec<usize> = if cfg.quick {
        vec![512, 1024]
    } else {
        vec![1024, 2048, 4096, 8192]
    };
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Gf2Matrix::random(n, n, &mut rng);
        let b = Gf2Matrix::random(n, n, &mut rng);

        let naive_secs = time_median(
            || {
                std::hint::black_box(a.mul_naive(&b));
            },
            cfg.trials,
        );
        rows.push(row("gf2", "classical-words[gf2]", n, 0, naive_secs));

        let m4rm_secs = time_median(
            || {
                std::hint::black_box(a.mul_m4rm(&b));
            },
            cfg.trials,
        );
        rows.push(row("gf2", "m4rm[gf2]", n, 0, m4rm_secs));

        let (strassen_secs, steps) = best_strassen(&a, &b, n, cfg.trials);
        rows.push(row("gf2", "strassen-m4rm[gf2]", n, steps, strassen_secs));

        speedups.push((n, naive_secs, m4rm_secs, strassen_secs));
    }
    for (n, naive, m4rm, strassen) in &speedups {
        eprintln!(
            "n={n}: m4rm {:.2}x vs classical-words, strassen-m4rm {:.2}x vs m4rm",
            naive / m4rm,
            m4rm / strassen
        );
    }
    emit(&cfg, &rows);
}
