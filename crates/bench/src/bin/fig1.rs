//! Figure 1: sequential effective performance of code-generated
//! Strassen vs the classical gemm baseline vs the Strassen–Winograd
//! variant, on square problems.

use fmm_bench::*;

fn main() {
    let cfg = HarnessConfig::from_args();
    let sizes: &[usize] = if cfg.quick {
        &[256, 384, 512, 640, 768]
    } else {
        &[512, 768, 1024, 1280, 1536, 2048]
    };
    let strassen = fmm_algo::strassen();
    let winograd = fmm_algo::winograd();
    let steps: &[usize] = &[1, 2, 3];
    let mut rows = Vec::new();
    for &n in sizes {
        rows.push(measure_classical("fig1", n, n, n, 1, cfg.trials));
        rows.push(measure_fast(
            "fig1",
            "strassen",
            &strassen,
            n,
            n,
            n,
            1,
            steps,
            Default::default(),
            cfg.trials,
        ));
        rows.push(measure_fast(
            "fig1",
            "winograd",
            &winograd,
            n,
            n,
            n,
            1,
            steps,
            Default::default(),
            cfg.trials,
        ));
    }
    emit(&cfg, &rows);
}
