//! Figure 5: sequential performance of the whole catalog on square
//! problems (three panels in the paper) plus the two rectangular
//! shapes (outer-product N×K×N and tall-and-skinny N×K×K).

use fmm_bench::*;

fn main() {
    let cfg = HarnessConfig::from_args();
    let square_sizes: Vec<usize> = if cfg.quick {
        vec![256, 384, 512, 768]
    } else {
        vec![512, 1024, 1536, 2048]
    };
    let k_outer = if cfg.quick { 448 } else { 1600 };
    let k_tall = if cfg.quick { 480 } else { 2400 };
    let steps: &[usize] = &[1, 2, 3];
    let mut rows = Vec::new();

    // Square panel: every catalog algorithm and key permutations.
    let mut algos: Vec<fmm_algo::FastAlgorithm> = fmm_algo::catalog();
    for name in [
        "<4,2,2>", "<3,2,3>", "<3,3,2>", "<5,2,2>", "<2,5,2>", "<3,2,2>", "<3,2,4>", "<4,2,3>",
        "<3,4,2>", "<4,2,4>", "<2,3,4>", "<4,4,2>", "<4,3,3>", "<3,4,3>", "<3,6,3>", "<6,3,3>",
    ] {
        algos.push(fmm_algo::by_name(name).unwrap());
    }
    for apa in [fmm_algo::bini_apa(), fmm_algo::schonhage_apa()]
        .into_iter()
        .flatten()
    {
        algos.push(apa);
    }
    for &n in &square_sizes {
        rows.push(measure_classical("fig5-square", n, n, n, 1, cfg.trials));
        for alg in &algos {
            rows.push(measure_fast(
                "fig5-square",
                &alg.name,
                &alg.dec,
                n,
                n,
                n,
                1,
                steps,
                Default::default(),
                cfg.trials,
            ));
        }
    }

    // Rectangular panels: the shape-matching set of §5.1.
    let rect_names = ["strassen", "<4,2,4>", "<4,3,3>", "<3,2,3>", "<4,2,3>"];
    let rect_steps: &[usize] = &[1, 2];
    for &n in &square_sizes {
        rows.push(measure_classical(
            "fig5-outer",
            n,
            k_outer,
            n,
            1,
            cfg.trials,
        ));
        rows.push(measure_classical(
            "fig5-tall",
            n,
            k_tall,
            k_tall,
            1,
            cfg.trials,
        ));
        for name in rect_names {
            let alg = fmm_algo::by_name(name).unwrap();
            rows.push(measure_fast(
                "fig5-outer",
                name,
                &alg.dec,
                n,
                k_outer,
                n,
                1,
                rect_steps,
                Default::default(),
                cfg.trials,
            ));
            rows.push(measure_fast(
                "fig5-tall",
                name,
                &alg.dec,
                n,
                k_tall,
                k_tall,
                1,
                rect_steps,
                Default::default(),
                cfg.trials,
            ));
        }
        for apa in [fmm_algo::bini_apa(), fmm_algo::schonhage_apa()]
            .into_iter()
            .flatten()
        {
            rows.push(measure_fast(
                "fig5-outer",
                &apa.name,
                &apa.dec,
                n,
                k_outer,
                n,
                1,
                rect_steps,
                Default::default(),
                cfg.trials,
            ));
            rows.push(measure_fast(
                "fig5-tall",
                &apa.name,
                &apa.dec,
                n,
                k_tall,
                k_tall,
                1,
                rect_steps,
                Default::default(),
                cfg.trials,
            ));
        }
    }
    emit(&cfg, &rows);
}
