//! Figure 3: ramp-up curves of the classical gemm baseline for three
//! problem shapes, sequential and parallel.

use fmm_bench::*;

fn main() {
    let cfg = HarnessConfig::from_args();
    let fixed = if cfg.quick { 400 } else { 800 };
    let sizes: Vec<usize> = if cfg.quick {
        vec![64, 96, 128, 192, 256, 384, 512, 768]
    } else {
        vec![64, 128, 256, 512, 768, 1024, 1536, 2048, 3072]
    };
    let mut rows = Vec::new();
    for &threads in &cfg.thread_counts {
        for &n in &sizes {
            let mut m1 = measure_classical("fig3-NxNxN", n, n, n, threads, cfg.trials);
            m1.algorithm = "gemm NxNxN".into();
            rows.push(m1);
            let mut m2 = measure_classical("fig3-NxKxN", n, fixed, n, threads, cfg.trials);
            m2.algorithm = format!("gemm Nx{fixed}xN");
            rows.push(m2);
            let mut m3 = measure_classical("fig3-NxKxK", n, fixed, fixed, threads, cfg.trials);
            m3.algorithm = format!("gemm Nx{fixed}x{fixed}");
            rows.push(m3);
        }
    }
    emit(&cfg, &rows);
}
