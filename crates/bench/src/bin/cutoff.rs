//! §3.4 ablation: recursion-cutoff behaviour. Sweeps recursion depth at
//! several problem sizes; the best depth moves with the size exactly as
//! the "only recurse on the flat part of the gemm curve" rule predicts.

use fmm_bench::*;
use fmm_core::Options;

fn main() {
    let cfg = HarnessConfig::from_args();
    let sizes: Vec<usize> = if cfg.quick {
        vec![128, 256, 512, 768]
    } else {
        vec![256, 512, 1024, 2048]
    };
    let s = fmm_algo::strassen();
    println!("n,steps,seconds,effective_gflops");
    for &n in &sizes {
        for steps in 0..=4usize {
            let m = measure_fast(
                "cutoff",
                "strassen",
                &s,
                n,
                n,
                n,
                1,
                &[steps],
                Options::default(),
                cfg.trials,
            );
            println!("{n},{steps},{:.6},{:.3}", m.seconds, m.effective_gflops);
        }
    }
}
