//! Fleet load generator: the serving-tier counterpart of `throughput`.
//!
//! Spawns an in-process router over N shard *processes* (re-execs of
//! this binary), drives the same mixed-shape request stream the
//! `throughput` binary uses — same shapes, same seeds, same shared
//! measurement loop — through `ServeClient` connections, and reports
//! fleet-wide multiplies/sec and p50/p99 latency next to the
//! single-process engine baseline measured in the same run.
//!
//! Every fleet-served product is compared bitwise against the local
//! engine's result, so a run that completes is also a correctness
//! certificate for the wire path. The router's aggregated
//! [`FleetStats`] JSON snapshot is printed at the end (or written via
//! `--stats-json`), including the consistency check that the engines'
//! multiply counters reconstruct exactly the client-observed
//! completions.
//!
//! ```text
//! loadgen [--quick|--full] [--threads 1,4] [--shards 2]
//!         [--max-inflight Q] [--dtype f32|f64] [--json PATH]
//!         [--stats-json PATH] [--trace PATH] [--chaos]
//! ```
//!
//! `--trace PATH` turns span tracing on across the whole fleet (the
//! shard processes inherit `FMM_TRACE_DIR` and periodically flush
//! their rings) and writes one merged Chrome/Perfetto-loadable trace.
//! `--chaos` SIGKILLs shard 0 between sweeps and waits for the
//! supervisor to respawn it — the crash-recovery acceptance drill.
//!
//! Latency columns for both tiers are read from the always-on
//! histograms (`EngineStats::latency` for the engine tier, the
//! router-observed `FleetStats::router_latency` for the fleet tier),
//! diffed per sweep; the client-side raw samples remain only as the
//! cross-check that the fleet's merged histogram tails agree with
//! what clients actually observed.
//!
//! On a 1-core CI box the fleet cannot beat the single process — the
//! comparison there is about verifying the serving path, not about
//! speedup; see EXPERIMENTS.md.

use fmm_bench::{
    dtype_tag, percentile_sorted, run_mixed_stream, workload_in, Dtype, HarnessConfig,
    LatencyStats, Measurement, StreamOutcome,
};
use fmm_core::FmmEngine;
use fmm_matrix::DenseMatrix;
use fmm_serve::{
    maybe_run_shard_worker, start_router, FleetStats, RouterConfig, RunningRouter, ServeClient,
    ShardLauncher, ShardSpec, WireScalar,
};
use fmm_trace::{merged_total, Histogram, TraceSink, RELATIVE_ERROR_BOUND};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct LoadgenConfig {
    harness: HarnessConfig,
    shards: usize,
    max_inflight: usize,
    stats_json: Option<String>,
    trace_out: Option<String>,
    chaos: bool,
}

fn parse_args() -> LoadgenConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = LoadgenConfig {
        harness: HarnessConfig {
            quick: true,
            trials: 1,
            thread_counts: vec![1, 4],
            json_out: None,
            stats_json: None,
            dtype: Dtype::F64,
        },
        shards: 2,
        max_inflight: 8,
        stats_json: None,
        trace_out: None,
        chaos: false,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg.harness.quick = true,
            "--full" => cfg.harness.quick = false,
            "--threads" => {
                i += 1;
                cfg.harness.thread_counts = args[i]
                    .split(',')
                    .map(|t| t.parse().expect("--threads 1,4"))
                    .collect();
            }
            "--shards" => {
                i += 1;
                cfg.shards = args[i].parse().expect("--shards N");
                assert!(cfg.shards >= 1, "--shards must be >= 1");
            }
            "--max-inflight" => {
                i += 1;
                cfg.max_inflight = args[i].parse().expect("--max-inflight Q");
            }
            "--json" => {
                i += 1;
                cfg.harness.json_out = Some(args[i].clone());
            }
            "--stats-json" => {
                i += 1;
                cfg.stats_json = Some(args[i].clone());
            }
            "--trace" => {
                i += 1;
                cfg.trace_out = Some(args[i].clone());
            }
            "--chaos" => cfg.chaos = true,
            "--dtype" => {
                i += 1;
                cfg.harness.dtype = match args[i].as_str() {
                    "f64" => Dtype::F64,
                    "f32" => Dtype::F32,
                    other => panic!("--dtype must be f32 or f64, got {other}"),
                };
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }
    cfg
}

fn main() {
    // The fleet re-execs this binary as its shard workers.
    maybe_run_shard_worker();
    let cfg = parse_args();
    match cfg.harness.dtype {
        Dtype::F64 => run::<f64>(&cfg),
        Dtype::F32 => run::<f32>(&cfg),
    }
}

/// Unique-enough socket directory for this run (no Date/rand needed:
/// the pid already distinguishes concurrent runs).
fn socket_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fmm-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create socket dir");
    dir
}

fn run<T: WireScalar>(cfg: &LoadgenConfig) {
    let shapes: &[(usize, usize, usize)] = if cfg.harness.quick {
        &[(96, 96, 96), (64, 128, 64), (128, 64, 32), (100, 100, 100)]
    } else {
        &[
            (256, 256, 256),
            (192, 384, 192),
            (384, 192, 96),
            (300, 300, 300),
        ]
    };
    let requests_per_client = if cfg.harness.quick { 24 } else { 64 };

    // Tracing must be configured before the fleet spawns: the shard
    // processes are re-execs of this binary and pick the directory up
    // from the inherited environment (see `fmm_serve::shard_main`).
    let dir = socket_dir();
    let trace_dir = dir.join("trace");
    if cfg.trace_out.is_some() {
        std::fs::create_dir_all(&trace_dir).expect("create trace dir");
        std::env::set_var("FMM_TRACE_DIR", &trace_dir);
        fmm_trace::set_process_label(&format!("loadgen-{}", std::process::id()));
        fmm_trace::set_enabled(true);
    }

    let problems: Vec<(DenseMatrix<T>, DenseMatrix<T>)> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q, r))| workload_in::<T>(p, q, r, 42 + i as u64))
        .collect();

    // The local engine is both the baseline tier and the bitwise
    // reference for every fleet-served product (engine results are
    // deterministic across pool widths and processes).
    let engine = FmmEngine::<T>::builder().build().expect("baseline engine");
    let expected: Vec<DenseMatrix<T>> = problems
        .iter()
        .map(|(a, b)| engine.multiply(a, b).expect("reference multiply"))
        .collect();

    // Bring the fleet up: N shard processes + an in-process router.
    let specs = (0..cfg.shards)
        .map(|i| ShardSpec {
            socket: dir.join(format!("shard-{i}.sock")),
            threads: 1,
            max_inflight: cfg.max_inflight,
        })
        .collect();
    let router_cfg = RouterConfig::new(dir.join("router.sock"), ShardLauncher::SelfExec, specs);
    let router = start_router(router_cfg).expect("start fleet");
    eprintln!(
        "fleet up: {} shard process(es), router on {}",
        cfg.shards,
        router.socket().display()
    );

    println!("tier,dtype,clients,requests,failures,total_s,mps,p50_ms,p99_ms,p999_ms");
    let mut rows: Vec<Measurement> = Vec::new();
    let mismatches = AtomicU64::new(0);
    // Raw fleet-tier client samples, kept only for the end-of-run
    // cross-check against the router's merged histogram tails.
    let mut fleet_samples: Vec<f64> = Vec::new();

    for (sweep, &clients) in cfg.harness.thread_counts.iter().enumerate() {
        let clients = clients.max(1);

        if cfg.chaos && sweep > 0 {
            chaos_kill_and_wait(&router);
        }

        // Tier 1: the single-process engine, same stream. Latency
        // columns come from the engine's own histogram, diffed over
        // the sweep window.
        let engine_before = merged_total(&engine.stats().latency);
        let baseline = run_mixed_stream(clients, requests_per_client, problems.len(), |_| {
            let engine = engine.clone();
            let problems = &problems;
            move |idx: usize| {
                let (a, b) = &problems[idx];
                engine.multiply(a, b).expect("baseline serve");
                true
            }
        });
        let window = merged_total(&engine.stats().latency).saturating_diff(&engine_before);
        report::<T>("engine", clients, &baseline, &window);
        push_rows(
            &mut rows,
            &format!("engine{}(x{})", dtype_tag::<T>(), engine.threads()),
            shapes,
            clients,
            &baseline,
        );

        // Tier 2: the fleet, one ServeClient connection per client
        // thread, every product checked bitwise against the reference.
        // Latency columns come from the router-observed histogram —
        // the view that survives shard kills.
        let fleet_before = router.fleet_stats().merged_router_latency();
        let fleet = run_mixed_stream(clients, requests_per_client, problems.len(), |_| {
            let mut client = ServeClient::connect(router.socket()).expect("connect to router");
            let problems = &problems;
            let expected = &expected;
            let mismatches = &mismatches;
            move |idx: usize| {
                let (a, b) = &problems[idx];
                match client.multiply(a, b) {
                    Ok(c) => {
                        if c != expected[idx] {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                            false
                        } else {
                            true
                        }
                    }
                    Err(e) => {
                        eprintln!("fleet multiply failed: {e}");
                        false
                    }
                }
            }
        });
        let window = router
            .fleet_stats()
            .merged_router_latency()
            .saturating_diff(&fleet_before);
        fleet_samples.extend(fleet.samples.iter().map(|s| s.seconds));
        report::<T>(
            &format!("fleet(shards={})", cfg.shards),
            clients,
            &fleet,
            &window,
        );
        push_rows(
            &mut rows,
            &format!("fleet(shards={}){}", cfg.shards, dtype_tag::<T>()),
            shapes,
            clients,
            &fleet,
        );
    }

    // Fleet-wide observability snapshot + the consistency invariant:
    // engine counters (plus router-reconstructed history) must equal
    // the completions clients observed.
    let stats = router.fleet_stats();
    consistency_report(&stats);
    if let Some(path) = &cfg.stats_json {
        std::fs::write(path, stats.to_json()).expect("write stats json");
        eprintln!("wrote fleet snapshot to {path}");
    } else {
        eprintln!("fleet snapshot:\n{}", stats.to_json());
    }

    let mismatch_count = mismatches.load(Ordering::Relaxed);
    assert_eq!(
        mismatch_count, 0,
        "{mismatch_count} fleet-served products differed bitwise from the local engine"
    );
    eprintln!("all fleet-served products matched the local engine bitwise");

    // Acceptance cross-check: the router's merged histogram tails must
    // agree with what the clients measured for themselves.
    tail_agreement_report(&fleet_samples, &stats.merged_router_latency());

    router.shutdown();
    if let Some(path) = &cfg.trace_out {
        export_merged_trace(path, &trace_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);

    if let Some(path) = &cfg.harness.json_out {
        let json = serde_json::to_string_pretty(&rows).expect("serialize");
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// One CSV row per tier/sweep. Throughput numbers come from the
/// client-side stream; the latency columns come from `window`, this
/// sweep's slice of the tier's always-on histogram.
fn report<T: WireScalar>(tier: &str, clients: usize, outcome: &StreamOutcome, window: &Histogram) {
    let stats = LatencyStats::from_histogram(window);
    println!(
        "{tier},{},{clients},{},{},{:.3},{:.1},{:.3},{:.3},{:.3}",
        T::NAME,
        stats.count,
        outcome.failures,
        outcome.total_s,
        outcome.mps(),
        stats.p50_s * 1e3,
        stats.p99_s * 1e3,
        stats.p999_s * 1e3
    );
}

/// SIGKILL shard 0 and block until the supervisor has respawned it and
/// the slot answers its health probe again.
fn chaos_kill_and_wait(router: &RunningRouter) {
    let respawns_before = router.fleet_stats().slots[0].respawns;
    eprintln!("chaos: SIGKILL shard 0");
    router.kill_shard(0).expect("kill shard 0");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let slot0 = &router.fleet_stats().slots[0];
        if slot0.respawns > respawns_before && slot0.healthy {
            eprintln!(
                "chaos: shard 0 respawned (respawns={}) and healthy",
                slot0.respawns
            );
            return;
        }
        assert!(
            Instant::now() < deadline,
            "shard 0 was not respawned within 30s of a chaos kill"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Compare client-observed percentiles against the router's merged
/// histogram. The histogram buckets values to within
/// [`RELATIVE_ERROR_BOUND`]; on top of that the client additionally
/// sees its own wire hop (encode + two UDS transfers), so the check
/// allows the bucket error plus a transport slack, and an absolute
/// floor for very fast quick-mode runs.
fn tail_agreement_report(client_samples: &[f64], router_hist: &Histogram) {
    let mut sorted = client_samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    for (name, q) in [("p50", 0.50), ("p99", 0.99)] {
        let client_s = percentile_sorted(&sorted, q);
        let hist_s = router_hist.quantile(q) as f64 / 1e9;
        let tolerance = client_s * (RELATIVE_ERROR_BOUND + 0.50) + 2e-3;
        let agree = (client_s - hist_s).abs() <= tolerance;
        eprintln!(
            "tail agreement {name}: client {:.3} ms vs fleet histogram {:.3} ms ({})",
            client_s * 1e3,
            hist_s * 1e3,
            if agree {
                "within bound"
            } else {
                "OUT OF BOUND"
            }
        );
        assert!(
            agree,
            "fleet histogram {name} diverged from client-side percentile: \
             client {client_s:.6}s vs histogram {hist_s:.6}s (tolerance {tolerance:.6}s)"
        );
    }
}

/// Merge this process's spans with every shard's flushed trace file
/// into one Chrome/Perfetto-loadable JSON document, and print the
/// local worker timeline while we're at it.
fn export_merged_trace(path: &str, trace_dir: &Path) {
    let local = TraceSink::collect();
    eprintln!("{}", local.timeline(72));
    let mut parts = vec![local.export_chrome_json()];
    let mut shard_files = 0usize;
    if let Ok(entries) = std::fs::read_dir(trace_dir) {
        let mut names: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("trace-shard-") && n.ends_with(".json"))
            })
            .collect();
        names.sort();
        for file in names {
            match std::fs::read_to_string(&file) {
                Ok(json) => {
                    parts.push(json);
                    shard_files += 1;
                }
                Err(e) => eprintln!("skipping unreadable trace file {}: {e}", file.display()),
            }
        }
    }
    let merged = TraceSink::merge_chrome_json(&parts).expect("merge chrome traces");
    std::fs::write(path, merged).expect("write trace json");
    eprintln!(
        "wrote merged Chrome trace ({} shard file(s) + local) to {path}",
        shard_files
    );
}

fn push_rows(
    rows: &mut Vec<Measurement>,
    algorithm: &str,
    shapes: &[(usize, usize, usize)],
    clients: usize,
    outcome: &StreamOutcome,
) {
    for (idx, &(p, q, r)) in shapes.iter().enumerate() {
        let Some(mean) = outcome.shape_mean(idx) else {
            continue;
        };
        rows.push(Measurement {
            experiment: "loadgen".into(),
            algorithm: algorithm.to_string(),
            p,
            q,
            r,
            threads: clients,
            steps: 0,
            seconds: mean,
            effective_gflops: fmm_gemm::effective_gflops(p, q, r, mean),
        });
    }
}

fn consistency_report(stats: &FleetStats) {
    let shard_side = stats.shard_multiplies();
    let router_side = stats.router.completions;
    eprintln!(
        "consistency: shard-side multiplies {} vs router completions {} — {}",
        shard_side,
        router_side,
        if shard_side == router_side {
            "consistent"
        } else {
            "INCONSISTENT"
        }
    );
    for slot in &stats.slots {
        eprintln!(
            "  shard {}: healthy={} respawns={} ok_total={} engine_multiplies={}",
            slot.slot,
            slot.healthy,
            slot.respawns,
            slot.ok_total,
            slot.report
                .as_ref()
                .map_or_else(|| "-".to_string(), |r| r.engine_multiplies().to_string())
        );
    }
}
