//! Fleet load generator: the serving-tier counterpart of `throughput`.
//!
//! Spawns an in-process router over N shard *processes* (re-execs of
//! this binary), drives the same mixed-shape request stream the
//! `throughput` binary uses — same shapes, same seeds, same shared
//! measurement loop — through `ServeClient` connections, and reports
//! fleet-wide multiplies/sec and p50/p99 latency next to the
//! single-process engine baseline measured in the same run.
//!
//! Every fleet-served product is compared bitwise against the local
//! engine's result, so a run that completes is also a correctness
//! certificate for the wire path. The router's aggregated
//! [`FleetStats`] JSON snapshot is printed at the end (or written via
//! `--stats-json`), including the consistency check that the engines'
//! multiply counters reconstruct exactly the client-observed
//! completions.
//!
//! ```text
//! loadgen [--quick|--full] [--threads 1,4] [--shards 2]
//!         [--max-inflight Q] [--dtype f32|f64] [--json PATH]
//!         [--stats-json PATH]
//! ```
//!
//! On a 1-core CI box the fleet cannot beat the single process — the
//! comparison there is about verifying the serving path, not about
//! speedup; see EXPERIMENTS.md.

use fmm_bench::{
    dtype_tag, run_mixed_stream, workload_in, Dtype, HarnessConfig, Measurement, StreamOutcome,
};
use fmm_core::FmmEngine;
use fmm_matrix::DenseMatrix;
use fmm_serve::{
    maybe_run_shard_worker, start_router, FleetStats, RouterConfig, ServeClient, ShardLauncher,
    ShardSpec, WireScalar,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

struct LoadgenConfig {
    harness: HarnessConfig,
    shards: usize,
    max_inflight: usize,
    stats_json: Option<String>,
}

fn parse_args() -> LoadgenConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = LoadgenConfig {
        harness: HarnessConfig {
            quick: true,
            trials: 1,
            thread_counts: vec![1, 4],
            json_out: None,
            dtype: Dtype::F64,
        },
        shards: 2,
        max_inflight: 8,
        stats_json: None,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg.harness.quick = true,
            "--full" => cfg.harness.quick = false,
            "--threads" => {
                i += 1;
                cfg.harness.thread_counts = args[i]
                    .split(',')
                    .map(|t| t.parse().expect("--threads 1,4"))
                    .collect();
            }
            "--shards" => {
                i += 1;
                cfg.shards = args[i].parse().expect("--shards N");
                assert!(cfg.shards >= 1, "--shards must be >= 1");
            }
            "--max-inflight" => {
                i += 1;
                cfg.max_inflight = args[i].parse().expect("--max-inflight Q");
            }
            "--json" => {
                i += 1;
                cfg.harness.json_out = Some(args[i].clone());
            }
            "--stats-json" => {
                i += 1;
                cfg.stats_json = Some(args[i].clone());
            }
            "--dtype" => {
                i += 1;
                cfg.harness.dtype = match args[i].as_str() {
                    "f64" => Dtype::F64,
                    "f32" => Dtype::F32,
                    other => panic!("--dtype must be f32 or f64, got {other}"),
                };
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }
    cfg
}

fn main() {
    // The fleet re-execs this binary as its shard workers.
    maybe_run_shard_worker();
    let cfg = parse_args();
    match cfg.harness.dtype {
        Dtype::F64 => run::<f64>(&cfg),
        Dtype::F32 => run::<f32>(&cfg),
    }
}

/// Unique-enough socket directory for this run (no Date/rand needed:
/// the pid already distinguishes concurrent runs).
fn socket_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fmm-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create socket dir");
    dir
}

fn run<T: WireScalar>(cfg: &LoadgenConfig) {
    let shapes: &[(usize, usize, usize)] = if cfg.harness.quick {
        &[(96, 96, 96), (64, 128, 64), (128, 64, 32), (100, 100, 100)]
    } else {
        &[
            (256, 256, 256),
            (192, 384, 192),
            (384, 192, 96),
            (300, 300, 300),
        ]
    };
    let requests_per_client = if cfg.harness.quick { 24 } else { 64 };

    let problems: Vec<(DenseMatrix<T>, DenseMatrix<T>)> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q, r))| workload_in::<T>(p, q, r, 42 + i as u64))
        .collect();

    // The local engine is both the baseline tier and the bitwise
    // reference for every fleet-served product (engine results are
    // deterministic across pool widths and processes).
    let engine = FmmEngine::<T>::builder().build().expect("baseline engine");
    let expected: Vec<DenseMatrix<T>> = problems
        .iter()
        .map(|(a, b)| engine.multiply(a, b).expect("reference multiply"))
        .collect();

    // Bring the fleet up: N shard processes + an in-process router.
    let dir = socket_dir();
    let specs = (0..cfg.shards)
        .map(|i| ShardSpec {
            socket: dir.join(format!("shard-{i}.sock")),
            threads: 1,
            max_inflight: cfg.max_inflight,
        })
        .collect();
    let router_cfg = RouterConfig::new(dir.join("router.sock"), ShardLauncher::SelfExec, specs);
    let router = start_router(router_cfg).expect("start fleet");
    eprintln!(
        "fleet up: {} shard process(es), router on {}",
        cfg.shards,
        router.socket().display()
    );

    println!("tier,dtype,clients,requests,failures,total_s,mps,p50_ms,p99_ms");
    let mut rows: Vec<Measurement> = Vec::new();
    let mismatches = AtomicU64::new(0);

    for &clients in &cfg.harness.thread_counts {
        let clients = clients.max(1);

        // Tier 1: the single-process engine, same stream.
        let baseline = run_mixed_stream(clients, requests_per_client, problems.len(), |_| {
            let engine = engine.clone();
            let problems = &problems;
            move |idx: usize| {
                let (a, b) = &problems[idx];
                engine.multiply(a, b).expect("baseline serve");
                true
            }
        });
        report::<T>("engine", clients, &baseline);
        push_rows(
            &mut rows,
            &format!("engine{}(x{})", dtype_tag::<T>(), engine.threads()),
            shapes,
            clients,
            &baseline,
        );

        // Tier 2: the fleet, one ServeClient connection per client
        // thread, every product checked bitwise against the reference.
        let fleet = run_mixed_stream(clients, requests_per_client, problems.len(), |_| {
            let mut client = ServeClient::connect(router.socket()).expect("connect to router");
            let problems = &problems;
            let expected = &expected;
            let mismatches = &mismatches;
            move |idx: usize| {
                let (a, b) = &problems[idx];
                match client.multiply(a, b) {
                    Ok(c) => {
                        if c != expected[idx] {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                            false
                        } else {
                            true
                        }
                    }
                    Err(e) => {
                        eprintln!("fleet multiply failed: {e}");
                        false
                    }
                }
            }
        });
        report::<T>(&format!("fleet(shards={})", cfg.shards), clients, &fleet);
        push_rows(
            &mut rows,
            &format!("fleet(shards={}){}", cfg.shards, dtype_tag::<T>()),
            shapes,
            clients,
            &fleet,
        );
    }

    // Fleet-wide observability snapshot + the consistency invariant:
    // engine counters (plus router-reconstructed history) must equal
    // the completions clients observed.
    let stats = router.fleet_stats();
    consistency_report(&stats);
    if let Some(path) = &cfg.stats_json {
        std::fs::write(path, stats.to_json()).expect("write stats json");
        eprintln!("wrote fleet snapshot to {path}");
    } else {
        eprintln!("fleet snapshot:\n{}", stats.to_json());
    }

    let mismatch_count = mismatches.load(Ordering::Relaxed);
    assert_eq!(
        mismatch_count, 0,
        "{mismatch_count} fleet-served products differed bitwise from the local engine"
    );
    eprintln!("all fleet-served products matched the local engine bitwise");

    router.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    if let Some(path) = &cfg.harness.json_out {
        let json = serde_json::to_string_pretty(&rows).expect("serialize");
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn report<T: WireScalar>(tier: &str, clients: usize, outcome: &StreamOutcome) {
    let stats = outcome.latency();
    println!(
        "{tier},{},{clients},{},{},{:.3},{:.1},{:.3},{:.3}",
        T::NAME,
        stats.count,
        outcome.failures,
        outcome.total_s,
        outcome.mps(),
        stats.p50_s * 1e3,
        stats.p99_s * 1e3
    );
}

fn push_rows(
    rows: &mut Vec<Measurement>,
    algorithm: &str,
    shapes: &[(usize, usize, usize)],
    clients: usize,
    outcome: &StreamOutcome,
) {
    for (idx, &(p, q, r)) in shapes.iter().enumerate() {
        let Some(mean) = outcome.shape_mean(idx) else {
            continue;
        };
        rows.push(Measurement {
            experiment: "loadgen".into(),
            algorithm: algorithm.to_string(),
            p,
            q,
            r,
            threads: clients,
            steps: 0,
            seconds: mean,
            effective_gflops: fmm_gemm::effective_gflops(p, q, r, mean),
        });
    }
}

fn consistency_report(stats: &FleetStats) {
    let shard_side = stats.shard_multiplies();
    let router_side = stats.router.completions;
    eprintln!(
        "consistency: shard-side multiplies {} vs router completions {} — {}",
        shard_side,
        router_side,
        if shard_side == router_side {
            "consistent"
        } else {
            "INCONSISTENT"
        }
    );
    for slot in &stats.slots {
        eprintln!(
            "  shard {}: healthy={} respawns={} ok_total={} engine_multiplies={}",
            slot.slot,
            slot.healthy,
            slot.respawns,
            slot.ok_total,
            slot.report
                .as_ref()
                .map_or_else(|| "-".to_string(), |r| r.engine_multiplies().to_string())
        );
    }
}
