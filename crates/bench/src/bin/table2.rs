//! Table 2: summary of fast algorithms — rank, classical multiplies,
//! multiplication speedup per recursive step, and provenance.

fn main() {
    println!(
        "{:<12} {:>10} {:>11} {:>9}  provenance",
        "base", "multiplies", "classical", "speedup"
    );
    for row in fmm_algo::table2() {
        println!(
            "{:<12} {:>10} {:>11} {:>8.0}%  {}",
            row.base,
            row.fast_multiplies,
            row.classical_multiplies,
            row.speedup_percent,
            row.provenance
        );
    }
    let s54 = fmm_algo::schedule_54();
    let rank: usize = s54.iter().map(|d| d.rank()).product();
    let omega = 3.0 * (rank as f64).ln() / (54.0f64 * 54.0 * 54.0).ln();
    println!("\ncomposed <54,54,54>: rank {rank}, square exponent ω₀ = {omega:.3} (paper: 2.775 with rank 40³)");

    // The flip-graph-searched ⟨2,3,3⟩:15 and its derived ripple are
    // quoted by EXPERIMENTS.md; hard-fail here if the catalog ever
    // regresses past them (this binary runs in CI).
    assert_eq!(
        fmm_algo::by_base(2, 3, 3).dec.rank(),
        15,
        "⟨2,3,3⟩ lost the searched rank-15 scheme"
    );
    assert!(
        fmm_algo::by_base(3, 3, 3).dec.rank() <= 24,
        "⟨3,3,3⟩ regressed past ⟨1,3,3⟩ ⊕ ⟨2,3,3⟩ = 24"
    );
    assert!(
        fmm_algo::by_base(3, 3, 6).dec.rank() <= 45,
        "⟨3,3,6⟩ regressed past ⟨3,3,2⟩ ⊕ ⟨3,3,4⟩ = 45"
    );
    assert!(omega < 2.957, "composed exponent regressed to {omega:.3}");
}
