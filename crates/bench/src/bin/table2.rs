//! Table 2: summary of fast algorithms — rank, classical multiplies,
//! multiplication speedup per recursive step, and provenance.

fn main() {
    println!(
        "{:<12} {:>10} {:>11} {:>9}  provenance",
        "base", "multiplies", "classical", "speedup"
    );
    for row in fmm_algo::table2() {
        println!(
            "{:<12} {:>10} {:>11} {:>8.0}%  {}",
            row.base,
            row.fast_multiplies,
            row.classical_multiplies,
            row.speedup_percent,
            row.provenance
        );
    }
    let s54 = fmm_algo::schedule_54();
    let rank: usize = s54.iter().map(|d| d.rank()).product();
    let omega = 3.0 * (rank as f64).ln() / (54.0f64 * 54.0 * 54.0).ln();
    println!("\ncomposed <54,54,54>: rank {rank}, square exponent ω₀ = {omega:.3} (paper: 2.775 with rank 40³)");
}
