//! Engine throughput: one long-lived [`fmm_core::FmmEngine`] serving a
//! mixed-shape request stream from 1..=P client OS threads.
//!
//! This is the serving benchmark behind the ROADMAP's "batched/streamed
//! multiply API" item: clients hammer the same engine, plans come from
//! the LRU cache, workspaces from the pool, and the binary reports
//! sustained multiplies/sec plus p50/p99 request latency per client
//! count — the numbers a capacity plan needs.
//!
//! The engine pool width follows `FMM_THREADS` (or the hardware);
//! `--threads 1,4` sets the *client* counts to sweep. `--dtype f32`
//! runs the identical stream through an `FmmEngine<f32>` (same seeds,
//! same shapes) for the f32-vs-f64 serving comparison in
//! EXPERIMENTS.md. `--json PATH` writes per-shape `Measurement` rows
//! that `summarize` can digest; `--stats-json PATH` dumps the final
//! [`fmm_core::EngineStats`] (including the per-shape-class latency
//! histograms) for `summarize --engine-stats`.
//!
//! Latency columns are read from the engine's always-on histogram
//! ([`fmm_core::EngineStats::latency`]), diffed per sweep — the same
//! numbers an operator gets from a live engine, at the histogram's
//! bucket resolution.

use fmm_bench::*;
use fmm_core::{FmmEngine, GemmScalar};
use fmm_matrix::DenseMatrix;
use fmm_trace::merged_total;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    match cfg.dtype {
        Dtype::F64 => run::<f64>(&cfg),
        Dtype::F32 => run::<f32>(&cfg),
    }
}

fn run<T: GemmScalar>(cfg: &HarnessConfig) {
    let shapes: &[(usize, usize, usize)] = if cfg.quick {
        &[(96, 96, 96), (64, 128, 64), (128, 64, 32), (100, 100, 100)]
    } else {
        &[
            (256, 256, 256),
            (192, 384, 192),
            (384, 192, 96),
            (300, 300, 300),
        ]
    };
    let requests_per_client = if cfg.quick { 24 } else { 64 };

    let engine = FmmEngine::<T>::builder().build().expect("engine");
    let problems: Vec<(DenseMatrix<T>, DenseMatrix<T>)> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q, r))| workload_in::<T>(p, q, r, 42 + i as u64))
        .collect();

    // Warm-up: populate the plan cache and size one pooled workspace
    // per shape, so the measured region is the steady serving state.
    for (a, b) in &problems {
        engine.multiply(a, b).expect("warm-up multiply");
    }

    println!("dtype,clients,engine_threads,requests,total_s,mps,p50_ms,p99_ms,p999_ms");
    let mut rows: Vec<Measurement> = Vec::new();
    for &clients in &cfg.thread_counts {
        let clients = clients.max(1);
        // Latency columns come from the engine's own histogram, diffed
        // over this sweep's window (warm-up and earlier sweeps fall out
        // of the difference).
        let before = merged_total(&engine.stats().latency);
        // The shared serving-stream loop: clients staggered across the
        // shape mix, each request timed individually.
        let outcome = run_mixed_stream(clients, requests_per_client, problems.len(), |_client| {
            let engine = engine.clone();
            let problems = &problems;
            move |idx: usize| {
                let (a, b) = &problems[idx];
                let c = engine.multiply(a, b).expect("serve");
                std::hint::black_box(&c);
                true
            }
        });
        let window = merged_total(&engine.stats().latency).saturating_diff(&before);
        let stats = LatencyStats::from_histogram(&window);
        println!(
            "{},{clients},{},{},{:.3},{:.1},{:.3},{:.3},{:.3}",
            T::NAME,
            engine.threads(),
            stats.count,
            outcome.total_s,
            outcome.mps(),
            stats.p50_s * 1e3,
            stats.p99_s * 1e3,
            stats.p999_s * 1e3
        );
        // One summarize-compatible row per shape: mean latency as the
        // per-request time, at this client count.
        for (idx, &(p, q, r)) in shapes.iter().enumerate() {
            let Some(mean) = outcome.shape_mean(idx) else {
                continue;
            };
            rows.push(Measurement {
                experiment: "throughput".into(),
                algorithm: format!("engine{}(x{})", dtype_tag::<T>(), engine.threads()),
                p,
                q,
                r,
                threads: clients,
                steps: 0,
                seconds: mean,
                effective_gflops: fmm_gemm::effective_gflops(p, q, r, mean),
            });
        }
    }

    // Exercise the async path too: submit the whole mixed-shape batch
    // at once and join the handles.
    let t0 = Instant::now();
    let handles = engine.submit_batch(problems.clone());
    for handle in handles {
        handle.wait().expect("batch result");
    }
    eprintln!(
        "submit_batch of {} mixed-shape products joined in {:.3}s",
        problems.len(),
        t0.elapsed().as_secs_f64()
    );

    let stats = engine.stats();
    eprintln!(
        "engine[{}] stats: {} multiplies, cache {}/{} hit/miss, workspaces {} created / {} reused / {} pooled, {} steals",
        T::NAME,
        stats.multiplies,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.workspaces_created,
        stats.workspaces_reused,
        stats.workspaces_pooled,
        stats.tasks_stolen
    );
    if let Some(path) = &cfg.json_out {
        let json = serde_json::to_string_pretty(&rows).expect("serialize");
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &cfg.stats_json {
        let json = serde_json::to_string_pretty(&stats).expect("serialize stats");
        std::fs::write(path, json).expect("write stats json");
        eprintln!("wrote engine stats (with latency histograms) to {path}");
    }
}
