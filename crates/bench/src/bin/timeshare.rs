//! Where does the time go inside one fast multiply? The software
//! analog of the paper's Fig. 4: per parallel scheme, the share of
//! worker time spent in base-case gemms versus the S/T addition
//! phases versus the M-combine, measured from `fmm-trace` spans.
//!
//! ```text
//! timeshare [--quick|--full] [--trials T] [--threads N]
//! ```
//!
//! The paper's observation is that fast algorithms win exactly when
//! the addition overhead stays a small fraction of the base-case gemm
//! time; this binary quotes that fraction directly, per schedule, for
//! EXPERIMENTS.md.

use fmm_bench::*;
use fmm_core::{AdditionMethod, Options, Planner, Scheme, Workspace};
use fmm_matrix::Matrix;
use fmm_trace::{SpanKind, TraceSink};

fn main() {
    let cfg = HarnessConfig::from_args();
    let (dim, steps) = if cfg.quick { (256, 2) } else { (768, 2) };
    let par_threads = cfg
        .thread_counts
        .iter()
        .copied()
        .max()
        .unwrap_or_else(num_threads_available)
        .max(2);
    fmm_trace::set_enabled(true);

    let (a, b) = workload(dim, dim, dim, 42);
    let mut c = Matrix::zeros(dim, dim);

    println!("scheme,threads,spans,base_gemm_pct,additions_pct,combine_pct,peel_pct");
    for (scheme, threads) in [
        (Scheme::Sequential, 1),
        (Scheme::Bfs, par_threads),
        (Scheme::Dfs, par_threads),
        (Scheme::Hybrid, par_threads),
    ] {
        let plan = Planner::new()
            .shape(dim, dim, dim)
            .algorithm(&fmm_algo::strassen())
            .steps(steps)
            .options(Options {
                scheme,
                additions: AdditionMethod::WriteOnce,
                ..Options::default()
            })
            .plan::<f64>()
            .expect("timeshare plan");
        let mut ws = Workspace::for_plan(&plan);
        // Warm-up outside the traced region, then trace `trials` runs.
        pool(threads).install(|| plan.execute(&a, &b, &mut c, &mut ws));
        fmm_trace::reset();
        pool(threads).install(|| {
            for _ in 0..cfg.trials.max(1) {
                plan.execute(&a, &b, &mut c, &mut ws);
            }
        });
        let sink = TraceSink::collect();
        let shares = sink.work_share();
        let pct = |kind: SpanKind| {
            shares
                .iter()
                .find(|(k, _)| *k == kind)
                .map_or(0.0, |&(_, p)| p)
        };
        let spans: u64 = SpanKind::ALL
            .iter()
            .filter(|k| k.is_leaf_work())
            .map(|&k| sink.count(k))
            .sum();
        println!(
            "{scheme:?},{threads},{spans},{:.1},{:.1},{:.1},{:.1}",
            pct(SpanKind::BaseGemm),
            pct(SpanKind::Additions),
            pct(SpanKind::Combine),
            pct(SpanKind::PeelGemm),
        );
    }
}
