//! Figure 7: parallel performance on the two rectangular shapes
//! (outer-product N×K×N, tall-and-skinny N×K×K) across thread counts.

use fmm_bench::*;

fn main() {
    let cfg = HarnessConfig::from_args();
    let sizes: Vec<usize> = if cfg.quick {
        vec![384, 512, 768]
    } else {
        vec![768, 1024, 1536, 2048]
    };
    let k_outer = if cfg.quick { 448 } else { 2800 };
    let k_tall = if cfg.quick { 480 } else { 3000 };
    let steps: &[usize] = &[1, 2];
    let names = ["strassen", "<4,2,4>", "<4,3,3>", "<3,2,3>", "<4,2,3>"];
    let mut rows = Vec::new();
    for &threads in &cfg.thread_counts {
        for &n in &sizes {
            rows.push(measure_classical(
                "fig7-outer",
                n,
                k_outer,
                n,
                threads,
                cfg.trials,
            ));
            rows.push(measure_classical(
                "fig7-tall",
                n,
                k_tall,
                k_tall,
                threads,
                cfg.trials,
            ));
            for name in names {
                let alg = fmm_algo::by_name(name).unwrap();
                rows.push(measure_fast_best_scheme(
                    "fig7-outer",
                    name,
                    &alg.dec,
                    n,
                    k_outer,
                    n,
                    threads,
                    steps,
                    cfg.trials,
                ));
                rows.push(measure_fast_best_scheme(
                    "fig7-tall",
                    name,
                    &alg.dec,
                    n,
                    k_tall,
                    k_tall,
                    threads,
                    steps,
                    cfg.trials,
                ));
            }
            for apa in [fmm_algo::bini_apa(), fmm_algo::schonhage_apa()]
                .into_iter()
                .flatten()
            {
                rows.push(measure_fast_best_scheme(
                    "fig7-outer",
                    &apa.name,
                    &apa.dec,
                    n,
                    k_outer,
                    n,
                    threads,
                    steps,
                    cfg.trials,
                ));
                rows.push(measure_fast_best_scheme(
                    "fig7-tall",
                    &apa.name,
                    &apa.dec,
                    n,
                    k_tall,
                    k_tall,
                    threads,
                    steps,
                    cfg.trials,
                ));
            }
        }
    }
    emit(&cfg, &rows);
}
