//! Figure 6: parallel performance on square problems across the
//! catalog, at "few" and "many" thread counts (the analog of the
//! paper's 6- and 24-core panels at this machine's scale).

use fmm_bench::*;

fn main() {
    let cfg = HarnessConfig::from_args();
    let sizes: Vec<usize> = if cfg.quick {
        vec![384, 512, 768]
    } else {
        vec![768, 1024, 1536, 2048]
    };
    let steps: &[usize] = &[1, 2, 3];
    let mut algos = fmm_algo::catalog();
    for name in [
        "<4,2,2>", "<3,2,3>", "<3,3,2>", "<5,2,2>", "<4,2,4>", "<4,3,3>",
    ] {
        algos.push(fmm_algo::by_name(name).unwrap());
    }
    for apa in [fmm_algo::bini_apa(), fmm_algo::schonhage_apa()]
        .into_iter()
        .flatten()
    {
        algos.push(apa);
    }
    let mut rows = Vec::new();
    for &threads in &cfg.thread_counts {
        for &n in &sizes {
            rows.push(measure_classical(
                "fig6-square",
                n,
                n,
                n,
                threads,
                cfg.trials,
            ));
            for alg in &algos {
                rows.push(measure_fast_best_scheme(
                    "fig6-square",
                    &alg.name,
                    &alg.dec,
                    n,
                    n,
                    n,
                    threads,
                    steps,
                    cfg.trials,
                ));
            }
        }
    }
    emit(&cfg, &rows);
}
