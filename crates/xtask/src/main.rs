//! Workspace maintenance gate: `cargo run -p xtask -- <command>`.
//!
//! Commands:
//!
//! * `lint` — static repository checks, wired into CI as a blocking
//!   gate:
//!   * every `unsafe` block or impl carries a `// SAFETY:` comment on
//!     the same line or within the five preceding lines;
//!   * `unsafe` code only appears in the audited allowlist (the
//!     work-stealing deque/job/registry and the strided matrix views) —
//!     new unsafe anywhere else fails the build until it is reviewed
//!     and allowlisted here;
//!   * every shipped `.alg` coefficient file is internally consistent:
//!     header dims match the filename, exact files pass exact ℚ
//!     certification, APA files declare a residual that matches the
//!     recomputed Brent residual;
//!   * the vendored `rayon` facade re-exports exactly the pinned API
//!     surface (so the documented "swap in real rayon" path cannot
//!     silently drift).
//! * `certify` — run exact ℚ certification over every exact scheme the
//!   catalog can produce, the APA acceptance checks, and the ℚ\[ε\]
//!   border-rank certification of the Schönhage τ construction.
//! * `trace-check <file>` — validate a Chrome trace JSON produced by
//!   the tracing stack (`loadgen --trace` or
//!   `fmm_trace::TraceSink::export_chrome_json`): parseable, non-empty,
//!   and covering the deterministic span kinds end to end.
//!
//! Exit status is non-zero when any check fails; every failure is
//! reported, not just the first.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fmm_verify::Certify;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    let result = match cmd {
        Some("lint") => lint(),
        Some("certify") => certify(&args[1..]),
        Some("trace-check") => match args.get(1) {
            Some(path) => trace_check(path),
            None => {
                eprintln!("usage: cargo run -p xtask -- trace-check <trace.json>");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint|certify [file.alg ...]|trace-check>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(failures) => {
            eprintln!("xtask {}: {} failure(s)", cmd.unwrap(), failures.len());
            for f in &failures {
                eprintln!("  - {f}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Workspace root (the directory holding the top-level `Cargo.toml`),
/// derived from this crate's own manifest dir so the tool runs from
/// anywhere.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

// ---------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------

/// Source files allowed to contain `unsafe` code. Everything here has
/// been audited and carries `// SAFETY:` comments (which the lint also
/// enforces); any other file containing `unsafe` fails the gate.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/runtime/src/deque.rs",
    "crates/runtime/src/job.rs",
    "crates/runtime/src/registry.rs",
    "crates/matrix/src/view.rs",
];

/// Items the vendored `rayon` facade must re-export from
/// `fmm_runtime` — the exact rayon-1.x-compatible surface the
/// workspace is written against. Changing this surface is a deliberate
/// act: update the facade, this pin, and the swap-compatibility note
/// in `vendor/rayon/src/lib.rs` together.
const RAYON_FACADE_EXPORTS: &[&str] = &[
    "current_num_threads",
    "join",
    "scope",
    "spawn",
    "Scope",
    "ThreadPool",
    "ThreadPoolBuildError",
    "ThreadPoolBuilder",
];

fn lint() -> Result<String, Vec<String>> {
    let root = workspace_root();
    let mut failures = Vec::new();
    let mut summary = String::new();

    let sources = collect_rust_sources(&root);
    let (checked, annotated) = audit_kw_sites(&root, &sources, &mut failures);
    let kw = ["un", "safe"].concat();
    let _ = writeln!(
        summary,
        "{kw} audit: {checked} source files scanned, {annotated} {kw} sites annotated"
    );

    let n_alg = lint_alg_data(&root, &mut failures);
    let _ = writeln!(summary, "alg data: {n_alg} coefficient files validated");

    lint_rayon_facade(&root, &mut failures);
    let _ = writeln!(
        summary,
        "vendor facade: rayon re-exports match the pinned surface"
    );

    let n_serve = lint_serve_stays_safe(&sources, &mut failures);
    let _ = writeln!(
        summary,
        "serving tier: {n_serve} crates/serve sources scanned, none allowlisted"
    );

    let n_trace = lint_trace_stays_safe(&sources, &mut failures);
    let _ = writeln!(
        summary,
        "tracing: {n_trace} crates/trace sources scanned, none allowlisted"
    );

    let n_gf2 = lint_gf2_stays_safe(&sources, &mut failures);
    let _ = writeln!(
        summary,
        "gf2 backend: {n_gf2} crates/gf2 sources scanned, none allowlisted"
    );

    let n_hot = lint_no_raw_clocks_in_hot_paths(&root, &sources, &mut failures);
    let _ = writeln!(
        summary,
        "hot paths: {n_hot} executor/gemm/m4rm sources free of raw Instant reads"
    );

    if failures.is_empty() {
        let _ = write!(summary, "lint: OK");
        Ok(summary)
    } else {
        Err(failures)
    }
}

/// All `.rs` files under the workspace (skipping build output and VCS
/// internals), as root-relative paths.
fn collect_rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path.strip_prefix(root).expect("under root").to_path_buf());
            }
        }
    }
    out.sort();
    out
}

/// True for lines that are entirely a comment (`//`, `///`, `//!`).
fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Enforce the unsafe allowlist and the `// SAFETY:` comment rule.
/// Returns (files scanned, annotated unsafe sites found).
fn audit_kw_sites(root: &Path, sources: &[PathBuf], failures: &mut Vec<String>) -> (usize, usize) {
    // Build the needles at runtime so this file never trips its own
    // token scan.
    let kw = ["un", "safe"].concat();
    let kw_fn = format!("{kw} fn");
    // `#![forbid(unsafe_code)]` and friends assert the *absence* of
    // such code; the lint-name form is never a code site.
    let kw_lint_name = format!("{kw}_code");
    let marker = ["SAFE", "TY:"].concat();

    let mut annotated = 0usize;
    for rel in sources {
        let text = match std::fs::read_to_string(root.join(rel)) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("{}: unreadable: {e}", rel.display()));
                continue;
            }
        };
        let allowlisted = UNSAFE_ALLOWLIST.iter().any(|a| Path::new(a) == rel);
        let lines: Vec<&str> = text.lines().collect();
        let mut file_has_kw = false;
        for (i, line) in lines.iter().enumerate() {
            if is_comment_line(line) || !line.contains(&kw) {
                continue;
            }
            if line.contains(&kw_lint_name) && !line.replace(&kw_lint_name, "").contains(&kw) {
                continue;
            }
            file_has_kw = true;
            // Declarations and fn-pointer types carry their contract in
            // `# Safety` docs; the comment rule targets blocks & impls.
            if line.contains(&kw_fn) {
                continue;
            }
            let covered = line.contains(&marker)
                || lines[i.saturating_sub(5)..i]
                    .iter()
                    .any(|prev| is_comment_line(prev) && prev.contains(&marker));
            if covered {
                annotated += 1;
            } else {
                failures.push(format!(
                    "{}:{}: {kw} without a `// {marker}` comment on the same or \
                     one of the 5 preceding lines",
                    rel.display(),
                    i + 1,
                ));
            }
        }
        if file_has_kw && !allowlisted {
            failures.push(format!(
                "{}: contains {kw} code but is not in the xtask allowlist \
                 (audit it, annotate it, and add it to UNSAFE_ALLOWLIST)",
                rel.display(),
            ));
        }
    }
    (sources.len(), annotated)
}

/// The serving tier (`crates/serve`) handles untrusted bytes off a
/// socket, so it is pinned to safe Rust end to end: its files must
/// never enter the allowlist, and they must actually be present in the
/// source scan (a crate rename that dropped them from the walk would
/// silently void the pin). Returns the number of serve sources seen.
fn lint_serve_stays_safe(sources: &[PathBuf], failures: &mut Vec<String>) -> usize {
    if let Some(entry) = UNSAFE_ALLOWLIST
        .iter()
        .find(|a| Path::new(a).starts_with("crates/serve"))
    {
        failures.push(format!(
            "{entry}: crates/serve must stay free of allowlisted {} code \
             (it parses untrusted wire bytes); remove the entry",
            ["un", "safe"].concat(),
        ));
    }
    let n_serve = sources
        .iter()
        .filter(|p| p.starts_with("crates/serve"))
        .count();
    if n_serve == 0 {
        failures.push(
            "crates/serve: no sources found in the scan — the safe-Rust pin \
             on the serving tier is not being enforced"
                .to_string(),
        );
    }
    n_serve
}

/// The tracing crate (`crates/trace`) is compiled into every hot path
/// in the workspace and is pinned to safe Rust (`#![forbid]` in the
/// crate root, re-asserted here): its files must never enter the
/// allowlist, and they must be present in the scan. Returns the number
/// of trace sources seen.
fn lint_trace_stays_safe(sources: &[PathBuf], failures: &mut Vec<String>) -> usize {
    if let Some(entry) = UNSAFE_ALLOWLIST
        .iter()
        .find(|a| Path::new(a).starts_with("crates/trace"))
    {
        failures.push(format!(
            "{entry}: crates/trace must stay free of allowlisted {} code \
             (it is linked into every hot path); remove the entry",
            ["un", "safe"].concat(),
        ));
    }
    let n_trace = sources
        .iter()
        .filter(|p| p.starts_with("crates/trace"))
        .count();
    if n_trace == 0 {
        failures.push(
            "crates/trace: no sources found in the scan — the safe-Rust pin \
             on the tracing crate is not being enforced"
                .to_string(),
        );
    }
    n_trace
}

/// The GF(2) backend (`crates/gf2`) is pinned to safe Rust
/// (`#![forbid]` in the crate root, re-asserted here): packed word ops
/// are all expressible with slice indexing, so its files must never
/// enter the allowlist, and they must be present in the scan. Returns
/// the number of gf2 sources seen.
fn lint_gf2_stays_safe(sources: &[PathBuf], failures: &mut Vec<String>) -> usize {
    if let Some(entry) = UNSAFE_ALLOWLIST
        .iter()
        .find(|a| Path::new(a).starts_with("crates/gf2"))
    {
        failures.push(format!(
            "{entry}: crates/gf2 must stay free of allowlisted {} code \
             (packed word ops are expressible in safe slice indexing); remove the entry",
            ["un", "safe"].concat(),
        ));
    }
    let n_gf2 = sources
        .iter()
        .filter(|p| p.starts_with("crates/gf2"))
        .count();
    if n_gf2 == 0 {
        failures.push(
            "crates/gf2: no sources found in the scan — the safe-Rust pin \
             on the GF(2) backend is not being enforced"
                .to_string(),
        );
    }
    n_gf2
}

/// The executor and gemm hot paths must take timestamps only through
/// the trace clock (`fmm_trace::now_ns`/`now_if`, whose gate check is
/// hoisted out of leaf loops) — a raw `Instant::now()` there is an
/// unconditional clock read on every leaf, exactly the overhead the
/// tracing design avoids. Returns the number of files scanned.
fn lint_no_raw_clocks_in_hot_paths(
    root: &Path,
    sources: &[PathBuf],
    failures: &mut Vec<String>,
) -> usize {
    // Built at runtime so this file never trips its own scan.
    let needle = ["Instant", "::now()"].concat();
    let hot: Vec<&PathBuf> = sources
        .iter()
        .filter(|p| {
            *p == Path::new("crates/core/src/executor.rs")
                || p.starts_with("crates/gemm/src")
                || *p == Path::new("crates/gf2/src/m4rm.rs")
        })
        .collect();
    if hot.is_empty() {
        failures
            .push("hot-path clock lint: no executor/gemm sources found in the scan".to_string());
        return 0;
    }
    for rel in &hot {
        let Ok(text) = std::fs::read_to_string(root.join(rel)) else {
            failures.push(format!("{}: unreadable", rel.display()));
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            if !is_comment_line(line) && line.contains(&needle) {
                failures.push(format!(
                    "{}:{}: raw `{needle}` in a hot path — use the fmm-trace \
                     clock (`now_if` with a hoisted gate) instead",
                    rel.display(),
                    i + 1,
                ));
            }
        }
    }
    hot.len()
}

/// Validate every shipped `.alg` coefficient file: parseable, filename
/// consistent with the header, exact files exactly certified, APA files
/// carrying an accurate machine-checked residual in their header.
fn lint_alg_data(root: &Path, failures: &mut Vec<String>) -> usize {
    let data_dir = root.join("crates/algo/data");
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&data_dir) {
        Ok(rd) => rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "alg"))
            .collect(),
        Err(e) => {
            failures.push(format!("{}: unreadable: {e}", data_dir.display()));
            return 0;
        }
    };
    paths.sort();
    if paths.is_empty() {
        failures.push(format!("{}: no .alg files found", data_dir.display()));
    }
    let mut integer_coeff: Vec<String> = Vec::new();
    for path in &paths {
        let name = path
            .file_stem()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        let label = format!("crates/algo/data/{name}.alg");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("{label}: unreadable: {e}"));
                continue;
            }
        };
        let dec = match fmm_algo::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                failures.push(format!("{label}: parse error: {e}"));
                continue;
            }
        };
        // Filename tokens: a 3-digit token pins ⟨m,k,n⟩; for APA files
        // the trailing token pins the rank.
        let tokens: Vec<&str> = name.split('_').collect();
        if let Some(dims) = tokens
            .iter()
            .find(|t| t.len() == 3 && t.chars().all(|c| c.is_ascii_digit()))
        {
            let d: Vec<usize> = dims.chars().map(|c| c as usize - '0' as usize).collect();
            if dec.base() != (d[0], d[1], d[2]) {
                failures.push(format!(
                    "{label}: filename says <{},{},{}> but header says {:?}",
                    d[0],
                    d[1],
                    d[2],
                    dec.base()
                ));
            }
        } else {
            failures.push(format!(
                "{label}: filename lacks a 3-digit <mkn> dims token"
            ));
        }
        if name.starts_with("apa_") {
            if let Some(rank_tok) = tokens.last().and_then(|t| t.parse::<usize>().ok()) {
                if dec.rank() != rank_tok {
                    failures.push(format!(
                        "{label}: filename says rank {rank_tok} but file has rank {}",
                        dec.rank()
                    ));
                }
            }
            let Some(declared) = fmm_algo::declared_residual(&text) else {
                failures.push(format!(
                    "{label}: APA file must declare `residual <value>` in its header comment"
                ));
                continue;
            };
            if let Err(e) = fmm_verify::check_apa_fit(&dec, declared) {
                failures.push(format!("{label}: {e}"));
            }
        } else if let Err(e) = dec.certify() {
            failures.push(format!("{label}: exact certification failed: {e}"));
        }
        // GF(2)-executability is a property of the file contents: all
        // three factors integer-coefficient ⟺ the mod-2 lift (odd → 1,
        // even → 0, fractional → plan error) accepts the scheme. The
        // lint derives the set from the shipped coefficients and
        // cross-checks it against the actual `fmm-gf2` planner both
        // ways, so a new `.alg` drop (e.g. from a flip-graph search)
        // is classified automatically and any drift between the two
        // notions of "integer scheme" is caught here.
        let all_integer = [&dec.u, &dec.v, &dec.w].iter().all(|m| {
            m.as_slice()
                .iter()
                .all(|c| c.fract() == 0.0 && c.is_finite())
        });
        let lift = fmm_gf2::Gf2Planner::new()
            .shape(64, 64, 64)
            .algorithm(&dec)
            .steps(1)
            .plan();
        match (all_integer, lift) {
            (true, Err(e)) => failures.push(format!(
                "{label}: all-integer coefficients but the GF(2) mod-2 lift \
                 rejects it: {e}"
            )),
            (false, Ok(_)) => failures.push(format!(
                "{label}: fractional coefficients yet the GF(2) mod-2 lift \
                 accepted it — the lift must reject non-integer schemes"
            )),
            _ => {}
        }
        if all_integer {
            integer_coeff.push(name.clone());
        }
    }
    if !integer_coeff.iter().any(|n| n == "strassen_222") {
        failures.push(
            "crates/algo/data/strassen_222.alg: the catalog must always ship at \
             least Strassen as a GF(2)-executable integer scheme"
                .to_string(),
        );
    }
    paths.len()
}

/// Parse the facade's `pub use fmm_runtime::{...}` list and compare it
/// against the pinned rayon-compatible surface.
fn lint_rayon_facade(root: &Path, failures: &mut Vec<String>) {
    let path = root.join("vendor/rayon/src/lib.rs");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            failures.push(format!("vendor/rayon/src/lib.rs: unreadable: {e}"));
            return;
        }
    };
    let Some(start) = text.find("pub use fmm_runtime::{") else {
        failures.push(
            "vendor/rayon/src/lib.rs: missing `pub use fmm_runtime::{...}` re-export".to_string(),
        );
        return;
    };
    let after = &text[start + "pub use fmm_runtime::{".len()..];
    let Some(end) = after.find('}') else {
        failures.push("vendor/rayon/src/lib.rs: unterminated re-export list".to_string());
        return;
    };
    let mut exported: Vec<&str> = after[..end]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    exported.sort_unstable();
    let mut expected: Vec<&str> = RAYON_FACADE_EXPORTS.to_vec();
    expected.sort_unstable();
    if exported != expected {
        failures.push(format!(
            "vendor/rayon facade drift: re-exports {exported:?} but the pinned \
             rayon-compatible surface is {expected:?}"
        ));
    }
    if !text.contains("pub mod prelude;") {
        failures.push("vendor/rayon/src/lib.rs: missing `pub mod prelude;`".to_string());
    }
}

// ---------------------------------------------------------------------
// certify
// ---------------------------------------------------------------------

/// Exact ℚ certification over everything the catalog ships, APA
/// acceptance checks, and a ℚ\[ε\] border-rank certification exercising
/// the degeneration machinery. With explicit `.alg` paths, certify
/// exactly those files instead (the seam CI's `search-smoke` job uses
/// to gate freshly discovered schemes before they reach the catalog).
fn certify(files: &[String]) -> Result<String, Vec<String>> {
    let mut failures = Vec::new();
    let mut summary = String::new();

    if !files.is_empty() {
        let mut equations = 0usize;
        for path in files {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    failures.push(format!("{path}: unreadable: {e}"));
                    continue;
                }
            };
            let dec = match fmm_algo::parse(&text) {
                Ok(d) => d,
                Err(e) => {
                    failures.push(format!("{path}: parse error: {e}"));
                    continue;
                }
            };
            match dec.certify() {
                Ok(cert) => {
                    equations += cert.equations;
                    let _ = writeln!(
                        summary,
                        "{path}: <{},{},{}> rank {} certified in Q ({cert})",
                        dec.m,
                        dec.k,
                        dec.n,
                        dec.rank()
                    );
                }
                Err(e) => failures.push(format!("{path}: exact certification failed: {e}")),
            }
        }
        return if failures.is_empty() {
            let _ = write!(
                summary,
                "certify: OK ({} file(s), {equations} Brent equations proved identically)",
                files.len()
            );
            Ok(summary)
        } else {
            Err(failures)
        };
    }

    // Exact schemes: the hand-coded/derived catalog, the §5.2 composed
    // schedule, and every exact embedded coefficient file.
    let mut exact: Vec<(String, fmm_tensor::Decomposition)> = fmm_algo::catalog()
        .into_iter()
        .map(|a| (a.name.clone(), a.dec))
        .collect();
    for (i, dec) in fmm_algo::schedule_54().into_iter().enumerate() {
        exact.push((format!("schedule_54[{i}]"), dec));
    }
    for (name, text) in fmm_algo::embedded_files() {
        if !name.starts_with("apa_") {
            match fmm_algo::parse(text) {
                Ok(dec) => exact.push(((*name).to_string(), dec)),
                Err(e) => failures.push(format!("{name}: parse error: {e}")),
            }
        }
    }
    let mut equations = 0usize;
    for (name, dec) in &exact {
        match dec.certify() {
            Ok(cert) => equations += cert.equations,
            Err(e) => failures.push(format!("{name}: exact certification failed: {e}")),
        }
    }
    let _ = writeln!(
        summary,
        "exact: {} schemes certified in Q ({} Brent equations proved identically)",
        exact.len(),
        equations
    );

    // APA entries: principled acceptance (rank deficit + unambiguous
    // rounding + header agreement).
    for label in ["bini", "schonhage"] {
        match fmm_algo::by_name(label) {
            Some(alg) => {
                let fmm_algo::Provenance::Apa(residual) = alg.provenance else {
                    failures.push(format!("{label}: expected APA provenance"));
                    continue;
                };
                let _ = writeln!(
                    summary,
                    "apa: {label} rank {} < classical {} (residual {residual:.3e})",
                    alg.dec.rank(),
                    alg.dec.classical_rank()
                );
            }
            None => failures.push(format!("{label}: failed APA acceptance checks")),
        }
    }

    // Border-rank certification: Schönhage's τ-theorem construction,
    // certified term-by-term in Q[eps].
    for (k, n) in [(2usize, 2usize), (3, 3)] {
        let scheme = fmm_verify::schonhage_tau_scheme(k, n);
        let target = fmm_verify::schonhage_tau_target(k, n);
        match fmm_verify::certify_border(&scheme, &target, Some(2)) {
            Ok(cert) => {
                let _ = writeln!(summary, "border: tau({k},{n}) {cert}");
            }
            Err(e) => failures.push(format!("tau({k},{n}): border certification failed: {e}")),
        }
    }

    if failures.is_empty() {
        let _ = write!(summary, "certify: OK");
        Ok(summary)
    } else {
        Err(failures)
    }
}

// ---------------------------------------------------------------------
// trace-check
// ---------------------------------------------------------------------

/// Validate a Chrome trace JSON document produced by the tracing
/// stack: it must parse, be a non-empty event array, and contain every
/// span kind a traced fleet run deterministically produces.
/// Shape-dependent (`peel_gemm`) and scheduler-race-dependent
/// (`steal`) kinds are reported but not required.
fn trace_check(path: &str) -> Result<String, Vec<String>> {
    use fmm_trace::SpanKind;

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return Err(vec![format!("{path}: unreadable: {e}")]),
    };
    let value: serde::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("{path}: not valid JSON: {e}")]),
    };
    // Our exporter writes the bare-array form; the object-with-
    // traceEvents form (what a Perfetto re-save produces) also passes.
    let events = match &value {
        serde::Value::Array(events) => events,
        serde::Value::Object(fields) => {
            match fields
                .iter()
                .find(|(k, _)| k == "traceEvents")
                .map(|(_, v)| v)
            {
                Some(serde::Value::Array(events)) => events,
                _ => return Err(vec![format!("{path}: missing `traceEvents` array")]),
            }
        }
        _ => return Err(vec![format!("{path}: expected a Chrome trace event array")]),
    };
    if events.is_empty() {
        return Err(vec![format!("{path}: trace contains no events")]);
    }

    let mut failures = Vec::new();
    let mut counts: Vec<(SpanKind, u64)> = SpanKind::ALL.iter().map(|&k| (k, 0u64)).collect();
    let mut processes = std::collections::BTreeSet::new();
    for ev in events {
        let name = match ev.get("name") {
            Some(serde::Value::Str(s)) => s.as_str(),
            _ => {
                failures.push(format!("{path}: event without a string `name`"));
                continue;
            }
        };
        if name == "process_name" {
            if let Some(serde::Value::Str(label)) = ev.get("args").and_then(|args| args.get("name"))
            {
                processes.insert(label.clone());
            }
        }
        if let Some(kind) = SpanKind::from_name(name) {
            counts
                .iter_mut()
                .find(|(k, _)| *k == kind)
                .expect("counts cover all kinds")
                .1 += 1;
        }
    }

    let optional = [SpanKind::PeelGemm, SpanKind::Steal];
    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "{path}: {} events from {} process(es): {}",
        events.len(),
        processes.len(),
        processes.iter().cloned().collect::<Vec<_>>().join(", ")
    );
    for (kind, n) in &counts {
        let required = !optional.contains(kind);
        let _ = writeln!(
            summary,
            "  {:<20} {n:>7}{}",
            kind.name(),
            if required { "" } else { "  (optional)" }
        );
        if required && *n == 0 {
            failures.push(format!(
                "{path}: no `{}` spans — a traced fleet run must produce them",
                kind.name()
            ));
        }
    }

    if failures.is_empty() {
        let _ = write!(summary, "trace-check: OK");
        Ok(summary)
    } else {
        Err(failures)
    }
}
