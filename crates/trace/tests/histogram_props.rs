//! Property tests for the log-bucketed histogram: merge is
//! associative and commutative, bucket bounds are monotone, quantiles
//! stay within the documented relative error bound of the exact
//! sample quantile, and JSON round-trips bitwise.

use fmm_trace::{
    bucket_hi, bucket_index, bucket_lo, percentile_rank, Histogram, HistogramRow, NUM_BUCKETS,
    RELATIVE_ERROR_BOUND,
};
use proptest::prelude::*;

/// Deterministic value stream (SplitMix64) so each case is a
/// reproducible multiset of latencies spanning ns..minutes.
fn values(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        // Skew towards realistic latencies: modulo a power that
        // varies by sample, covering every octave up to ~2^40.
        out.push(z % (1u64 << (8 + (z % 33))));
    }
    out
}

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative_and_associative(sa in 0u64..1000, sb in 0u64..1000, sc in 0u64..1000) {
        let (a, b, c) = (hist_of(&values(sa, 50)), hist_of(&values(sb, 80)), hist_of(&values(sc, 30)));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert(v in 0u64..u64::MAX, w in 0u64..u64::MAX) {
        let (lo_v, hi_v) = (v.min(w), v.max(w));
        prop_assert!(bucket_index(lo_v) <= bucket_index(hi_v));
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lo(i) <= v && v <= bucket_hi(i));
    }

    #[test]
    fn quantile_within_bucket_error_bound(seed in 0u64..2000, n in 1usize..400, qi in 0u32..1001) {
        let q = qi as f64 / 1000.0;
        let vals = values(seed, n);
        let h = hist_of(&vals);
        let mut sorted = vals;
        sorted.sort_unstable();
        let exact = sorted[percentile_rank(sorted.len(), q).unwrap()];
        let est = h.quantile(q);
        let bound = (exact as f64 * RELATIVE_ERROR_BOUND) as u64 + 1;
        prop_assert!(
            est.abs_diff(exact) <= bound,
            "q={} est={} exact={} bound={}", q, est, exact, bound
        );
    }

    #[test]
    fn json_roundtrips_bitwise(seed in 0u64..2000, n in 0usize..200) {
        let h = hist_of(&values(seed, n));
        let back = Histogram::from_json(&h.to_json()).unwrap();
        prop_assert_eq!(&back, &h);
        // Quantiles survive the trip too (same buckets, same min/max).
        prop_assert_eq!(back.quantile(0.5), h.quantile(0.5));
        prop_assert_eq!(back.quantile(0.999), h.quantile(0.999));
        let row = HistogramRow { label: "p97-128/f64".to_string(), hist: h };
        let row_back: HistogramRow = serde_json::from_str(
            &serde_json::to_string_pretty(&row).unwrap()
        ).unwrap();
        prop_assert_eq!(row_back, row);
    }

    #[test]
    fn merge_distributes_over_quantile_support(sa in 0u64..1000, sb in 0u64..1000) {
        // A merged histogram's quantile equals the quantile of a
        // histogram built from the concatenated values: bucketing
        // loses *where* in a bucket a value fell, never *which*
        // bucket, so merge introduces no additional error.
        let (va, vb) = (values(sa, 60), values(sb, 40));
        let mut merged = hist_of(&va);
        merged.merge(&hist_of(&vb));
        let mut all = va;
        all.extend_from_slice(&vb);
        let direct = hist_of(&all);
        prop_assert_eq!(&merged, &direct);
    }
}
