//! Trace export: Chrome trace-event JSON and text timelines.

use crate::{process_label, snapshot_tracks, Record, SpanKind};

/// Snapshot of one thread's ring buffer, oldest record first.
#[derive(Debug, Clone)]
pub struct TrackSnapshot {
    /// Thread label (see [`crate::set_thread_label`]).
    pub label: String,
    /// Stable per-process track id (the Chrome `tid`).
    pub tid: u64,
    /// Records that were overwritten by ring wraparound.
    pub dropped: u64,
    /// Surviving records in chronological push order.
    pub records: Vec<Record>,
}

/// A collected trace: every non-empty track in this process.
#[derive(Debug, Clone)]
pub struct TraceSink {
    /// Process label (see [`crate::set_process_label`]).
    pub process_label: String,
    /// OS process id (the Chrome `pid`).
    pub pid: u64,
    /// Non-empty thread tracks.
    pub tracks: Vec<TrackSnapshot>,
}

/// Format epoch-nanoseconds as a Chrome `ts` microsecond value with
/// exact sub-microsecond digits (integer math — no f64 rounding of
/// large epoch offsets).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceSink {
    /// Snapshot the current process's rings (they keep recording; use
    /// [`crate::reset`] for disjoint capture windows).
    pub fn collect() -> TraceSink {
        TraceSink {
            process_label: process_label(),
            pid: std::process::id() as u64,
            tracks: snapshot_tracks(),
        }
    }

    /// Total records of a given kind across all tracks.
    pub fn count(&self, kind: SpanKind) -> u64 {
        self.tracks
            .iter()
            .map(|t| t.records.iter().filter(|r| r.kind == kind).count() as u64)
            .sum()
    }

    /// Total nanoseconds per kind across all tracks (instant events
    /// contribute zero).
    pub fn time_share(&self) -> Vec<(SpanKind, u64)> {
        SpanKind::ALL
            .into_iter()
            .map(|kind| {
                let total = self
                    .tracks
                    .iter()
                    .flat_map(|t| &t.records)
                    .filter(|r| r.kind == kind)
                    .map(|r| r.t_end - r.t_start)
                    .sum();
                (kind, total)
            })
            .collect()
    }

    /// Percentage of leaf work time (gemm + peel + additions +
    /// combine) spent in each leaf kind — the Fig. 4 decomposition.
    /// Empty when no leaf work was recorded.
    pub fn work_share(&self) -> Vec<(SpanKind, f64)> {
        let shares: Vec<(SpanKind, u64)> = self
            .time_share()
            .into_iter()
            .filter(|(k, _)| k.is_leaf_work())
            .collect();
        let total: u64 = shares.iter().map(|(_, ns)| ns).sum();
        if total == 0 {
            return Vec::new();
        }
        shares
            .into_iter()
            .map(|(k, ns)| (k, 100.0 * ns as f64 / total as f64))
            .collect()
    }

    /// Render Chrome trace-event JSON: a flat array of complete (`X`)
    /// and instant (`i`) events plus process/thread metadata, loadable
    /// in Perfetto or `chrome://tracing`. Timestamps are microseconds
    /// since the Unix epoch, so arrays from different processes can be
    /// concatenated (see [`TraceSink::merge_chrome_json`]) into one
    /// aligned multi-process trace.
    pub fn export_chrome_json(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        parts.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            self.pid,
            esc(&self.process_label)
        ));
        for track in &self.tracks {
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                self.pid,
                track.tid,
                esc(&track.label)
            ));
            for r in &track.records {
                if r.kind.is_instant() || r.t_end == r.t_start {
                    parts.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"fmm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"payload\":{}}}}}",
                        r.kind.name(),
                        us(r.t_start),
                        self.pid,
                        track.tid,
                        r.payload
                    ));
                } else {
                    parts.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"fmm\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"payload\":{}}}}}",
                        r.kind.name(),
                        us(r.t_start),
                        us(r.t_end - r.t_start),
                        self.pid,
                        track.tid,
                        r.payload
                    ));
                }
            }
        }
        format!("[\n{}\n]\n", parts.join(",\n"))
    }

    /// Concatenate several Chrome trace JSON arrays (as produced by
    /// [`TraceSink::export_chrome_json`], possibly by different
    /// processes) into one. Textual splice — event timestamps are
    /// preserved exactly. Errors on inputs that are not JSON arrays.
    pub fn merge_chrome_json(parts: &[String]) -> Result<String, String> {
        let mut bodies = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let t = part.trim();
            let inner = t
                .strip_prefix('[')
                .and_then(|t| t.strip_suffix(']'))
                .ok_or_else(|| format!("trace part {i} is not a JSON array"))?
                .trim();
            if !inner.is_empty() {
                bodies.push(inner.to_string());
            }
        }
        Ok(format!("[\n{}\n]\n", bodies.join(",\n")))
    }

    /// Render a per-track text timeline. Each track is a `width`-cell
    /// bar over the sink's full time range; a cell shows the kind that
    /// dominated it (`G` base gemm, `g` peel gemm, `a` additions, `c`
    /// combine, `p` plan, `w` workspace, `R` request, `d`/`x`/`e` RPC
    /// decode/execute/encode, `f` router forward, `_` parked, `.`
    /// idle). The footer reports per-track utilization (busy time /
    /// wall, parked excluded) and the overall gemm-vs-addition work
    /// share.
    pub fn timeline(&self, width: usize) -> String {
        let width = width.max(8);
        let spans: Vec<(&TrackSnapshot, &Record)> = self
            .tracks
            .iter()
            .flat_map(|t| t.records.iter().map(move |r| (t, r)))
            .collect();
        let Some(t0) = spans.iter().map(|(_, r)| r.t_start).min() else {
            return "timeline: no records\n".to_string();
        };
        let t1 = spans
            .iter()
            .map(|(_, r)| r.t_end)
            .max()
            .unwrap()
            .max(t0 + 1);
        let cell_ns = ((t1 - t0) as f64 / width as f64).max(1.0);
        let mut out = String::new();
        out.push_str(&format!(
            "timeline: {} tracks over {:.3} ms ({} = 1 cell ≈ {:.1} µs)\n",
            self.tracks.len(),
            (t1 - t0) as f64 / 1e6,
            width,
            cell_ns / 1e3,
        ));
        let label_w = self
            .tracks
            .iter()
            .map(|t| t.label.len())
            .max()
            .unwrap_or(0)
            .min(24);
        for track in &self.tracks {
            // Dominant kind per cell by overlapped nanoseconds;
            // shorter (inner) spans win ties so leaves show through
            // enclosing request spans.
            let mut cells: Vec<[u64; SpanKind::ALL.len()]> = vec![[0; SpanKind::ALL.len()]; width];
            for r in &track.records {
                if r.t_end == r.t_start {
                    continue;
                }
                let c0 = ((r.t_start - t0) as f64 / cell_ns) as usize;
                let c1 = (((r.t_end - t0) as f64 / cell_ns) as usize).min(width - 1);
                for (c, cell) in cells.iter_mut().enumerate().take(c1 + 1).skip(c0) {
                    let lo = t0 as f64 + c as f64 * cell_ns;
                    let hi = lo + cell_ns;
                    let overlap = (r.t_end as f64).min(hi) - (r.t_start as f64).max(lo);
                    if overlap > 0.0 {
                        cell[r.kind as usize] += overlap as u64 + 1;
                    }
                }
            }
            let bar: String = cells
                .iter()
                .map(|cell| {
                    // Prefer leaf work kinds over enclosing spans.
                    let pick = |kinds: &[SpanKind]| {
                        kinds
                            .iter()
                            .copied()
                            .filter(|&k| cell[k as usize] > 0)
                            .max_by_key(|&k| cell[k as usize])
                    };
                    let leaf = pick(&[
                        SpanKind::BaseGemm,
                        SpanKind::PeelGemm,
                        SpanKind::Additions,
                        SpanKind::Combine,
                    ]);
                    let kind = leaf.or_else(|| pick(&SpanKind::ALL));
                    match kind {
                        Some(SpanKind::BaseGemm) => 'G',
                        Some(SpanKind::PeelGemm) => 'g',
                        Some(SpanKind::Additions) => 'a',
                        Some(SpanKind::Combine) => 'c',
                        Some(SpanKind::PlanLookup) => 'p',
                        Some(SpanKind::WorkspaceCheckout) => 'w',
                        Some(SpanKind::Request) => 'R',
                        Some(SpanKind::RpcDecode) => 'd',
                        Some(SpanKind::RpcExecute) => 'x',
                        Some(SpanKind::RpcEncode) => 'e',
                        Some(SpanKind::RouterForward) => 'f',
                        Some(SpanKind::Park) => '_',
                        Some(SpanKind::Steal) => 's',
                        None => '.',
                    }
                })
                .collect();
            let busy = busy_ns(&track.records);
            out.push_str(&format!(
                "  {:label_w$} |{bar}| {:5.1}% busy, {} spans{}\n",
                &track.label[..track.label.len().min(24)],
                100.0 * busy as f64 / (t1 - t0) as f64,
                track.records.len(),
                if track.dropped > 0 {
                    format!(" ({} dropped)", track.dropped)
                } else {
                    String::new()
                },
            ));
        }
        let shares = self.work_share();
        if !shares.is_empty() {
            let line = shares
                .iter()
                .map(|(k, pct)| format!("{} {pct:.1}%", k.name()))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("  work share: {line}\n"));
        }
        out
    }
}

/// Union length of non-park, non-instant span intervals.
fn busy_ns(records: &[Record]) -> u64 {
    let mut ivals: Vec<(u64, u64)> = records
        .iter()
        .filter(|r| r.kind != SpanKind::Park && r.t_end > r.t_start)
        .map(|r| (r.t_start, r.t_end))
        .collect();
    ivals.sort_unstable();
    let mut busy = 0;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in ivals {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                busy += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        busy += ce - cs;
    }
    busy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: SpanKind, t_start: u64, t_end: u64) -> Record {
        Record {
            kind,
            t_start,
            t_end,
            payload: 0,
        }
    }

    fn sink_with(records: Vec<Record>) -> TraceSink {
        TraceSink {
            process_label: "test".to_string(),
            pid: 1,
            tracks: vec![TrackSnapshot {
                label: "t0".to_string(),
                tid: 0,
                dropped: 0,
                records,
            }],
        }
    }

    #[test]
    fn chrome_export_emits_metadata_and_events() {
        let sink = sink_with(vec![
            rec(SpanKind::BaseGemm, 1_000_000, 2_500_000),
            rec(SpanKind::Steal, 3_000_000, 3_000_000),
        ]);
        let json = sink.export_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"base_gemm\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1000.000"));
        assert!(json.contains("\"dur\":1500.000"));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn merge_splices_arrays_textually() {
        let a = sink_with(vec![rec(SpanKind::BaseGemm, 10, 20)]).export_chrome_json();
        let b = sink_with(vec![rec(SpanKind::Combine, 30, 40)]).export_chrome_json();
        let merged = TraceSink::merge_chrome_json(&[a, b]).unwrap();
        assert!(merged.contains("base_gemm"));
        assert!(merged.contains("combine"));
        assert!(merged.trim().starts_with('['));
        assert!(merged.trim().ends_with(']'));
        assert!(TraceSink::merge_chrome_json(&["nope".to_string()]).is_err());
    }

    #[test]
    fn timeline_reports_utilization_and_work_share() {
        // 0..100µs wall: gemm 0..60µs, additions 60..80µs, idle after.
        let sink = sink_with(vec![
            rec(SpanKind::BaseGemm, 0, 60_000),
            rec(SpanKind::Additions, 60_000, 80_000),
        ]);
        let text = sink.timeline(10);
        assert!(text.contains("t0"), "{text}");
        assert!(text.contains("G"), "{text}");
        assert!(text.contains("work share"), "{text}");
        let shares = sink.work_share();
        let gemm = shares
            .iter()
            .find(|(k, _)| *k == SpanKind::BaseGemm)
            .unwrap()
            .1;
        assert!((gemm - 75.0).abs() < 1.0, "gemm share {gemm}");
        // Nested request spans don't inflate the work share.
        let mut nested = sink.clone();
        nested.tracks[0]
            .records
            .push(rec(SpanKind::Request, 0, 80_000));
        let gemm2 = nested
            .work_share()
            .iter()
            .find(|(k, _)| *k == SpanKind::BaseGemm)
            .unwrap()
            .1;
        assert!((gemm2 - 75.0).abs() < 1.0);
    }

    #[test]
    fn busy_union_merges_overlaps_and_skips_park() {
        let busy = busy_ns(&[
            rec(SpanKind::BaseGemm, 0, 100),
            rec(SpanKind::Request, 50, 150),
            rec(SpanKind::Park, 200, 1000),
            rec(SpanKind::Combine, 300, 350),
        ]);
        assert_eq!(busy, 200);
    }

    #[test]
    fn empty_sink_renders_gracefully() {
        let sink = TraceSink {
            process_label: "p".into(),
            pid: 0,
            tracks: Vec::new(),
        };
        assert_eq!(sink.timeline(40), "timeline: no records\n");
        let json = sink.export_chrome_json();
        assert!(json.contains("process_name"));
    }
}
