//! `fmm-trace`: always-on observability for the fast-matmul stack.
//!
//! Three pieces, all safe Rust with no dependencies beyond the
//! vendored `serde` value tree:
//!
//! 1. **Span/event recorder** — per-thread fixed-capacity ring buffers
//!    of `(span_kind, t_start, t_end, payload)` records. The hot path
//!    is gated on one [`AtomicBool`] (relaxed load); when tracing is
//!    disabled, [`span_start`] returns `0` and [`span_end`] is a
//!    branch on that zero — no clock read, no buffer write, no
//!    allocation. Callers in per-leaf loops hoist the gate once (see
//!    [`now_if`]) so the leaf loop carries only a plain bool test.
//!    Each thread claims its own ring on first record, so recording
//!    takes an uncontended mutex — no cross-thread traffic.
//! 2. **Export** — [`TraceSink::collect`] snapshots every ring;
//!    [`TraceSink::export_chrome_json`] renders Chrome trace-event
//!    JSON loadable in Perfetto / `chrome://tracing`, and
//!    [`TraceSink::timeline`] renders a per-worker text timeline with
//!    utilization and the gemm-vs-addition time share (a software
//!    re-instrumentation of the paper's Fig. 4 schedule comparison).
//! 3. **Histograms** ([`Histogram`], [`HistogramSet`]) — mergeable
//!    log-bucketed latency histograms with the workspace's single
//!    percentile rule.
//!
//! Timestamps are nanoseconds anchored to the Unix epoch at process
//! trace-init (monotonic within a process via [`std::time::Instant`];
//! cross-process alignment is wall-clock accurate, which is what a
//! merged multi-process Chrome trace needs).

#![forbid(unsafe_code)]

mod histogram;
mod sink;

pub use histogram::{
    bucket_hi, bucket_index, bucket_lo, bucket_mid, merge_rows, merged_total, percentile_rank,
    percentile_sorted, Histogram, HistogramRow, HistogramSet, NUM_BUCKETS, RELATIVE_ERROR_BOUND,
    SUB_BUCKETS, SUB_BUCKET_BITS,
};
pub use sink::{TraceSink, TrackSnapshot};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime};

/// Records a ring can hold before the oldest are overwritten.
pub const RING_CAPACITY: usize = 4096;
/// Maximum distinct thread tracks; later threads share the last track
/// (mutex-protected, so sharing is safe, just less legible).
pub const MAX_TRACKS: usize = 128;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span recording on or off, process-wide. Histograms
/// ([`HistogramSet`]) are independent of this gate — they are
/// always-on by design.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Current state of the recording gate.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct Epoch {
    instant: Instant,
    unix_ns: u64,
}

static EPOCH: OnceLock<Epoch> = OnceLock::new();

fn epoch() -> &'static Epoch {
    EPOCH.get_or_init(|| Epoch {
        instant: Instant::now(),
        unix_ns: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0),
    })
}

/// The trace clock: nanoseconds since the Unix epoch, monotonic
/// within the process. This is the only sanctioned timing source for
/// executor/gemm hot paths (enforced by the xtask lint).
#[inline]
pub fn now_ns() -> u64 {
    let e = epoch();
    e.unix_ns + e.instant.elapsed().as_nanos() as u64
}

/// `now_ns()` when `flag` is set, else `0` — for call sites that
/// hoisted the [`enabled`] check out of a loop. A zero start
/// timestamp makes the matching [`span_end`] a no-op.
#[inline(always)]
pub fn now_if(flag: bool) -> u64 {
    if flag {
        now_ns()
    } else {
        0
    }
}

/// Start a span: reads the clock only when tracing is enabled.
#[inline(always)]
pub fn span_start() -> u64 {
    now_if(enabled())
}

/// Finish a span started at `t_start` (from [`span_start`] /
/// [`now_if`]); a zero `t_start` means recording was off at span
/// start and the call is a no-op.
#[inline]
pub fn span_end(kind: SpanKind, t_start: u64, payload: u64) {
    if t_start == 0 {
        return;
    }
    push(Record {
        kind,
        t_start,
        t_end: now_ns(),
        payload,
    });
}

/// Record an instant event (zero-duration span) if tracing is enabled.
#[inline]
pub fn event(kind: SpanKind, payload: u64) {
    if !enabled() {
        return;
    }
    let t = now_ns();
    push(Record {
        kind,
        t_start: t,
        t_end: t,
        payload,
    });
}

/// What a span measures. Kinds cover the whole stack: engine request
/// anatomy (plan lookup, workspace checkout), executor recursion
/// (S/T additions, base-case and peel gemms, M-combine), runtime
/// scheduler events (steal, park), and serve RPC phases
/// (decode/execute/encode, router forward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// Engine plan-cache lookup (hit or miss+plan).
    PlanLookup,
    /// Engine workspace pool checkout.
    WorkspaceCheckout,
    /// S/T operand formation (the paper's matrix additions).
    Additions,
    /// Base-case gemm at a recursion leaf.
    BaseGemm,
    /// Dynamic-peeling strip gemm (§3.5 border handling).
    PeelGemm,
    /// M-to-C output combination.
    Combine,
    /// Scheduler: a worker stole a task (instant; payload = victim).
    Steal,
    /// Scheduler: a worker parked waiting for work.
    Park,
    /// Whole engine request (multiply through `FmmEngine`).
    Request,
    /// Shard RPC: decode request matrices off the wire.
    RpcDecode,
    /// Shard RPC: execute the multiply.
    RpcExecute,
    /// Shard RPC: encode the result.
    RpcEncode,
    /// Router: forward a request to a shard (includes retries).
    RouterForward,
}

impl SpanKind {
    /// Every kind, in declaration order.
    pub const ALL: [SpanKind; 13] = [
        SpanKind::PlanLookup,
        SpanKind::WorkspaceCheckout,
        SpanKind::Additions,
        SpanKind::BaseGemm,
        SpanKind::PeelGemm,
        SpanKind::Combine,
        SpanKind::Steal,
        SpanKind::Park,
        SpanKind::Request,
        SpanKind::RpcDecode,
        SpanKind::RpcExecute,
        SpanKind::RpcEncode,
        SpanKind::RouterForward,
    ];

    /// Stable snake_case name (the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::PlanLookup => "plan_lookup",
            SpanKind::WorkspaceCheckout => "workspace_checkout",
            SpanKind::Additions => "additions",
            SpanKind::BaseGemm => "base_gemm",
            SpanKind::PeelGemm => "peel_gemm",
            SpanKind::Combine => "combine",
            SpanKind::Steal => "steal",
            SpanKind::Park => "park",
            SpanKind::Request => "request",
            SpanKind::RpcDecode => "rpc_decode",
            SpanKind::RpcExecute => "rpc_execute",
            SpanKind::RpcEncode => "rpc_encode",
            SpanKind::RouterForward => "router_forward",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// True for zero-duration scheduler events.
    pub fn is_instant(self) -> bool {
        matches!(self, SpanKind::Steal)
    }

    /// True for the leaf work kinds whose durations partition actual
    /// compute (the Fig. 4 decomposition): additions, base/peel gemm,
    /// combine. Enclosing spans (request, RPC phases) double-count
    /// leaf time and are excluded from time-share accounting.
    pub fn is_leaf_work(self) -> bool {
        matches!(
            self,
            SpanKind::Additions | SpanKind::BaseGemm | SpanKind::PeelGemm | SpanKind::Combine
        )
    }
}

/// One recorded span or event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// What was measured.
    pub kind: SpanKind,
    /// Start, ns since Unix epoch (trace clock).
    pub t_start: u64,
    /// End, ns since Unix epoch; equals `t_start` for instant events.
    pub t_end: u64,
    /// Kind-specific detail (victim index, flop count, byte count…).
    pub payload: u64,
}

struct Track {
    label: String,
    records: Vec<Record>,
    /// Next overwrite position once the ring is full.
    next: usize,
    /// Total records ever pushed (dropped = total - len).
    total: u64,
}

fn tracks() -> &'static Vec<Mutex<Track>> {
    static TRACKS: OnceLock<Vec<Mutex<Track>>> = OnceLock::new();
    TRACKS.get_or_init(|| {
        (0..MAX_TRACKS)
            .map(|i| {
                Mutex::new(Track {
                    label: format!("thread-{i}"),
                    records: Vec::new(),
                    next: 0,
                    total: 0,
                })
            })
            .collect()
    })
}

static NEXT_TRACK: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TRACK: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn claim_track() -> usize {
    TRACK.with(|t| {
        let mut idx = t.get();
        if idx == usize::MAX {
            idx = NEXT_TRACK
                .fetch_add(1, Ordering::Relaxed)
                .min(MAX_TRACKS - 1);
            t.set(idx);
            let mut track = tracks()[idx].lock().unwrap_or_else(|e| e.into_inner());
            if track.records.capacity() == 0 {
                track.records.reserve_exact(RING_CAPACITY);
            }
        }
        idx
    })
}

/// Name this thread's track in exported timelines (e.g.
/// `fmm-worker-3`, `router`). Claims the track if needed.
pub fn set_thread_label(label: &str) {
    let idx = claim_track();
    let mut track = tracks()[idx].lock().unwrap_or_else(|e| e.into_inner());
    track.label = label.to_string();
}

fn push(rec: Record) {
    let idx = claim_track();
    let mut track = tracks()[idx].lock().unwrap_or_else(|e| e.into_inner());
    if track.records.len() < RING_CAPACITY {
        track.records.push(rec);
    } else {
        let n = track.next;
        track.records[n] = rec;
        track.next = (n + 1) % RING_CAPACITY;
    }
    track.total += 1;
}

/// Clear every ring (labels are kept). Used by tests and by tools
/// that capture disjoint windows.
pub fn reset() {
    for track in tracks() {
        let mut t = track.lock().unwrap_or_else(|e| e.into_inner());
        t.records.clear();
        t.next = 0;
        t.total = 0;
    }
}

static PROCESS_LABEL: Mutex<Option<String>> = Mutex::new(None);

/// Name this process in exported traces (e.g. `shard-0`, `loadgen`).
pub fn set_process_label(label: &str) {
    *PROCESS_LABEL.lock().unwrap_or_else(|e| e.into_inner()) = Some(label.to_string());
}

pub(crate) fn process_label() -> String {
    PROCESS_LABEL
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(|| format!("pid-{}", std::process::id()))
}

pub(crate) fn snapshot_tracks() -> Vec<TrackSnapshot> {
    let mut out = Vec::new();
    for (tid, track) in tracks().iter().enumerate() {
        let t = track.lock().unwrap_or_else(|e| e.into_inner());
        if t.records.is_empty() {
            continue;
        }
        // Ring order: oldest first.
        let mut records = Vec::with_capacity(t.records.len());
        records.extend_from_slice(&t.records[t.next..]);
        records.extend_from_slice(&t.records[..t.next]);
        out.push(TrackSnapshot {
            label: t.label.clone(),
            tid: tid as u64,
            dropped: t.total - t.records.len() as u64,
            records,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // All recorder tests share process-global rings; serialize them.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    #[test]
    fn disabled_recorder_writes_nothing() {
        with_tracing(|| {
            set_enabled(false);
            let t = span_start();
            assert_eq!(t, 0);
            span_end(SpanKind::BaseGemm, t, 1);
            event(SpanKind::Steal, 0);
            assert!(TraceSink::collect().tracks.is_empty());
        });
    }

    #[test]
    fn spans_and_events_are_recorded_in_order() {
        with_tracing(|| {
            let t = span_start();
            assert!(t > 0);
            span_end(SpanKind::BaseGemm, t, 99);
            event(SpanKind::Steal, 7);
            let sink = TraceSink::collect();
            assert_eq!(sink.tracks.len(), 1);
            let recs = &sink.tracks[0].records;
            assert_eq!(recs.len(), 2);
            assert_eq!(recs[0].kind, SpanKind::BaseGemm);
            assert!(recs[0].t_end >= recs[0].t_start);
            assert_eq!(recs[0].payload, 99);
            assert_eq!(recs[1].kind, SpanKind::Steal);
            assert_eq!(recs[1].t_start, recs[1].t_end);
        });
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        with_tracing(|| {
            for i in 0..(RING_CAPACITY as u64 + 10) {
                event(SpanKind::Steal, i);
            }
            let sink = TraceSink::collect();
            let track = &sink.tracks[0];
            assert_eq!(track.records.len(), RING_CAPACITY);
            assert_eq!(track.dropped, 10);
            // Oldest-first order survived the wraparound.
            assert_eq!(track.records[0].payload, 10);
            assert_eq!(
                track.records[RING_CAPACITY - 1].payload,
                RING_CAPACITY as u64 + 9
            );
        });
    }

    #[test]
    fn clock_is_monotonic_and_epoch_anchored() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        // Anchored to the Unix epoch: after 2020, before 2100.
        assert!(a > 1_577_836_800_000_000_000);
        assert!(a < 4_102_444_800_000_000_000);
        assert_eq!(now_if(false), 0);
        assert!(now_if(true) > 0);
    }

    #[test]
    fn span_kind_names_roundtrip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("nope"), None);
    }

    #[test]
    fn thread_labels_stick() {
        with_tracing(|| {
            std::thread::spawn(|| {
                set_thread_label("helper");
                event(SpanKind::Park, 0);
            })
            .join()
            .unwrap();
            let sink = TraceSink::collect();
            assert!(sink.tracks.iter().any(|t| t.label == "helper"));
        });
    }
}
