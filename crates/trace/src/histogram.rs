//! Log-bucketed latency histograms, HDR-style.
//!
//! Values (nanoseconds, but any `u64` works) are bucketed into 64
//! power-of-two octaves, each split into [`SUB_BUCKETS`] linear
//! sub-buckets: bucket boundaries grow geometrically while staying
//! within a bounded *relative* width, so a quantile read off the
//! histogram is within [`RELATIVE_ERROR_BOUND`] of the exact sample
//! quantile (values below `2 * SUB_BUCKETS` are bucketed exactly).
//! Histograms are mergeable (bucket-wise addition — associative and
//! commutative, so shard snapshots can be combined in any order) and
//! round-trip through JSON with a sparse `[index, count]` bucket
//! encoding.
//!
//! This module is also the workspace's *only* percentile rule:
//! [`percentile_rank`] defines the rank for a given quantile, and both
//! [`percentile_sorted`] (exact, over raw samples) and
//! [`Histogram::quantile`] (approximate, over buckets) apply it.

use serde::{Deserialize, Serialize, Value};
use std::sync::Mutex;

/// log2 of the number of linear sub-buckets per power-of-two octave.
pub const SUB_BUCKET_BITS: u32 = 2;
/// Linear sub-buckets per octave (4).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Total bucket count: 64 octaves × `SUB_BUCKETS` (the top octaves of
/// the full `u64` range alias into the tail, which never matters for
/// nanosecond latencies).
pub const NUM_BUCKETS: usize = 64 * SUB_BUCKETS;
/// Worst-case relative width of a bucket: a value `v` and the bucket
/// representative returned by [`Histogram::quantile`] differ by at
/// most `RELATIVE_ERROR_BOUND * v` (plus one for integer rounding).
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB_BUCKETS as f64;

/// Bucket index for a value: exact below `2 * SUB_BUCKETS`, then the
/// octave of the value's most significant bit refined by the next
/// `SUB_BUCKET_BITS` bits.
pub fn bucket_index(v: u64) -> usize {
    if v < (2 * SUB_BUCKETS) as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= SUB_BUCKET_BITS + 1
    let shift = e - SUB_BUCKET_BITS;
    let sub = ((v >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
    (e as usize + 1 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS + sub
}

/// Smallest value mapping to `index` (inverse of [`bucket_index`]).
pub fn bucket_lo(index: usize) -> u64 {
    if index < 2 * SUB_BUCKETS {
        return index as u64;
    }
    let octave = index / SUB_BUCKETS; // >= 2
    let sub = (index % SUB_BUCKETS) as u64;
    let e = octave as u32 + SUB_BUCKET_BITS - 1;
    if e >= 64 {
        // Indices past bucket_index(u64::MAX) are unreachable.
        return u64::MAX;
    }
    (1u64 << e) + (sub << (e - SUB_BUCKET_BITS))
}

/// Largest value mapping to `index`.
pub fn bucket_hi(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    match bucket_lo(index + 1) {
        u64::MAX => u64::MAX,
        lo_next => lo_next - 1,
    }
}

/// Midpoint representative of a bucket — what quantile queries return.
pub fn bucket_mid(index: usize) -> u64 {
    let lo = bucket_lo(index);
    let hi = bucket_hi(index);
    lo + (hi - lo) / 2
}

/// The workspace percentile rule: for `len` sorted samples, quantile
/// `q` is the sample at rank `min(floor(len * q), len - 1)`. `None`
/// for an empty sample set.
pub fn percentile_rank(len: usize, q: f64) -> Option<usize> {
    if len == 0 {
        return None;
    }
    Some(((len as f64 * q) as usize).min(len - 1))
}

/// Exact percentile of an ascending-sorted slice under
/// [`percentile_rank`]; `0.0` for an empty slice (so latency reports
/// over zero completed requests render as zeros instead of panicking).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    match percentile_rank(sorted.len(), q) {
        Some(rank) => sorted[rank],
        None => 0.0,
    }
}

/// A mergeable log-bucketed histogram of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty) — exact, not bucketed.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded value (`None` when empty) — exact, not bucketed.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Mean of recorded values, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile under the workspace [`percentile_rank`] rule, as the
    /// midpoint of the bucket holding that rank (clamped to the exact
    /// observed min/max, which the histogram tracks precisely). `0`
    /// when empty. Error bound: within [`RELATIVE_ERROR_BOUND`] of the
    /// exact sample quantile, plus one for integer rounding.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(rank) = percentile_rank(self.count as usize, q) else {
            return 0;
        };
        let mut seen: u64 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank as u64 {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Bucket-wise merge of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.count == 0 {
            self.min = u64::MAX;
            self.max = 0;
        }
    }

    /// Bucket-wise difference `self - earlier`, for reading the
    /// distribution of a window between two cumulative snapshots.
    /// Saturating: if `earlier` is not actually a prefix of `self`
    /// (e.g. a counter reset in between), excess counts clamp to zero
    /// rather than underflowing. Min/max of the window are not
    /// recoverable and fall back to the bucket bounds of the diff.
    pub fn saturating_diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (&a, &b)) in self.counts.iter().zip(&earlier.counts).enumerate() {
            let c = a.saturating_sub(b);
            if c > 0 {
                out.counts[i] = c;
                out.count += c;
                out.sum = out.sum.saturating_add(bucket_mid(i).saturating_mul(c));
                out.min = out.min.min(bucket_lo(i));
                out.max = out.max.max(bucket_hi(i));
            }
        }
        out
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Serialize to JSON (sparse bucket encoding).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("histogram serialization is infallible")
    }

    /// Parse a histogram back from [`Histogram::to_json`] output.
    pub fn from_json(text: &str) -> Result<Histogram, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl Serialize for Histogram {
    fn serialize_value(&self) -> Value {
        let buckets = self
            .nonzero_buckets()
            .map(|(i, c)| Value::Array(vec![Value::Num(i as f64), Value::Num(c as f64)]))
            .collect();
        Value::Object(vec![
            ("count".to_string(), Value::Num(self.count as f64)),
            ("sum".to_string(), Value::Num(self.sum as f64)),
            (
                "min".to_string(),
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Num(self.min as f64)
                },
            ),
            (
                "max".to_string(),
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Num(self.max as f64)
                },
            ),
            ("buckets".to_string(), Value::Array(buckets)),
        ])
    }
}

impl Deserialize for Histogram {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let field = |k: &str| {
            value
                .get(k)
                .ok_or_else(|| format!("histogram: missing field `{k}`"))
        };
        let mut h = Histogram::new();
        let count = u64::deserialize_value(field("count")?)?;
        h.sum = u64::deserialize_value(field("sum")?)?;
        let Value::Array(buckets) = field("buckets")? else {
            return Err("histogram: `buckets` must be an array".to_string());
        };
        for pair in buckets {
            let Value::Array(pair) = pair else {
                return Err("histogram: bucket entry must be [index, count]".to_string());
            };
            if pair.len() != 2 {
                return Err("histogram: bucket entry must be [index, count]".to_string());
            }
            let i = usize::deserialize_value(&pair[0])?;
            let c = u64::deserialize_value(&pair[1])?;
            if i >= NUM_BUCKETS {
                return Err(format!("histogram: bucket index {i} out of range"));
            }
            h.counts[i] += c;
            h.count += c;
        }
        if h.count != count {
            return Err(format!(
                "histogram: declared count {count} != bucket sum {}",
                h.count
            ));
        }
        match field("min")? {
            Value::Null => {}
            v => h.min = u64::deserialize_value(v)?,
        }
        match field("max")? {
            Value::Null => {}
            v => h.max = u64::deserialize_value(v)?,
        }
        if h.count == 0 {
            h.min = u64::MAX;
            h.max = 0;
            h.sum = 0;
        }
        Ok(h)
    }
}

/// One labeled histogram — the unit engine/fleet stats ship around.
/// Labels are `"<shape-class>/<dtype>"` by convention, but the type
/// does not interpret them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramRow {
    /// Free-form key (by convention `"<shape-class>/<dtype>"`).
    pub label: String,
    /// The distribution recorded under that key.
    pub hist: Histogram,
}

/// Merge `from` rows into `into`, matching by label (rows new to
/// `into` are appended; the result stays sorted by label).
pub fn merge_rows(into: &mut Vec<HistogramRow>, from: &[HistogramRow]) {
    for row in from {
        match into.iter_mut().find(|r| r.label == row.label) {
            Some(existing) => existing.hist.merge(&row.hist),
            None => into.push(row.clone()),
        }
    }
    into.sort_by(|a, b| a.label.cmp(&b.label));
}

/// Collapse labeled rows into one overall histogram.
pub fn merged_total(rows: &[HistogramRow]) -> Histogram {
    let mut out = Histogram::new();
    for row in rows {
        out.merge(&row.hist);
    }
    out
}

/// Thread-safe collection of labeled histograms for live recording
/// (engine request latencies, router forward latencies). A single
/// uncontended mutex: recording sites are millisecond-scale request
/// paths, not per-leaf hot loops.
#[derive(Debug, Default)]
pub struct HistogramSet {
    rows: Mutex<Vec<(String, Histogram)>>,
}

impl HistogramSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` under `label`, creating the row on first use.
    pub fn record(&self, label: &str, value: u64) {
        let mut rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
        match rows.iter_mut().find(|(l, _)| l == label) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                rows.push((label.to_string(), h));
            }
        }
    }

    /// Snapshot all rows, sorted by label.
    pub fn snapshot(&self) -> Vec<HistogramRow> {
        let rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<HistogramRow> = rows
            .iter()
            .map(|(label, hist)| HistogramRow {
                label: label.clone(),
                hist: hist.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.label.cmp(&b.label));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_bucket_exactly() {
        for v in 0..(2 * SUB_BUCKETS as u64) {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
            assert_eq!(bucket_hi(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Only indices up to bucket_index(u64::MAX) are reachable.
        for i in 0..bucket_index(u64::MAX) {
            let lo = bucket_lo(i);
            let hi = bucket_hi(i);
            assert!(lo <= hi, "bucket {i}: lo {lo} > hi {hi}");
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            assert_eq!(bucket_lo(i + 1), hi + 1);
        }
    }

    #[test]
    fn percentile_rule_matches_historical_behaviour() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&v, 0.50), 51.0);
        assert_eq!(percentile_sorted(&v, 0.99), 100.0);
        assert_eq!(percentile_sorted(&[7.0], 0.5), 7.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_rank(0, 0.5), None);
    }

    #[test]
    fn quantile_tracks_exact_within_bound() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| (i * i) % 100_000 + 1).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = sorted[percentile_rank(sorted.len(), q).unwrap()];
            let est = h.quantile(q);
            let bound = (exact as f64 * RELATIVE_ERROR_BOUND) as u64 + 1;
            assert!(
                est.abs_diff(exact) <= bound,
                "q={q}: est {est} vs exact {exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn diff_recovers_a_window() {
        let mut early = Histogram::new();
        early.record_n(100, 5);
        let mut late = early.clone();
        late.record_n(5000, 3);
        let window = late.saturating_diff(&early);
        assert_eq!(window.count(), 3);
        let est = window.quantile(0.5);
        assert!(est.abs_diff(5000) <= 5000 / SUB_BUCKETS as u64 + 1);
    }

    #[test]
    fn rows_merge_by_label() {
        let set = HistogramSet::new();
        set.record("b/f64", 10);
        set.record("a/f64", 20);
        set.record("a/f64", 30);
        let snap = set.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "a/f64");
        assert_eq!(snap[0].hist.count(), 2);
        let mut merged = snap.clone();
        merge_rows(&mut merged, &snap);
        assert_eq!(merged[0].hist.count(), 4);
        assert_eq!(merged_total(&merged).count(), 6);
        let row_json = serde_json::to_string_pretty(&snap).unwrap();
        let back: Vec<HistogramRow> = serde_json::from_str(&row_json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(Histogram::from_json("not json").is_err());
        assert!(Histogram::from_json("{\"count\": 3}").is_err());
        // Declared count disagreeing with bucket contents is caught.
        let mut h = Histogram::new();
        h.record(42);
        let json = h.to_json().replace("\"count\": 1", "\"count\": 2");
        assert!(Histogram::from_json(&json).is_err());
    }
}
