//! `fmm-serve`: a sharded multi-process serving tier in front of
//! [`fmm_core::FmmEngine`].
//!
//! The paper's single-process engine scales until one plan cache and
//! one worker pool saturate. This crate puts an IPC boundary in front
//! of it so a *fleet* of engine processes serves one workload:
//!
//! ```text
//!   client ──┐
//!   client ──┤   Unix socket    ┌────────┐  shape-hash   ┌─────────┐
//!   client ──┼──────────────────│ router │───────────────│ shard 0 │ FmmEngine
//!   client ──┘                  │        │──────┐        └─────────┘
//!                               └────────┘      │        ┌─────────┐
//!                            health / respawn / └────────│ shard 1 │ FmmEngine
//!                            retry-onto-sibling          └─────────┘
//! ```
//!
//! * [`wire`] — the length-prefixed binary protocol (version byte,
//!   request ids, dtype tags, row-major matrix frames, typed errors).
//! * [`shard`] — one process hosting an `FmmEngine` per dtype behind
//!   bounded admission control (`Busy` instead of unbounded queueing).
//! * [`fleet`] — shard-process lifecycle: spawn, health-gate, SIGKILL
//!   chaos hook, respawn, drain.
//! * [`router`] — deterministic `shape_hash % shards` placement (plan
//!   caches stay hot per shard), bounded retry-with-backoff onto
//!   siblings, automatic respawn of dead shards.
//! * [`client`] — [`ServeClient`]: sync multiply plus a pipelined
//!   batch mode.
//! * [`stats`] — per-shard [`ShardStatsReport`] and the router's
//!   aggregated [`FleetStats`] JSON snapshot.
//!
//! No external networking dependencies: transport is
//! `std::os::unix::net`, serialization is the explicit little-endian
//! wire format, and stats ride the vendored `serde_json`.

pub mod client;
pub mod fleet;
pub mod router;
pub mod shard;
pub mod stats;
pub mod wire;

pub use client::{HealthInfo, ServeClient, ServeError};
pub use fleet::{Fleet, ShardLauncher, ShardSpec, SHARD_WORKER_ARG};
pub use router::{router_main, start_router, RouterConfig, RunningRouter};
pub use shard::{shard_main, RunningShard, ShardConfig, ShardServer};
pub use stats::{FleetStats, RouterCounters, ShardSlotStats, ShardStatsReport};
pub use wire::{shape_hash, ErrorCode, Frame, WireDtype, WireError, WireScalar};

/// Re-exec hook for [`ShardLauncher::SelfExec`]: call this first in
/// `main` of any binary that spawns a self-exec'd fleet. When the
/// process was launched as a hidden shard worker
/// (`argv[1] == `[`SHARD_WORKER_ARG`]) this runs the shard server and
/// never returns; otherwise it does nothing.
pub fn maybe_run_shard_worker() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) != Some(SHARD_WORKER_ARG) {
        return;
    }
    let usage = || -> ! {
        eprintln!("usage: <exe> {SHARD_WORKER_ARG} <socket> <threads> <max_inflight>");
        std::process::exit(2);
    };
    if args.len() != 5 {
        usage();
    }
    let socket = std::path::PathBuf::from(&args[2]);
    let threads: usize = args[3].parse().unwrap_or_else(|_| usage());
    let max_inflight: usize = args[4].parse().unwrap_or_else(|_| usage());
    let cfg = ShardConfig::new(socket)
        .threads(threads)
        .max_inflight(max_inflight);
    match shard_main(cfg) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("shard worker failed: {e}");
            std::process::exit(1);
        }
    }
}
