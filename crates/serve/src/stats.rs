//! Fleet observability types: what one shard reports over the stats
//! RPC and what the router aggregates fleet-wide.
//!
//! Everything here serializes through the vendored serde (JSON), so a
//! `summarize`-style consumer — or an operator with `curl`-equivalent
//! tooling — reads one snapshot document for the whole fleet.

use fmm_core::EngineStats;
use fmm_trace::{merge_rows, merged_total, Histogram, HistogramRow};
use serde::{Deserialize, Serialize, Value};

/// One shard's self-report: serving-process counters plus the two
/// hosted engines' [`EngineStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStatsReport {
    /// Multiplies currently inflight (instantaneous queue depth).
    pub queue_depth: u64,
    /// Admission-control bound the shard enforces.
    pub max_inflight: u64,
    /// True once a drain was requested.
    pub draining: bool,
    /// Multiply requests completed successfully.
    pub served: u64,
    /// Multiply requests rejected with `Busy` by admission control.
    pub rejected_busy: u64,
    /// Requests rejected while draining.
    pub rejected_draining: u64,
    /// Connections dropped after a malformed frame.
    pub malformed: u64,
    /// The hosted f64 engine's counters.
    pub engine_f64: EngineStats,
    /// The hosted f32 engine's counters.
    pub engine_f32: EngineStats,
}

impl ShardStatsReport {
    /// Engine multiplies across both dtypes — the number the router's
    /// consistency check compares against its own per-shard forward
    /// counter.
    pub fn engine_multiplies(&self) -> u64 {
        self.engine_f64.multiplies + self.engine_f32.multiplies
    }

    /// Serialize as pretty-printed JSON (the stats-RPC payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parse a report previously produced by
    /// [`ShardStatsReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Router-side counters, monotonic since router start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterCounters {
    /// Multiply requests accepted from clients.
    pub requests: u64,
    /// Multiply requests completed back to clients.
    pub completions: u64,
    /// Requests that ultimately failed after all retries.
    pub failed: u64,
    /// Retry attempts performed (shard failure or backpressure).
    pub retries: u64,
    /// Shard processes respawned after a failure.
    pub respawns: u64,
    /// Busy/Draining responses propagated to clients.
    pub rejected: u64,
}

/// One shard slot as the router sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSlotStats {
    /// Slot index (stable across respawns).
    pub slot: usize,
    /// Did the slot answer its stats probe just now?
    pub healthy: bool,
    /// Respawns of this slot since router start.
    pub respawns: u64,
    /// Successful multiplies the router forwarded to the *current*
    /// incarnation of this slot.
    pub ok_since_spawn: u64,
    /// Successful multiplies across all incarnations of this slot.
    pub ok_total: u64,
    /// The shard's own report (`None` while the slot is down).
    pub report: Option<ShardStatsReport>,
}

impl Serialize for ShardSlotStats {
    fn serialize_value(&self) -> Value {
        let mut fields = vec![
            ("slot".to_string(), Value::Num(self.slot as f64)),
            ("healthy".to_string(), Value::Bool(self.healthy)),
            ("respawns".to_string(), Value::Num(self.respawns as f64)),
            (
                "ok_since_spawn".to_string(),
                Value::Num(self.ok_since_spawn as f64),
            ),
            ("ok_total".to_string(), Value::Num(self.ok_total as f64)),
        ];
        fields.push((
            "report".to_string(),
            match &self.report {
                Some(r) => r.serialize_value(),
                None => Value::Null,
            },
        ));
        Value::Object(fields)
    }
}

impl Deserialize for ShardSlotStats {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let field = |k: &str| value.get(k).ok_or_else(|| format!("missing field `{k}`"));
        Ok(ShardSlotStats {
            slot: usize::deserialize_value(field("slot")?)?,
            healthy: bool::deserialize_value(field("healthy")?)?,
            respawns: u64::deserialize_value(field("respawns")?)?,
            ok_since_spawn: u64::deserialize_value(field("ok_since_spawn")?)?,
            ok_total: u64::deserialize_value(field("ok_total")?)?,
            report: match field("report")? {
                Value::Null => None,
                other => Some(ShardStatsReport::deserialize_value(other)?),
            },
        })
    }
}

/// The router's one-document fleet snapshot: its own counters plus
/// every shard slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Number of shard slots.
    pub shards: u64,
    /// Router-side counters.
    pub router: RouterCounters,
    /// Per-slot view, index == slot.
    pub slots: Vec<ShardSlotStats>,
    /// Engine-side request latency histograms merged across every
    /// *live* shard engine (both dtypes; rows keyed
    /// `"<shape-class>/<dtype>"`). Histograms of killed incarnations
    /// die with their process — the router-side view below survives
    /// respawns.
    pub latency: Vec<HistogramRow>,
    /// Router-observed latency histograms of successful forwards
    /// (request read to shard reply, retries and backoff included) —
    /// the fleet's client-facing p50/p99/p999 source, immune to shard
    /// crashes.
    pub router_latency: Vec<HistogramRow>,
}

impl FleetStats {
    /// Serialize as pretty-printed JSON (what `fmm-router` serves on
    /// its stats RPC and `loadgen` prints).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet serialization is infallible")
    }

    /// Parse a snapshot previously produced by [`FleetStats::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Sum of engine-reported multiplies across live shards plus
    /// router-observed successes of dead/respawned incarnations. When
    /// no request is inflight this equals `router.completions`; the
    /// consistency check behind the fleet acceptance criterion.
    pub fn shard_multiplies(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| match &s.report {
                // A live incarnation reports its own engine counters;
                // completed work from earlier incarnations survives in
                // the router's per-slot total.
                Some(r) => r.engine_multiplies() + (s.ok_total - s.ok_since_spawn),
                None => s.ok_total,
            })
            .sum()
    }

    /// All engine-side latency rows collapsed into one histogram.
    pub fn merged_engine_latency(&self) -> Histogram {
        merged_total(&self.latency)
    }

    /// All router-side latency rows collapsed into one histogram —
    /// quantiles of this are the fleet's true client-facing tails.
    pub fn merged_router_latency(&self) -> Histogram {
        merged_total(&self.router_latency)
    }

    /// Merge the engine latency rows of every live slot report —
    /// how [`FleetStats::latency`] is built.
    pub fn merged_slot_latency(slots: &[ShardSlotStats]) -> Vec<HistogramRow> {
        let mut out = Vec::new();
        for slot in slots {
            if let Some(report) = &slot.report {
                merge_rows(&mut out, &report.engine_f64.latency);
                merge_rows(&mut out, &report.engine_f32.latency);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_engine_stats(multiplies: u64) -> EngineStats {
        let mut hist = Histogram::new();
        hist.record_n(1_500_000, multiplies); // ~1.5 ms per request
        let latency = if multiplies > 0 {
            vec![HistogramRow {
                label: "p65-128/f64".to_string(),
                hist,
            }]
        } else {
            Vec::new()
        };
        EngineStats {
            threads: 2,
            multiplies,
            plan_cache_hits: multiplies.saturating_sub(1),
            plan_cache_misses: 1,
            plan_cache_evictions: 0,
            plans_cached: 1,
            workspaces_created: 1,
            workspaces_reused: multiplies.saturating_sub(1),
            workspaces_pooled: 1,
            base_gemms: 7 * multiplies,
            peel_gemms: 0,
            tasks_stolen: 3,
            latency,
        }
    }

    fn sample_report(served: u64) -> ShardStatsReport {
        ShardStatsReport {
            queue_depth: 1,
            max_inflight: 8,
            draining: false,
            served,
            rejected_busy: 2,
            rejected_draining: 0,
            malformed: 0,
            engine_f64: sample_engine_stats(served),
            engine_f32: sample_engine_stats(0),
        }
    }

    #[test]
    fn shard_report_roundtrips() {
        let report = sample_report(40);
        let back = ShardStatsReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
        assert_eq!(report.engine_multiplies(), 40);
        assert!(ShardStatsReport::from_json("{\"queue_depth\": 0}").is_err());
    }

    #[test]
    fn fleet_stats_roundtrip_including_down_slot() {
        let fleet = FleetStats {
            shards: 2,
            router: RouterCounters {
                requests: 100,
                completions: 98,
                failed: 0,
                retries: 4,
                respawns: 1,
                rejected: 2,
            },
            slots: vec![
                ShardSlotStats {
                    slot: 0,
                    healthy: true,
                    respawns: 0,
                    ok_since_spawn: 60,
                    ok_total: 60,
                    report: Some(sample_report(60)),
                },
                ShardSlotStats {
                    slot: 1,
                    healthy: false,
                    respawns: 1,
                    ok_since_spawn: 0,
                    ok_total: 38,
                    report: None,
                },
            ],
            latency: Vec::new(),
            router_latency: Vec::new(),
        };
        let fleet = FleetStats {
            latency: FleetStats::merged_slot_latency(&fleet.slots),
            ..fleet
        };
        let back = FleetStats::from_json(&fleet.to_json()).unwrap();
        assert_eq!(fleet, back);
        // 60 live + 38 observed on the dead slot.
        assert_eq!(fleet.shard_multiplies(), 98);
        assert_eq!(fleet.shard_multiplies(), fleet.router.completions);
        // Only the live slot contributes histograms; its 60 requests
        // surface in the merged engine-side view.
        assert_eq!(fleet.merged_engine_latency().count(), 60);
        let p50 = fleet.merged_engine_latency().quantile(0.5);
        assert!(p50.abs_diff(1_500_000) as f64 <= 1_500_000.0 * 0.25 + 1.0);
        assert_eq!(fleet.merged_router_latency().count(), 0);
    }

    #[test]
    fn respawned_slot_counts_lost_incarnations() {
        let slot = ShardSlotStats {
            slot: 0,
            healthy: true,
            respawns: 1,
            ok_since_spawn: 10,
            ok_total: 50,
            report: Some(sample_report(10)),
        };
        let fleet = FleetStats {
            shards: 1,
            router: RouterCounters {
                completions: 50,
                ..Default::default()
            },
            slots: vec![slot],
            latency: Vec::new(),
            router_latency: Vec::new(),
        };
        // 10 from the live incarnation + 40 from the killed one.
        assert_eq!(fleet.shard_multiplies(), 50);
    }
}
