//! The fmm-serve wire protocol: length-prefixed binary frames over a
//! byte stream (Unix-domain sockets in practice, anything `Read +
//! Write` in tests).
//!
//! Layout of one frame, all integers little-endian:
//!
//! ```text
//! u32 payload_len | payload
//! payload := u8 version (=1) | u8 kind | u64 request_id | body
//! ```
//!
//! The body depends on the kind (see [`Frame`]); matrix operands
//! travel as row-major scalar runs in their IEEE-754 little-endian
//! byte form, tagged with a [`WireDtype`]. Decoding is total: any
//! malformed input — truncated frame, oversized length prefix, unknown
//! version/kind/dtype, body length that disagrees with the declared
//! shape — yields a typed [`WireError`], never a panic and (because
//! every read goes through a socket timeout) never a hang.

use fmm_gemm::GemmScalar;
use fmm_matrix::DenseMatrix;
use std::io::{self, Read, Write};

/// Protocol version emitted and accepted by this build.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on one frame's payload, bytes. A length prefix beyond this
/// is rejected *before* any buffer is allocated, so a corrupt or
/// hostile prefix cannot OOM a shard.
pub const MAX_FRAME: usize = 1 << 28; // 256 MiB

/// Fixed header bytes in every payload: version, kind, request id.
const HEADER: usize = 1 + 1 + 8;

/// Element type of a matrix travelling on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireDtype {
    /// IEEE-754 binary64.
    F64,
    /// IEEE-754 binary32.
    F32,
    /// Bit-packed GF(2) (`fmm-gf2`). The tag is reserved so routers,
    /// shards and clients agree on it; matrix *transport* for the
    /// packed representation is follow-up work, so any frame declaring
    /// this dtype decodes to a typed [`WireError::UnsupportedDtype`].
    Gf2,
}

impl WireDtype {
    /// Wire tag byte.
    pub fn tag(self) -> u8 {
        match self {
            WireDtype::F64 => 0,
            WireDtype::F32 => 1,
            WireDtype::Gf2 => 2,
        }
    }

    /// Parse a wire tag byte.
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(WireDtype::F64),
            1 => Ok(WireDtype::F32),
            2 => Ok(WireDtype::Gf2),
            other => Err(WireError::BadDtype(other)),
        }
    }

    /// Bytes per scalar element, or `None` for dtypes whose matrix
    /// encoding is not element-per-fixed-width (bit-packed GF(2) has no
    /// per-element byte count; its transport is not wired up yet).
    pub fn element_size(self) -> Option<usize> {
        match self {
            WireDtype::F64 => Some(8),
            WireDtype::F32 => Some(4),
            WireDtype::Gf2 => None,
        }
    }

    /// Lowercase dtype label, matching `Scalar::NAME` — used as the
    /// dtype half of histogram-row labels.
    pub fn name(self) -> &'static str {
        match self {
            WireDtype::F64 => "f64",
            WireDtype::F32 => "f32",
            WireDtype::Gf2 => "gf2",
        }
    }
}

/// Scalars that can travel on the wire: a dtype tag plus lossless
/// little-endian byte conversion. Implemented for every dtype the
/// shard engines host.
pub trait WireScalar: GemmScalar {
    /// The wire tag for this element type.
    const DTYPE: WireDtype;
    /// Append `self` in little-endian byte order.
    fn put_le(self, out: &mut Vec<u8>);
    /// Read one scalar from exactly `size_of::<Self>()` bytes.
    fn get_le(bytes: &[u8]) -> Self;
}

impl WireScalar for f64 {
    const DTYPE: WireDtype = WireDtype::F64;
    fn put_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn get_le(bytes: &[u8]) -> Self {
        f64::from_le_bytes(bytes.try_into().expect("8-byte f64 run"))
    }
}

impl WireScalar for f32 {
    const DTYPE: WireDtype = WireDtype::F32;
    fn put_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn get_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes.try_into().expect("4-byte f32 run"))
    }
}

/// Typed error codes a shard or router reports in an [`Frame::Error`]
/// response. The numeric tag is the wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control: the shard's inflight bound is full. Back off
    /// and retry (the router does this for you, onto a sibling shard).
    Busy,
    /// Operand shapes are inconsistent (`A.cols != B.rows`).
    Shape,
    /// Planning failed for this shape/configuration.
    Plan,
    /// The request named a dtype this shard does not host.
    BadDtype,
    /// The request frame could not be decoded.
    Malformed,
    /// The serving process hit an internal error.
    Internal,
    /// The shard is draining and admits no new work.
    Draining,
    /// Router: every retry was exhausted; no shard could serve.
    Unavailable,
}

impl ErrorCode {
    /// Wire tag byte.
    pub fn tag(self) -> u8 {
        match self {
            ErrorCode::Busy => 1,
            ErrorCode::Shape => 2,
            ErrorCode::Plan => 3,
            ErrorCode::BadDtype => 4,
            ErrorCode::Malformed => 5,
            ErrorCode::Internal => 6,
            ErrorCode::Draining => 7,
            ErrorCode::Unavailable => 8,
        }
    }

    /// Parse a wire tag byte.
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            1 => ErrorCode::Busy,
            2 => ErrorCode::Shape,
            3 => ErrorCode::Plan,
            4 => ErrorCode::BadDtype,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Draining,
            8 => ErrorCode::Unavailable,
            other => return Err(WireError::BadErrorCode(other)),
        })
    }

    /// Should a router try this request again on a sibling shard?
    /// Load/lifecycle conditions are retryable; deterministic request
    /// errors (shape, plan, dtype, malformed) would fail anywhere.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Busy | ErrorCode::Draining | ErrorCode::Unavailable
        )
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Shape => "shape",
            ErrorCode::Plan => "plan",
            ErrorCode::BadDtype => "bad-dtype",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Internal => "internal",
            ErrorCode::Draining => "draining",
            ErrorCode::Unavailable => "unavailable",
        };
        f.write_str(name)
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended mid-frame (or mid-length-prefix).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Unknown dtype tag.
    BadDtype(u8),
    /// A known, reserved dtype that this build cannot yet transport
    /// (e.g. bit-packed GF(2)). Distinct from [`WireError::BadDtype`]:
    /// the tag is valid protocol, the capability is missing.
    UnsupportedDtype(WireDtype),
    /// Unknown error-code tag.
    BadErrorCode(u8),
    /// The body length disagrees with the declared shape/lengths.
    BadLength {
        /// Bytes the declared shape requires.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A declared dimension product overflows addressable memory.
    ShapeOverflow,
    /// An embedded string was not UTF-8.
    BadUtf8,
    /// No frame arrived within the socket's read timeout. On a shard's
    /// idle connection this is a poll tick, not a failure.
    IdleTimeout,
    /// Underlying transport error.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Oversized(len) => {
                write!(f, "length prefix {len} exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadDtype(d) => write!(f, "unknown dtype tag {d}"),
            WireError::UnsupportedDtype(d) => write!(
                f,
                "dtype {} is reserved but not yet transportable on the wire",
                d.name()
            ),
            WireError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            WireError::BadLength { expected, got } => {
                write!(f, "body length {got} disagrees with declared {expected}")
            }
            WireError::ShapeOverflow => write!(f, "declared shape overflows memory"),
            WireError::BadUtf8 => write!(f, "embedded string is not UTF-8"),
            WireError::IdleTimeout => write!(f, "no frame within the read timeout"),
            WireError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One protocol message. Matrix payloads stay as raw little-endian
/// bytes here (`a`, `b`, `c`) so the frame type is dtype-agnostic;
/// [`encode_matrix`]/[`decode_matrix`] convert at the boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → shard: compute `C = A · B`.
    MultiplyReq {
        /// Request id, echoed in the response.
        id: u64,
        /// Element type of both operand payloads.
        dtype: WireDtype,
        /// Rows of A (and C).
        m: u32,
        /// Cols of A == rows of B.
        k: u32,
        /// Cols of B (and C).
        n: u32,
        /// A, row-major, `m·k` scalars.
        a: Vec<u8>,
        /// B, row-major, `k·n` scalars.
        b: Vec<u8>,
    },
    /// Shard → client: the product.
    MultiplyOk {
        /// Echoed request id.
        id: u64,
        /// Element type of the product payload.
        dtype: WireDtype,
        /// Rows of C.
        m: u32,
        /// Cols of C.
        n: u32,
        /// C, row-major, `m·n` scalars.
        c: Vec<u8>,
    },
    /// Any → any: the request identified by `id` failed.
    Error {
        /// Echoed request id (0 when no request could be attributed).
        id: u64,
        /// Typed failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client/router → shard: report statistics.
    StatsReq {
        /// Request id.
        id: u64,
    },
    /// Shard → client/router: statistics snapshot as JSON
    /// (see `fmm_serve::stats::ShardStatsReport`).
    StatsOk {
        /// Echoed request id.
        id: u64,
        /// JSON text.
        json: String,
    },
    /// Router → shard: liveness probe.
    HealthReq {
        /// Request id.
        id: u64,
    },
    /// Shard → router: alive, with instantaneous load.
    HealthOk {
        /// Echoed request id.
        id: u64,
        /// Multiplies currently inflight.
        queue_depth: u32,
        /// True once a drain has been requested.
        draining: bool,
    },
    /// Router → shard: stop admitting work, finish inflight, exit.
    DrainReq {
        /// Request id.
        id: u64,
    },
    /// Shard → router: drained; the process will now exit.
    DrainOk {
        /// Echoed request id.
        id: u64,
    },
}

impl Frame {
    /// Kind tag byte.
    fn kind(&self) -> u8 {
        match self {
            Frame::MultiplyReq { .. } => 1,
            Frame::MultiplyOk { .. } => 2,
            Frame::Error { .. } => 3,
            Frame::StatsReq { .. } => 4,
            Frame::StatsOk { .. } => 5,
            Frame::HealthReq { .. } => 6,
            Frame::HealthOk { .. } => 7,
            Frame::DrainReq { .. } => 8,
            Frame::DrainOk { .. } => 9,
        }
    }

    /// Request id carried by any frame.
    pub fn id(&self) -> u64 {
        match self {
            Frame::MultiplyReq { id, .. }
            | Frame::MultiplyOk { id, .. }
            | Frame::Error { id, .. }
            | Frame::StatsReq { id }
            | Frame::StatsOk { id, .. }
            | Frame::HealthReq { id }
            | Frame::HealthOk { id, .. }
            | Frame::DrainReq { id }
            | Frame::DrainOk { id } => *id,
        }
    }

    /// Serialize to a payload (header + body, *without* the length
    /// prefix — [`write_frame`] adds it).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER + 16);
        out.push(WIRE_VERSION);
        out.push(self.kind());
        out.extend_from_slice(&self.id().to_le_bytes());
        match self {
            Frame::MultiplyReq {
                dtype,
                m,
                k,
                n,
                a,
                b,
                ..
            } => {
                out.push(dtype.tag());
                out.extend_from_slice(&m.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
                out.extend_from_slice(a);
                out.extend_from_slice(b);
            }
            Frame::MultiplyOk { dtype, m, n, c, .. } => {
                out.push(dtype.tag());
                out.extend_from_slice(&m.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
                out.extend_from_slice(c);
            }
            Frame::Error { code, message, .. } => {
                out.push(code.tag());
                out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                out.extend_from_slice(message.as_bytes());
            }
            Frame::StatsOk { json, .. } => {
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            Frame::HealthOk {
                queue_depth,
                draining,
                ..
            } => {
                out.extend_from_slice(&queue_depth.to_le_bytes());
                out.push(u8::from(*draining));
            }
            Frame::StatsReq { .. }
            | Frame::HealthReq { .. }
            | Frame::DrainReq { .. }
            | Frame::DrainOk { .. } => {}
        }
        out
    }

    /// Decode a payload previously produced by [`Frame::encode`].
    /// Total: every malformed input maps to a [`WireError`].
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader { buf: payload };
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = r.u8()?;
        let id = r.u64()?;
        let frame = match kind {
            1 => {
                let dtype = WireDtype::from_tag(r.u8()?)?;
                let m = r.u32()?;
                let k = r.u32()?;
                let n = r.u32()?;
                let a_bytes = checked_bytes(m, k, dtype)?;
                let b_bytes = checked_bytes(k, n, dtype)?;
                r.expect_remaining(a_bytes + b_bytes)?;
                let a = r.take(a_bytes)?.to_vec();
                let b = r.take(b_bytes)?.to_vec();
                Frame::MultiplyReq {
                    id,
                    dtype,
                    m,
                    k,
                    n,
                    a,
                    b,
                }
            }
            2 => {
                let dtype = WireDtype::from_tag(r.u8()?)?;
                let m = r.u32()?;
                let n = r.u32()?;
                let c_bytes = checked_bytes(m, n, dtype)?;
                r.expect_remaining(c_bytes)?;
                let c = r.take(c_bytes)?.to_vec();
                Frame::MultiplyOk { id, dtype, m, n, c }
            }
            3 => {
                let code = ErrorCode::from_tag(r.u8()?)?;
                let len = r.u32()? as usize;
                r.expect_remaining(len)?;
                let message =
                    String::from_utf8(r.take(len)?.to_vec()).map_err(|_| WireError::BadUtf8)?;
                Frame::Error { id, code, message }
            }
            4 => {
                r.expect_remaining(0)?;
                Frame::StatsReq { id }
            }
            5 => {
                let len = r.u32()? as usize;
                r.expect_remaining(len)?;
                let json =
                    String::from_utf8(r.take(len)?.to_vec()).map_err(|_| WireError::BadUtf8)?;
                Frame::StatsOk { id, json }
            }
            6 => {
                r.expect_remaining(0)?;
                Frame::HealthReq { id }
            }
            7 => {
                let queue_depth = r.u32()?;
                let draining = r.u8()? != 0;
                r.expect_remaining(0)?;
                Frame::HealthOk {
                    id,
                    queue_depth,
                    draining,
                }
            }
            8 => {
                r.expect_remaining(0)?;
                Frame::DrainReq { id }
            }
            9 => {
                r.expect_remaining(0)?;
                Frame::DrainOk { id }
            }
            other => return Err(WireError::BadKind(other)),
        };
        Ok(frame)
    }
}

/// Byte count of an `rows × cols` matrix of `dtype`, rejecting
/// products that overflow or exceed the frame cap.
fn checked_bytes(rows: u32, cols: u32, dtype: WireDtype) -> Result<usize, WireError> {
    let elem = dtype
        .element_size()
        .ok_or(WireError::UnsupportedDtype(dtype))?;
    let elems = (rows as u64)
        .checked_mul(cols as u64)
        .ok_or(WireError::ShapeOverflow)?;
    let bytes = elems
        .checked_mul(elem as u64)
        .ok_or(WireError::ShapeOverflow)?;
    if bytes > MAX_FRAME as u64 {
        return Err(WireError::Oversized(bytes as usize));
    }
    Ok(bytes as usize)
}

/// Cursor over a payload with totalizing accessors.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::BadLength {
                expected: n,
                got: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// The body must hold exactly `n` more bytes — trailing garbage is
    /// as malformed as a short body.
    fn expect_remaining(&self, n: usize) -> Result<(), WireError> {
        if self.buf.len() != n {
            return Err(WireError::BadLength {
                expected: n,
                got: self.buf.len(),
            });
        }
        Ok(())
    }
}

/// Write one frame (length prefix + payload) to the stream.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    let payload = frame.encode();
    debug_assert!(payload.len() <= MAX_FRAME, "encoder respects MAX_FRAME");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from the stream.
///
/// * `Ok(None)` — the peer closed the connection cleanly at a frame
///   boundary.
/// * `Err(IdleTimeout)` — the socket's read timeout elapsed with *no*
///   bytes of a new frame seen; the connection is still healthy (a
///   shard uses this as its drain-poll tick).
/// * `Err(Truncated)` — the peer closed (or stalled past the timeout)
///   mid-frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    // First byte separately: distinguishes clean close / idle timeout
    // from a mid-frame truncation.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(WireError::IdleTimeout)
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let mut rest = [0u8; 3];
    read_exactly(r, &mut rest)?;
    let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    read_exactly(r, &mut payload)?;
    Frame::decode(&payload).map(Some)
}

/// `read_exact` that folds EOF and read-timeout into
/// [`WireError::Truncated`]: once a frame has started, the peer must
/// finish it within the socket timeout.
fn read_exactly<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(WireError::Truncated)
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Serialize a matrix into its row-major little-endian wire form.
pub fn encode_matrix<T: WireScalar>(m: &DenseMatrix<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(std::mem::size_of_val(m.as_slice()));
    for &x in m.as_slice() {
        x.put_le(&mut out);
    }
    out
}

/// Reassemble a matrix from its wire form. The byte length must match
/// the shape exactly (frame decoding already guarantees this for
/// frames it produced).
pub fn decode_matrix<T: WireScalar>(
    rows: usize,
    cols: usize,
    bytes: &[u8],
) -> Result<DenseMatrix<T>, WireError> {
    let size = std::mem::size_of::<T>();
    let expected = rows
        .checked_mul(cols)
        .and_then(|e| e.checked_mul(size))
        .ok_or(WireError::ShapeOverflow)?;
    if bytes.len() != expected {
        return Err(WireError::BadLength {
            expected,
            got: bytes.len(),
        });
    }
    let data: Vec<T> = bytes.chunks_exact(size).map(T::get_le).collect();
    Ok(DenseMatrix::from_vec(rows, cols, data))
}

/// Deterministic 64-bit FNV-1a over the request shape — the router's
/// shard-placement hash. Spelled out (rather than `DefaultHasher`) so
/// placement is stable across processes, builds, and std versions:
/// every request of one shape lands on the same shard, which is what
/// keeps that shard's plan cache and workspace pool hot.
pub fn shape_hash(m: usize, k: usize, n: usize, dtype: WireDtype) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [m as u64, k as u64, n as u64, dtype.tag() as u64] {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    // FNV-1a's lowest bit is the parity of the input bytes' lowest
    // bits, so `hash % 2^k` placement would depend only on dimension
    // parity (an all-even-dims workload would pile onto one shard of
    // two). A splitmix64-style finalizer avalanches the low bits.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let payload = frame.encode();
        let back = Frame::decode(&payload).expect("decode");
        assert_eq!(frame, back);
    }

    #[test]
    fn every_kind_roundtrips() {
        roundtrip(Frame::MultiplyReq {
            id: 7,
            dtype: WireDtype::F64,
            m: 2,
            k: 3,
            n: 1,
            a: vec![0u8; 2 * 3 * 8],
            b: vec![1u8; 3 * 8],
        });
        roundtrip(Frame::MultiplyOk {
            id: 7,
            dtype: WireDtype::F32,
            m: 2,
            n: 2,
            c: vec![9u8; 16],
        });
        roundtrip(Frame::Error {
            id: 3,
            code: ErrorCode::Busy,
            message: "inflight bound reached".into(),
        });
        roundtrip(Frame::StatsReq { id: 1 });
        roundtrip(Frame::StatsOk {
            id: 1,
            json: "{\"ok\":true}".into(),
        });
        roundtrip(Frame::HealthReq { id: 2 });
        roundtrip(Frame::HealthOk {
            id: 2,
            queue_depth: 5,
            draining: true,
        });
        roundtrip(Frame::DrainReq { id: 4 });
        roundtrip(Frame::DrainOk { id: 4 });
    }

    #[test]
    fn matrix_encoding_roundtrips_bitwise() {
        let m = DenseMatrix::<f64>::from_fn(3, 5, |i, j| (i * 5 + j) as f64 * 0.1 - 0.7);
        let bytes = encode_matrix(&m);
        let back = decode_matrix::<f64>(3, 5, &bytes).unwrap();
        assert_eq!(m, back);
        let s = DenseMatrix::<f32>::from_fn(4, 2, |i, j| (i as f32) - (j as f32) * 1.5);
        let back32 = decode_matrix::<f32>(4, 2, &encode_matrix(&s)).unwrap();
        assert_eq!(s, back32);
    }

    #[test]
    fn malformed_inputs_yield_typed_errors() {
        assert!(matches!(
            Frame::decode(&[]),
            Err(WireError::BadLength { .. })
        ));
        assert!(matches!(
            Frame::decode(&[99, 1, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(WireError::BadVersion(99))
        ));
        assert!(matches!(
            Frame::decode(&[WIRE_VERSION, 42, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(WireError::BadKind(42))
        ));
        // A MultiplyReq whose body is shorter than its declared shape.
        let mut payload = Frame::MultiplyReq {
            id: 1,
            dtype: WireDtype::F64,
            m: 2,
            k: 2,
            n: 2,
            a: vec![0; 32],
            b: vec![0; 32],
        }
        .encode();
        payload.truncate(payload.len() - 5);
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::BadLength { .. })
        ));
        // Trailing garbage is malformed too.
        let mut long = Frame::DrainOk { id: 1 }.encode();
        long.push(0);
        assert!(matches!(
            Frame::decode(&long),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn gf2_dtype_tag_is_reserved_not_transportable() {
        // The tag parses — it is valid protocol both ways.
        assert!(matches!(WireDtype::from_tag(2), Ok(WireDtype::Gf2)));
        assert_eq!(WireDtype::Gf2.tag(), 2);
        assert_eq!(WireDtype::Gf2.name(), "gf2");
        assert_eq!(WireDtype::Gf2.element_size(), None);
        // The tag after the reserved one is still unknown protocol.
        assert!(matches!(
            WireDtype::from_tag(3),
            Err(WireError::BadDtype(3))
        ));
        // A MultiplyReq declaring gf2 decodes to a *typed* unsupported
        // error (decoding stays total — no panic, no bogus frame). The
        // dtype byte sits right after the 10-byte header.
        let mut payload = Frame::MultiplyReq {
            id: 5,
            dtype: WireDtype::F64,
            m: 2,
            k: 2,
            n: 2,
            a: vec![0; 32],
            b: vec![0; 32],
        }
        .encode();
        payload[HEADER] = WireDtype::Gf2.tag();
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::UnsupportedDtype(WireDtype::Gf2))
        ));
        let msg = WireError::UnsupportedDtype(WireDtype::Gf2).to_string();
        assert!(msg.contains("gf2"), "{msg}");
    }

    #[test]
    fn shape_hash_distinguishes_gf2() {
        let f = shape_hash(64, 64, 64, WireDtype::F64);
        let g = shape_hash(64, 64, 64, WireDtype::Gf2);
        assert_ne!(f, g, "dtype must enter shard placement");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf: &[u8] = &[0xff, 0xff, 0xff, 0xff, 1, 2, 3];
        match read_frame(&mut buf) {
            Err(WireError::Oversized(len)) => assert_eq!(len, 0xffff_ffff),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_truncated_not_a_hang() {
        // A valid prefix announcing 100 bytes, but only 3 arrive.
        let mut data = (100u32).to_le_bytes().to_vec();
        data.extend_from_slice(&[1, 2, 3]);
        let mut cursor: &[u8] = &data;
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Truncated)));
    }

    #[test]
    fn clean_close_reads_as_none() {
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
    }

    #[test]
    fn shape_hash_is_deterministic_and_spreads() {
        let h1 = shape_hash(64, 64, 64, WireDtype::F64);
        assert_eq!(h1, shape_hash(64, 64, 64, WireDtype::F64));
        assert_ne!(h1, shape_hash(64, 64, 64, WireDtype::F32));
        assert_ne!(h1, shape_hash(64, 64, 65, WireDtype::F64));
        // Transposed shapes must not collide (hash covers position).
        assert_ne!(
            shape_hash(32, 64, 16, WireDtype::F64),
            shape_hash(16, 64, 32, WireDtype::F64)
        );
        // Placement onto a power-of-two fleet must not collapse onto
        // dimension parity: all-even-dims shapes cover both slots.
        let slots: std::collections::BTreeSet<u64> = (1..=16)
            .map(|i| shape_hash(2 * i, 48, 64, WireDtype::F64) % 2)
            .collect();
        assert_eq!(slots.len(), 2, "even-dims shapes piled onto one shard");
    }
}
