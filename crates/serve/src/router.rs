//! The routing tier: one process that owns a [`Fleet`] of shard
//! processes, hashes every multiply onto a shard, retries transient
//! failures onto siblings, respawns dead shards, and aggregates
//! fleet-wide statistics into one JSON document.
//!
//! Placement is deterministic: `shape_hash(m, k, n, dtype) % shards`
//! — the same product shape always lands on the same shard, so each
//! shard's plan cache stays hot for its slice of the shape mix.
//! Retries walk the ring (`primary + attempt`) with doubling backoff,
//! so a dead or saturated shard degrades into extra latency on its
//! siblings, never into a client-visible error (until the whole ring
//! is exhausted, which surfaces as [`ErrorCode::Unavailable`]).

use crate::client::ServeClient;
use crate::fleet::{Fleet, ShardLauncher, ShardSpec};
use crate::stats::{FleetStats, RouterCounters, ShardSlotStats, ShardStatsReport};
use crate::wire::{read_frame, shape_hash, write_frame, ErrorCode, Frame, WireError};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a router needs to come up.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Socket the router listens on for clients.
    pub socket: PathBuf,
    /// How shard processes are spawned.
    pub launcher: ShardLauncher,
    /// One spec per shard slot.
    pub shards: Vec<ShardSpec>,
    /// Total forward attempts per multiply (first try + retries).
    pub max_attempts: usize,
    /// First retry backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Accept/idle poll granularity and supervisor health interval.
    pub poll_tick: Duration,
    /// How long a (re)spawned shard may take to answer health.
    pub ready_timeout: Duration,
}

impl RouterConfig {
    /// Config with defaults tuned for small local fleets.
    pub fn new(
        socket: impl Into<PathBuf>,
        launcher: ShardLauncher,
        shards: Vec<ShardSpec>,
    ) -> Self {
        RouterConfig {
            socket: socket.into(),
            launcher,
            shards,
            max_attempts: 12,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            poll_tick: Duration::from_millis(50),
            ready_timeout: Duration::from_secs(10),
        }
    }
}

/// Router-side view of one shard slot. The `ok_*` pair reconstructs
/// completed work across incarnations: `ok_since_spawn` is zeroed
/// right before a respawn, so `ok_total - ok_since_spawn` is exactly
/// the successful multiplies whose engine counters died with earlier
/// incarnations.
struct SlotCtl {
    healthy: AtomicBool,
    respawns: AtomicU64,
    ok_since_spawn: AtomicU64,
    ok_total: AtomicU64,
}

struct RouterState {
    cfg: RouterConfig,
    /// Shard socket paths, indexed by slot (never changes).
    sockets: Vec<PathBuf>,
    /// The shard processes; locked only by the supervisor (respawn)
    /// and shutdown — the forward path never takes this lock.
    fleet: Mutex<Option<Fleet>>,
    slots: Vec<SlotCtl>,
    requests: AtomicU64,
    completions: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    respawns: AtomicU64,
    rejected: AtomicU64,
    inflight: AtomicU64,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Router-observed latency of successful forwards, keyed
    /// `"<shape-class>/<dtype>"`. Lives in the router process, so it
    /// survives shard crashes and respawns — the fleet's crash-immune
    /// tail-latency source.
    hists: fmm_trace::HistogramSet,
}

impl RouterState {
    fn counters(&self) -> RouterCounters {
        RouterCounters {
            requests: self.requests.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// One cheap health round-trip against slot `i`'s socket.
    fn probe_slot(&self, i: usize) -> bool {
        match ServeClient::connect_with_timeout(&self.sockets[i], Duration::from_secs(2)) {
            Ok(mut c) => c.health().is_ok(),
            Err(_) => false,
        }
    }

    /// Pull slot `i`'s stats report (None while the shard is down).
    fn slot_report(&self, i: usize) -> Option<ShardStatsReport> {
        let mut client =
            ServeClient::connect_with_timeout(&self.sockets[i], Duration::from_secs(2)).ok()?;
        let json = client.stats_json().ok()?;
        ShardStatsReport::from_json(&json).ok()
    }

    /// Aggregate the whole fleet into one snapshot document.
    fn fleet_stats(&self) -> FleetStats {
        let slots: Vec<ShardSlotStats> = (0..self.sockets.len())
            .map(|i| {
                let report = self.slot_report(i);
                ShardSlotStats {
                    slot: i,
                    healthy: report.is_some(),
                    respawns: self.slots[i].respawns.load(Ordering::Relaxed),
                    ok_since_spawn: self.slots[i].ok_since_spawn.load(Ordering::Relaxed),
                    ok_total: self.slots[i].ok_total.load(Ordering::Relaxed),
                    report,
                }
            })
            .collect();
        let latency = FleetStats::merged_slot_latency(&slots);
        FleetStats {
            shards: self.sockets.len() as u64,
            router: self.counters(),
            slots,
            latency,
            router_latency: self.hists.snapshot(),
        }
    }
}

/// Write `frame` to slot `i` and read one response, reusing (or
/// repairing) the handler's cached connection. Any transport failure
/// marks the slot unhealthy so the supervisor investigates.
fn try_forward(
    state: &RouterState,
    conns: &mut [Option<UnixStream>],
    slot: usize,
    frame: &Frame,
) -> Result<Frame, ()> {
    if conns[slot].is_none() {
        let stream = UnixStream::connect(&state.sockets[slot]).map_err(|_| ())?;
        // A multiply may legitimately take a while on a loaded shard;
        // the timeout only guards against a wedged process.
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|_| ())?;
        stream
            .set_write_timeout(Some(Duration::from_secs(60)))
            .map_err(|_| ())?;
        conns[slot] = Some(stream);
    }
    let stream = conns[slot].as_mut().expect("just inserted");
    let result = write_frame(stream, frame).and_then(|()| match read_frame(stream)? {
        Some(resp) => Ok(resp),
        None => Err(WireError::Truncated),
    });
    match result {
        Ok(resp) => Ok(resp),
        Err(_) => {
            // The stream is no longer trustworthy mid-frame.
            conns[slot] = None;
            state.slots[slot].healthy.store(false, Ordering::Relaxed);
            Err(())
        }
    }
}

/// Route one multiply: primary slot by shape hash, then walk the ring
/// with doubling backoff until a shard gives a definitive answer.
fn forward_with_retry(
    state: &RouterState,
    conns: &mut [Option<UnixStream>],
    frame: &Frame,
    id: u64,
    hash: u64,
) -> Frame {
    let n = state.sockets.len();
    let primary = (hash % n as u64) as usize;
    let mut backoff = state.cfg.base_backoff;
    for attempt in 0..state.cfg.max_attempts {
        let slot = (primary + attempt) % n;
        if attempt > 0 {
            state.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(state.cfg.max_backoff);
        }
        match try_forward(state, conns, slot, frame) {
            Ok(resp @ Frame::MultiplyOk { .. }) => {
                state.slots[slot]
                    .ok_since_spawn
                    .fetch_add(1, Ordering::Relaxed);
                state.slots[slot].ok_total.fetch_add(1, Ordering::Relaxed);
                return resp;
            }
            // Backpressure and drains are transient: try a sibling.
            Ok(Frame::Error { code, .. }) if code.retryable() => continue,
            // Deterministic failures (shape, dtype, plan) pass through
            // unchanged — no sibling would answer differently.
            Ok(resp @ Frame::Error { .. }) => return resp,
            Ok(_) => {
                return Frame::Error {
                    id,
                    code: ErrorCode::Internal,
                    message: "shard sent a non-multiply response".to_string(),
                }
            }
            Err(()) => continue,
        }
    }
    Frame::Error {
        id,
        code: ErrorCode::Unavailable,
        message: format!(
            "no shard answered within {} attempts",
            state.cfg.max_attempts
        ),
    }
}

/// Serve one client connection until it closes (or the router drains).
fn handle_client(state: &Arc<RouterState>, stream: UnixStream) {
    fmm_trace::set_thread_label("router-client");
    let _ = stream.set_read_timeout(Some(state.cfg.poll_tick));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut stream = stream;
    let mut conns: Vec<Option<UnixStream>> = (0..state.sockets.len()).map(|_| None).collect();
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(WireError::IdleTimeout) => {
                if state.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            // Malformed traffic: answer with a typed error (the peer
            // may still be listening) and drop the connection — after
            // a framing error the stream position is untrustworthy.
            Err(e) => {
                let reply = Frame::Error {
                    id: 0,
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &reply);
                return;
            }
        };
        match frame {
            Frame::MultiplyReq {
                id, dtype, m, k, n, ..
            } => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                state.inflight.fetch_add(1, Ordering::Relaxed);
                let hash = shape_hash(m as usize, k as usize, n as usize, dtype);
                let t_fwd = fmm_trace::now_ns();
                let resp = forward_with_retry(state, &mut conns, &frame, id, hash);
                match &resp {
                    Frame::MultiplyOk { .. } => {
                        state.completions.fetch_add(1, Ordering::Relaxed);
                        let label = format!(
                            "{}/{}",
                            fmm_core::shape_class(m as usize, k as usize, n as usize),
                            dtype.name()
                        );
                        state
                            .hists
                            .record(&label, fmm_trace::now_ns().saturating_sub(t_fwd));
                        if fmm_trace::enabled() {
                            fmm_trace::span_end(
                                fmm_trace::SpanKind::RouterForward,
                                t_fwd,
                                (m as u64) * (k as u64) * (n as u64),
                            );
                        }
                    }
                    Frame::Error { code, .. } if code.retryable() => {
                        state.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        state.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                state.inflight.fetch_sub(1, Ordering::Relaxed);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Frame::StatsReq { id } => {
                let reply = Frame::StatsOk {
                    id,
                    json: state.fleet_stats().to_json(),
                };
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            Frame::HealthReq { id } => {
                let reply = Frame::HealthOk {
                    id,
                    queue_depth: state.inflight.load(Ordering::Relaxed).min(u32::MAX as u64) as u32,
                    draining: state.draining.load(Ordering::Relaxed),
                };
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            Frame::DrainReq { id } => {
                state.draining.store(true, Ordering::Relaxed);
                state.shutdown.store(true, Ordering::Relaxed);
                let _ = write_frame(&mut stream, &Frame::DrainOk { id });
                return;
            }
            other => {
                let reply = Frame::Error {
                    id: other.id(),
                    code: ErrorCode::Malformed,
                    message: "frame kind is not a request the router serves".to_string(),
                };
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
        }
    }
}

/// Periodically verify every slot; respawn the dead. The counter
/// reset happens *before* the new process can serve anything, so
/// `ok_since_spawn` tracks exactly the live incarnation.
fn supervise(state: &Arc<RouterState>) {
    while !state.shutdown.load(Ordering::Relaxed) {
        for i in 0..state.sockets.len() {
            if state.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if state.probe_slot(i) {
                state.slots[i].healthy.store(true, Ordering::Relaxed);
                continue;
            }
            let mut guard = state.fleet.lock().expect("fleet lock");
            let Some(fleet) = guard.as_mut() else { return };
            // The probe may have raced a busy shard; only respawn a
            // slot whose process is actually gone.
            if fleet.process_alive(i) {
                continue;
            }
            state.slots[i].healthy.store(false, Ordering::Relaxed);
            // Move this incarnation's successes into the "earlier
            // incarnations" bucket before a new process can serve.
            state.slots[i].ok_since_spawn.store(0, Ordering::Relaxed);
            if fleet.respawn(i, state.cfg.ready_timeout).is_ok() {
                state.slots[i].respawns.fetch_add(1, Ordering::Relaxed);
                state.respawns.fetch_add(1, Ordering::Relaxed);
                state.slots[i].healthy.store(true, Ordering::Relaxed);
            }
        }
        std::thread::sleep(state.cfg.poll_tick);
    }
}

/// A router accept loop plus supervisor, running on background
/// threads. Dropping without [`RunningRouter::shutdown`] still kills
/// the shard processes (via the fleet's `Drop`).
pub struct RunningRouter {
    state: Arc<RouterState>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl RunningRouter {
    /// Path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.state.cfg.socket
    }

    /// Current fleet-wide snapshot (same document the stats RPC
    /// serves).
    pub fn fleet_stats(&self) -> FleetStats {
        self.state.fleet_stats()
    }

    /// Chaos hook for robustness tests: SIGKILL shard `i` right now.
    /// The supervisor notices and respawns it.
    pub fn kill_shard(&self, i: usize) -> io::Result<()> {
        let mut guard = self.state.fleet.lock().expect("fleet lock");
        match guard.as_mut() {
            Some(fleet) => fleet.kill(i),
            None => Ok(()),
        }
    }

    /// Stop accepting, stop the supervisor, drain and reap the fleet.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let fleet = self.state.fleet.lock().expect("fleet lock").take();
        if let Some(fleet) = fleet {
            fleet.shutdown();
        }
        let _ = std::fs::remove_file(&self.state.cfg.socket);
    }
}

impl Drop for RunningRouter {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Spawn the fleet, bind the router socket, and start serving on
/// background threads.
pub fn start_router(cfg: RouterConfig) -> io::Result<RunningRouter> {
    assert!(!cfg.shards.is_empty(), "a router needs at least one shard");
    let specs = cfg.shards.clone();
    let sockets: Vec<PathBuf> = specs.iter().map(|s| s.socket.clone()).collect();
    let fleet = Fleet::spawn(cfg.launcher.clone(), specs, cfg.ready_timeout)?;

    let _ = std::fs::remove_file(&cfg.socket);
    if let Some(parent) = cfg.socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let listener = UnixListener::bind(&cfg.socket)?;
    listener.set_nonblocking(true)?;

    let slots = sockets
        .iter()
        .map(|_| SlotCtl {
            healthy: AtomicBool::new(true),
            respawns: AtomicU64::new(0),
            ok_since_spawn: AtomicU64::new(0),
            ok_total: AtomicU64::new(0),
        })
        .collect();
    let state = Arc::new(RouterState {
        cfg,
        sockets,
        fleet: Mutex::new(Some(fleet)),
        slots,
        requests: AtomicU64::new(0),
        completions: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        respawns: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        inflight: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        hists: fmm_trace::HistogramSet::new(),
    });

    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || {
        let tick = accept_state.cfg.poll_tick;
        while !accept_state.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    if accept_state.draining.load(Ordering::Relaxed) {
                        drop(stream);
                        continue;
                    }
                    let client_state = Arc::clone(&accept_state);
                    std::thread::spawn(move || handle_client(&client_state, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(tick);
                }
                Err(_) => std::thread::sleep(tick),
            }
        }
    });

    let sup_state = Arc::clone(&state);
    let supervisor = std::thread::spawn(move || supervise(&sup_state));

    Ok(RunningRouter {
        state,
        accept: Some(accept),
        supervisor: Some(supervisor),
    })
}

/// Blocking entry point for the `fmm-router` binary: serve until a
/// client sends a drain request, then shut the fleet down.
pub fn router_main(cfg: RouterConfig) -> io::Result<()> {
    let running = start_router(cfg)?;
    while !running.state.shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(running.state.cfg.poll_tick);
    }
    running.shutdown();
    Ok(())
}
