//! The shard: one serving process hosting one [`FmmEngine`] per dtype
//! behind a Unix-domain socket.
//!
//! A shard is deliberately thin — the engine already is the serving
//! object (plan cache, workspace pool, owned thread pool); the shard
//! adds exactly the process-boundary concerns:
//!
//! * **admission control** — a bounded inflight count; a multiply
//!   beyond the bound is rejected with a typed `Busy` *immediately*
//!   instead of queueing unboundedly (the router turns that into
//!   retry-onto-a-sibling backpressure);
//! * **bounded accept** — connections beyond the bound are told `Busy`
//!   and closed rather than parked;
//! * **observability** — a stats RPC reporting the
//!   [`crate::stats::ShardStatsReport`];
//! * **graceful drain** — a drain RPC that stops admission, lets
//!   inflight multiplies finish, acknowledges, and exits the process.

use crate::stats::ShardStatsReport;
use crate::wire::{
    decode_matrix, encode_matrix, read_frame, write_frame, ErrorCode, Frame, WireDtype, WireError,
    WireScalar,
};
use fmm_core::{EngineError, FmmEngine};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard process configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Unix-domain socket path to serve on (created at bind, removed
    /// at exit; a stale file from a crashed predecessor is replaced).
    pub socket: PathBuf,
    /// Engine pool width (both dtype engines).
    pub threads: usize,
    /// Admission bound: multiplies inflight beyond this are rejected
    /// with `Busy`.
    pub max_inflight: usize,
    /// Connections beyond this are rejected with `Busy` and closed.
    pub max_connections: usize,
    /// Poll tick for the accept loop and idle-connection reads; also
    /// the granularity at which a drain is noticed.
    pub poll_tick: Duration,
}

impl ShardConfig {
    /// A shard on `socket` with defaults: width-1 engines, 8 inflight,
    /// 64 connections, 50 ms poll tick.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ShardConfig {
            socket: socket.into(),
            threads: 1,
            max_inflight: 8,
            max_connections: 64,
            poll_tick: Duration::from_millis(50),
        }
    }

    /// Set the engine pool width.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the inflight admission bound.
    #[must_use]
    pub fn max_inflight(mut self, max: usize) -> Self {
        self.max_inflight = max.max(1);
        self
    }
}

/// Shared state of a running shard.
struct ShardState {
    cfg: ShardConfig,
    engine_f64: FmmEngine<f64>,
    engine_f32: FmmEngine<f32>,
    inflight: AtomicU64,
    connections: AtomicU64,
    draining: AtomicBool,
    drain_acked: AtomicBool,
    served: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_draining: AtomicU64,
    malformed: AtomicU64,
}

impl ShardState {
    fn report(&self) -> ShardStatsReport {
        ShardStatsReport {
            queue_depth: self.inflight.load(Ordering::Relaxed),
            max_inflight: self.cfg.max_inflight as u64,
            draining: self.draining.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            engine_f64: self.engine_f64.stats(),
            engine_f32: self.engine_f32.stats(),
        }
    }

    /// Serve one multiply through the dtype-matching engine.
    fn multiply(&self, frame: &Frame) -> Frame {
        let Frame::MultiplyReq {
            id,
            dtype,
            m,
            k,
            n,
            a,
            b,
        } = frame
        else {
            unreachable!("caller dispatches only multiply requests here");
        };
        let id = *id;
        if self.draining.load(Ordering::Relaxed) {
            self.rejected_draining.fetch_add(1, Ordering::Relaxed);
            return error(id, ErrorCode::Draining, "shard is draining");
        }
        if *m == 0 || *k == 0 || *n == 0 {
            return error(id, ErrorCode::Shape, "zero-sized dimension");
        }
        // Admission control: reject beyond the bound instead of
        // buffering unboundedly.
        let was = self.inflight.fetch_add(1, Ordering::AcqRel);
        if was >= self.cfg.max_inflight as u64 {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return error(id, ErrorCode::Busy, "inflight bound reached");
        }
        let resp = match dtype {
            WireDtype::F64 => run_engine(&self.engine_f64, id, *m, *k, *n, a, b),
            WireDtype::F32 => run_engine(&self.engine_f32, id, *m, *k, *n, a, b),
            // Unreachable today — frame decoding rejects the reserved
            // gf2 tag — but kept typed so a future transport can't
            // silently fall through to a float engine.
            WireDtype::Gf2 => {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                return error(id, ErrorCode::BadDtype, "gf2 transport not yet supported");
            }
        };
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        if matches!(resp, Frame::MultiplyOk { .. }) {
            self.served.fetch_add(1, Ordering::Relaxed);
        }
        resp
    }
}

/// Build an error response frame.
fn error(id: u64, code: ErrorCode, message: impl Into<String>) -> Frame {
    Frame::Error {
        id,
        code,
        message: message.into(),
    }
}

/// Decode, multiply on `engine`, re-encode.
fn run_engine<T: WireScalar>(
    engine: &FmmEngine<T>,
    id: u64,
    m: u32,
    k: u32,
    n: u32,
    a: &[u8],
    b: &[u8],
) -> Frame {
    // Gate read once per RPC; the three phase spans share it.
    let trace = fmm_trace::enabled();
    let t_span = fmm_trace::now_if(trace);
    let a = match decode_matrix::<T>(m as usize, k as usize, a) {
        Ok(a) => a,
        Err(e) => return error(id, ErrorCode::Malformed, e.to_string()),
    };
    let b = match decode_matrix::<T>(k as usize, n as usize, b) {
        Ok(b) => b,
        Err(e) => return error(id, ErrorCode::Malformed, e.to_string()),
    };
    fmm_trace::span_end(
        fmm_trace::SpanKind::RpcDecode,
        t_span,
        (a.rows() * a.cols() + b.rows() * b.cols()) as u64,
    );
    let t_span = fmm_trace::now_if(trace);
    let result = engine.multiply(&a, &b);
    fmm_trace::span_end(
        fmm_trace::SpanKind::RpcExecute,
        t_span,
        (m as u64) * (k as u64) * (n as u64),
    );
    match result {
        Ok(c) => {
            let t_span = fmm_trace::now_if(trace);
            let encoded = encode_matrix(&c);
            fmm_trace::span_end(
                fmm_trace::SpanKind::RpcEncode,
                t_span,
                (c.rows() * c.cols()) as u64,
            );
            Frame::MultiplyOk {
                id,
                dtype: T::DTYPE,
                m,
                n: c.cols() as u32,
                c: encoded,
            }
        }
        Err(e @ (EngineError::InnerDimMismatch { .. } | EngineError::OutputShape { .. })) => {
            error(id, ErrorCode::Shape, e.to_string())
        }
        Err(EngineError::Plan(e)) => error(id, ErrorCode::Plan, e.to_string()),
        Err(EngineError::Pool(e)) => error(id, ErrorCode::Internal, e),
    }
}

/// A bound, not-yet-running shard server. [`ShardServer::run`] blocks
/// the calling thread until the shard drains; [`ShardServer::start`]
/// runs it on a background thread (the in-process form the tests and
/// examples use).
pub struct ShardServer {
    state: Arc<ShardState>,
    listener: UnixListener,
}

impl ShardServer {
    /// Build both engines and bind the socket (replacing a stale
    /// socket file left by a crashed predecessor).
    pub fn bind(cfg: ShardConfig) -> io::Result<ShardServer> {
        let _ = std::fs::remove_file(&cfg.socket);
        if let Some(parent) = cfg.socket.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        let mk_err = |e: EngineError| io::Error::other(e.to_string());
        let engine_f64 = FmmEngine::<f64>::builder()
            .threads(cfg.threads)
            .build()
            .map_err(mk_err)?;
        let engine_f32 = FmmEngine::<f32>::builder()
            .threads(cfg.threads)
            .build()
            .map_err(mk_err)?;
        Ok(ShardServer {
            state: Arc::new(ShardState {
                cfg,
                engine_f64,
                engine_f32,
                inflight: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                drain_acked: AtomicBool::new(false),
                served: AtomicU64::new(0),
                rejected_busy: AtomicU64::new(0),
                rejected_draining: AtomicU64::new(0),
                malformed: AtomicU64::new(0),
            }),
            listener,
        })
    }

    /// Serve until drained (blocking). Returns after a drain request
    /// has been acknowledged and all inflight work finished; the
    /// socket file is removed on the way out.
    pub fn run(self) -> io::Result<()> {
        let state = Arc::clone(&self.state);
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conns = state.connections.fetch_add(1, Ordering::AcqRel) + 1;
                    let over = conns > state.cfg.max_connections as u64
                        || state.draining.load(Ordering::Relaxed);
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || {
                        if over {
                            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                            let mut stream = stream;
                            let _ = write_frame(
                                &mut stream,
                                &error(0, ErrorCode::Busy, "connection bound reached"),
                            );
                        } else {
                            handle_connection(&state, stream);
                        }
                        state.connections.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if state.draining.load(Ordering::Relaxed)
                        && state.inflight.load(Ordering::Relaxed) == 0
                        && state.drain_acked.load(Ordering::Relaxed)
                    {
                        break;
                    }
                    std::thread::sleep(state.cfg.poll_tick);
                }
                Err(e) => return Err(e),
            }
        }
        let _ = std::fs::remove_file(&state.cfg.socket);
        Ok(())
    }

    /// Run on a background thread, returning a handle that can wait
    /// for the drain-triggered exit.
    pub fn start(cfg: ShardConfig) -> io::Result<RunningShard> {
        let server = ShardServer::bind(cfg)?;
        let state = Arc::clone(&server.state);
        let thread = std::thread::spawn(move || server.run());
        Ok(RunningShard { state, thread })
    }
}

/// Handle of an in-process shard started with [`ShardServer::start`].
pub struct RunningShard {
    state: Arc<ShardState>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl RunningShard {
    /// The socket the shard serves on.
    pub fn socket(&self) -> &std::path::Path {
        &self.state.cfg.socket
    }

    /// Block until the shard exits (i.e. until something sends it a
    /// drain request).
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("shard thread panicked"))?
    }
}

/// One connection's request loop.
fn handle_connection(state: &Arc<ShardState>, mut stream: UnixStream) {
    fmm_trace::set_thread_label("shard-conn");
    // Reads poll at the config tick so an idle connection notices a
    // drain promptly; writes get a generous bound so a stalled client
    // cannot wedge the handler forever.
    let _ = stream.set_read_timeout(Some(state.cfg.poll_tick));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean close.
            Ok(None) => return,
            // Idle tick: keep serving unless the shard is draining.
            Err(WireError::IdleTimeout) => {
                if state.draining.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            // Malformed traffic: answer with a typed error (the peer
            // may still be listening) and drop the connection — after
            // a framing error the stream position is untrustworthy.
            Err(e) => {
                state.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut stream, &error(0, ErrorCode::Malformed, e.to_string()));
                return;
            }
        };
        let resp = match &frame {
            Frame::MultiplyReq { .. } => state.multiply(&frame),
            Frame::StatsReq { id } => Frame::StatsOk {
                id: *id,
                json: state.report().to_json(),
            },
            Frame::HealthReq { id } => Frame::HealthOk {
                id: *id,
                queue_depth: state.inflight.load(Ordering::Relaxed) as u32,
                draining: state.draining.load(Ordering::Relaxed),
            },
            Frame::DrainReq { id } => {
                state.draining.store(true, Ordering::SeqCst);
                // Wait out inflight work (bounded: a multiply that
                // outlives this is a bug, not a reason to hang the
                // drain forever).
                let deadline = Instant::now() + Duration::from_secs(60);
                while state.inflight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(1));
                }
                state.drain_acked.store(true, Ordering::SeqCst);
                Frame::DrainOk { id: *id }
            }
            other => error(
                other.id(),
                ErrorCode::Malformed,
                "frame kind is not a request",
            ),
        };
        let done = matches!(resp, Frame::DrainOk { .. });
        if write_frame(&mut stream, &resp).is_err() {
            // Peer went away mid-response; nothing to salvage.
            return;
        }
        if done {
            return;
        }
    }
}

/// If `FMM_TRACE_DIR` is set, turn tracing on and keep a periodically
/// refreshed Chrome-trace file in that directory, named
/// `trace-shard-<pid>.json`. The flush is write-to-temp-then-rename,
/// so a SIGKILL'd incarnation still leaves its most recent (≤ ~500 ms
/// stale) complete snapshot behind for the load generator to merge.
fn start_trace_flusher() -> Option<std::thread::JoinHandle<()>> {
    let dir = PathBuf::from(std::env::var_os("FMM_TRACE_DIR")?);
    let pid = std::process::id();
    fmm_trace::set_process_label(&format!("shard-{pid}"));
    fmm_trace::set_enabled(true);
    let path = dir.join(format!("trace-shard-{pid}.json"));
    let tmp = dir.join(format!(".trace-shard-{pid}.json.tmp"));
    let flush = move || {
        let json = fmm_trace::TraceSink::collect().export_chrome_json();
        if std::fs::write(&tmp, json).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    };
    Some(std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_millis(500));
        flush();
    }))
}

/// Blocking main of a shard worker process: bind, serve, exit when
/// drained. This is what the `fmm-shard` binary and the self-exec'd
/// worker (see [`crate::maybe_run_shard_worker`]) call.
pub fn shard_main(cfg: ShardConfig) -> io::Result<()> {
    // The flusher thread is detached: it dies with the process, and
    // clean exits below write one final up-to-date snapshot.
    let tracing = start_trace_flusher().is_some();
    let result = ShardServer::bind(cfg)?.run();
    if tracing {
        if let Some(dir) = std::env::var_os("FMM_TRACE_DIR") {
            let pid = std::process::id();
            let path = PathBuf::from(dir).join(format!("trace-shard-{pid}.json"));
            let _ = std::fs::write(&path, fmm_trace::TraceSink::collect().export_chrome_json());
        }
    }
    result
}
