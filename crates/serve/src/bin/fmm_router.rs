//! `fmm-router`: spawn a shard fleet and route multiplies onto it.
//!
//! ```text
//! fmm-router --socket /tmp/fmm.sock --shards 2 \
//!            [--socket-dir DIR] [--threads N] [--max-inflight Q] \
//!            [--shard-bin PATH]
//! ```
//!
//! By default shards are re-execs of this binary (no extra install
//! surface); `--shard-bin` points at an explicit `fmm-shard`
//! executable instead. The router serves until a client sends a drain
//! request, then drains and reaps the whole fleet.

use fmm_serve::{maybe_run_shard_worker, router_main, RouterConfig, ShardLauncher, ShardSpec};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: fmm-router --socket PATH --shards N [options]\n\
         \n\
         --socket PATH        Unix socket the router listens on (required)\n\
         --shards N           number of shard processes (required, >= 1)\n\
         --socket-dir DIR     directory for shard sockets (default: alongside router socket)\n\
         --threads N          engine pool width per shard (default 1)\n\
         --max-inflight Q     per-shard admission bound (default 8)\n\
         --shard-bin PATH     spawn PATH instead of re-execing this binary"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // If the fleet re-exec'd us as a shard worker, serve and exit.
    maybe_run_shard_worker();

    let mut socket: Option<PathBuf> = None;
    let mut shards: usize = 0;
    let mut socket_dir: Option<PathBuf> = None;
    let mut threads: usize = 1;
    let mut max_inflight: usize = 8;
    let mut shard_bin: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--shards" => shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--socket-dir" => socket_dir = Some(PathBuf::from(value("--socket-dir"))),
            "--threads" => threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--max-inflight" => {
                max_inflight = value("--max-inflight").parse().unwrap_or_else(|_| usage());
            }
            "--shard-bin" => shard_bin = Some(PathBuf::from(value("--shard-bin"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let Some(socket) = socket else { usage() };
    if shards == 0 {
        usage();
    }

    let dir = socket_dir.unwrap_or_else(|| {
        socket
            .parent()
            .map(PathBuf::from)
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let specs = (0..shards)
        .map(|i| ShardSpec {
            socket: dir.join(format!("fmm-shard-{i}.sock")),
            threads,
            max_inflight,
        })
        .collect();
    let launcher = match shard_bin {
        Some(path) => ShardLauncher::Binary(path),
        None => ShardLauncher::SelfExec,
    };

    let cfg = RouterConfig::new(socket, launcher, specs);
    eprintln!(
        "fmm-router: {} shard(s), {} thread(s)/shard, max-inflight {} — serving on {}",
        shards,
        threads,
        max_inflight,
        cfg.socket.display()
    );
    match router_main(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fmm-router: {e}");
            ExitCode::FAILURE
        }
    }
}
