//! `fmm-shard`: host one serving shard (an `FmmEngine` per dtype) on
//! a Unix-domain socket.
//!
//! ```text
//! fmm-shard --socket /tmp/fmm-shard-0.sock [--threads N] [--max-inflight Q]
//! ```
//!
//! The process serves until a client sends a drain request, then
//! finishes inflight work and exits. Normally spawned by `fmm-router`
//! (or a test harness); running it standalone gives a single-shard
//! fleet you can point `ServeClient` at directly.

use fmm_serve::{shard_main, ShardConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: fmm-shard --socket PATH [--threads N] [--max-inflight Q]\n\
         \n\
         --socket PATH        Unix socket to serve on (required)\n\
         --threads N          engine worker-pool width (default 1)\n\
         --max-inflight Q     admission bound before Busy (default 8)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut threads: usize = 1;
    let mut max_inflight: usize = 8;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--threads" => {
                threads = value("--threads").parse().unwrap_or_else(|_| usage());
            }
            "--max-inflight" => {
                max_inflight = value("--max-inflight").parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let Some(socket) = socket else { usage() };

    let cfg = ShardConfig::new(socket)
        .threads(threads)
        .max_inflight(max_inflight);
    match shard_main(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fmm-shard: {e}");
            ExitCode::FAILURE
        }
    }
}
