//! Shard-process lifecycle: spawn, health-gate, SIGKILL (chaos hook),
//! respawn, drain.
//!
//! The fleet does not route anything — it owns `std::process::Child`
//! handles and socket paths. The router (see [`crate::router`]) drives it:
//! spawn at start, respawn when a health check or a forward fails,
//! drain at shutdown.

use crate::client::ServeClient;
use crate::shard::ShardConfig;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Marker argv\[1\] of a self-exec'd shard worker (see
/// [`crate::maybe_run_shard_worker`]).
pub const SHARD_WORKER_ARG: &str = "__fmm-shard-worker";

/// How the fleet turns a [`ShardSpec`] into a process.
#[derive(Debug, Clone)]
pub enum ShardLauncher {
    /// Re-exec the *current* binary with the hidden
    /// [`SHARD_WORKER_ARG`] subcommand. Any binary using this must
    /// call [`crate::maybe_run_shard_worker`] first thing in `main`.
    SelfExec,
    /// Spawn an explicit shard binary (the `fmm-shard` bin, or
    /// `env!("CARGO_BIN_EXE_fmm-shard")` from tests) which accepts
    /// `--socket/--threads/--max-inflight` flags.
    Binary(PathBuf),
}

/// What one shard slot should look like when (re)spawned.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Socket path the shard serves on.
    pub socket: PathBuf,
    /// Engine pool width.
    pub threads: usize,
    /// Admission bound.
    pub max_inflight: usize,
}

impl ShardSpec {
    /// The equivalent in-process config.
    pub fn config(&self) -> ShardConfig {
        ShardConfig::new(&self.socket)
            .threads(self.threads)
            .max_inflight(self.max_inflight)
    }
}

/// One managed shard process slot.
struct Slot {
    spec: ShardSpec,
    child: Option<Child>,
}

/// A set of shard processes under one manager.
pub struct Fleet {
    launcher: ShardLauncher,
    slots: Vec<Slot>,
}

impl Fleet {
    /// Spawn one shard per spec and wait until every one answers a
    /// health probe (or time out).
    pub fn spawn(
        launcher: ShardLauncher,
        specs: Vec<ShardSpec>,
        ready_timeout: Duration,
    ) -> io::Result<Fleet> {
        let mut fleet = Fleet {
            launcher,
            slots: specs
                .into_iter()
                .map(|spec| Slot { spec, child: None })
                .collect(),
        };
        for i in 0..fleet.slots.len() {
            fleet.spawn_slot(i)?;
        }
        for i in 0..fleet.slots.len() {
            fleet.wait_healthy(i, ready_timeout)?;
        }
        Ok(fleet)
    }

    /// Number of shard slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the fleet manages no shards.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Socket path of slot `i`.
    pub fn socket(&self, i: usize) -> &Path {
        &self.slots[i].spec.socket
    }

    /// Launch the configured process for slot `i` (stale socket file
    /// removed first so a health probe cannot hit a dead socket).
    fn spawn_slot(&mut self, i: usize) -> io::Result<()> {
        let spec = &self.slots[i].spec;
        let _ = std::fs::remove_file(&spec.socket);
        let mut cmd = match &self.launcher {
            ShardLauncher::SelfExec => {
                let exe = std::env::current_exe()?;
                let mut cmd = Command::new(exe);
                cmd.arg(SHARD_WORKER_ARG)
                    .arg(&spec.socket)
                    .arg(spec.threads.to_string())
                    .arg(spec.max_inflight.to_string());
                cmd
            }
            ShardLauncher::Binary(path) => {
                let mut cmd = Command::new(path);
                cmd.arg("--socket")
                    .arg(&spec.socket)
                    .arg("--threads")
                    .arg(spec.threads.to_string())
                    .arg("--max-inflight")
                    .arg(spec.max_inflight.to_string());
                cmd
            }
        };
        // A shard inheriting the parent's stdout would interleave with
        // harness CSV; keep stderr for diagnostics.
        let child = cmd.stdout(Stdio::null()).spawn()?;
        self.slots[i].child = Some(child);
        Ok(())
    }

    /// Poll slot `i` until it answers a health probe.
    pub fn wait_healthy(&mut self, i: usize, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.probe(i) {
                return Ok(());
            }
            // A child that already exited will never come up.
            if !self.process_alive(i) {
                return Err(io::Error::other(format!(
                    "shard {i} exited before becoming healthy"
                )));
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("shard {i} not healthy within {timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// One health round-trip against slot `i`.
    pub fn probe(&self, i: usize) -> bool {
        let path = &self.slots[i].spec.socket;
        match ServeClient::connect_with_timeout(path, Duration::from_secs(2)) {
            Ok(mut client) => client.health().is_ok(),
            Err(_) => false,
        }
    }

    /// Is the slot's process still running (`try_wait` says not
    /// exited)? A slot never spawned reports dead.
    pub fn process_alive(&mut self, i: usize) -> bool {
        match &mut self.slots[i].child {
            Some(child) => matches!(child.try_wait(), Ok(None)),
            None => false,
        }
    }

    /// Chaos hook: SIGKILL slot `i`'s process (no drain, no warning) —
    /// exactly what a crashed or OOM-killed shard looks like to the
    /// router. The robustness tests use this.
    pub fn kill(&mut self, i: usize) -> io::Result<()> {
        if let Some(child) = &mut self.slots[i].child {
            child.kill()?;
            let _ = child.wait();
        }
        Ok(())
    }

    /// Replace slot `i`'s process: reap whatever is left of the old
    /// one, spawn a fresh shard on the same socket, wait for health.
    pub fn respawn(&mut self, i: usize, ready_timeout: Duration) -> io::Result<()> {
        if let Some(mut child) = self.slots[i].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.spawn_slot(i)?;
        self.wait_healthy(i, ready_timeout)
    }

    /// Graceful fleet shutdown: drain every shard (stop admission,
    /// finish inflight, exit), then reap; a shard that ignores the
    /// drain is killed.
    pub fn shutdown(mut self) {
        for slot in &mut self.slots {
            if let Ok(mut client) =
                ServeClient::connect_with_timeout(&slot.spec.socket, Duration::from_secs(5))
            {
                let _ = client.drain();
            }
            if let Some(mut child) = slot.child.take() {
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            let _ = std::fs::remove_file(&slot.spec.socket);
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Last-resort cleanup: never leave orphan shard processes.
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            let _ = std::fs::remove_file(&slot.spec.socket);
        }
    }
}
