//! [`ServeClient`]: the typed client side of the wire protocol.
//!
//! One client owns one Unix-domain socket connection to a router (or
//! directly to a shard — the protocol is identical). The sync
//! [`ServeClient::multiply`] round-trips one request;
//! [`ServeClient::multiply_batch`] pipelines a whole batch — every
//! request is written before the first response is read, so the
//! connection never idles on a round trip between consecutive
//! products.

use crate::wire::{
    decode_matrix, encode_matrix, read_frame, write_frame, ErrorCode, Frame, WireError, WireScalar,
    MAX_FRAME,
};
use fmm_matrix::DenseMatrix;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Why a serve request failed, client-side view.
#[derive(Debug)]
pub enum ServeError {
    /// Could not connect to the serving socket.
    Connect(io::Error),
    /// Transport or framing failure on an established connection.
    Wire(WireError),
    /// The remote reported a typed failure.
    Remote {
        /// Typed failure class from the wire.
        code: ErrorCode,
        /// Remote detail message.
        message: String,
    },
    /// The remote sent a frame that does not answer the request.
    Protocol(String),
    /// `A.cols != B.rows` — rejected before anything hits the wire.
    ShapeMismatch {
        /// Columns of A.
        a_cols: usize,
        /// Rows of B.
        b_rows: usize,
    },
    /// The operands exceed what one frame may carry ([`MAX_FRAME`]).
    TooLarge,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Connect(e) => write!(f, "connect: {e}"),
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Remote { code, message } => write!(f, "remote [{code}]: {message}"),
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::ShapeMismatch { a_cols, b_rows } => {
                write!(
                    f,
                    "inner dimension mismatch: A has {a_cols} cols, B has {b_rows} rows"
                )
            }
            ServeError::TooLarge => write!(f, "operands exceed the {MAX_FRAME}-byte frame cap"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// Instantaneous liveness info from a [`Frame::HealthOk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// Multiplies currently inflight at the responder.
    pub queue_depth: u32,
    /// True once the responder is draining.
    pub draining: bool,
}

/// A connection to a serving socket (router or shard).
#[derive(Debug)]
pub struct ServeClient {
    stream: UnixStream,
    next_id: u64,
}

impl ServeClient {
    /// Connect with the default 30-second I/O timeout.
    pub fn connect(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::connect_with_timeout(path, Duration::from_secs(30))
    }

    /// Connect; `io_timeout` bounds every read and write, so a dead or
    /// wedged server surfaces as an error instead of a hang.
    pub fn connect_with_timeout(
        path: impl AsRef<Path>,
        io_timeout: Duration,
    ) -> Result<Self, ServeError> {
        let stream = UnixStream::connect(path.as_ref()).map_err(ServeError::Connect)?;
        stream
            .set_read_timeout(Some(io_timeout))
            .map_err(ServeError::Connect)?;
        stream
            .set_write_timeout(Some(io_timeout))
            .map_err(ServeError::Connect)?;
        Ok(ServeClient { stream, next_id: 1 })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Read the response to request `id`. Responses on one connection
    /// arrive in request order; an unexpected id is a protocol error.
    fn read_response(&mut self, id: u64) -> Result<Frame, ServeError> {
        let frame = match read_frame(&mut self.stream)? {
            Some(f) => f,
            None => {
                return Err(ServeError::Wire(WireError::Truncated));
            }
        };
        if frame.id() != id {
            return Err(ServeError::Protocol(format!(
                "response id {} does not match request id {id}",
                frame.id()
            )));
        }
        Ok(frame)
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame, ServeError> {
        write_frame(&mut self.stream, frame)?;
        self.read_response(frame.id())
    }

    /// Build (and validate) one multiply request frame.
    fn multiply_frame<T: WireScalar>(
        &mut self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> Result<Frame, ServeError> {
        let (m, ka) = a.shape();
        let (kb, n) = b.shape();
        if ka != kb {
            return Err(ServeError::ShapeMismatch {
                a_cols: ka,
                b_rows: kb,
            });
        }
        let elem = std::mem::size_of::<T>();
        let too_big = |rows: usize, cols: usize| {
            rows > u32::MAX as usize
                || cols > u32::MAX as usize
                || rows.saturating_mul(cols).saturating_mul(elem) > MAX_FRAME
        };
        if too_big(m, ka) || too_big(kb, n) || too_big(m, n) {
            return Err(ServeError::TooLarge);
        }
        Ok(Frame::MultiplyReq {
            id: self.fresh_id(),
            dtype: T::DTYPE,
            m: m as u32,
            k: ka as u32,
            n: n as u32,
            a: encode_matrix(a),
            b: encode_matrix(b),
        })
    }

    /// Turn a multiply response frame into the product matrix.
    fn multiply_result<T: WireScalar>(
        expected: (usize, usize),
        frame: Frame,
    ) -> Result<DenseMatrix<T>, ServeError> {
        match frame {
            Frame::MultiplyOk { dtype, m, n, c, .. } => {
                if dtype != T::DTYPE || (m as usize, n as usize) != expected {
                    return Err(ServeError::Protocol(format!(
                        "product shape/dtype {m}x{n}/{dtype:?} does not match request"
                    )));
                }
                Ok(decode_matrix::<T>(m as usize, n as usize, &c)?)
            }
            Frame::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected a multiply response, got frame kind {other:?}"
            ))),
        }
    }

    /// `C = A · B`, served remotely. Blocks for one round trip.
    pub fn multiply<T: WireScalar>(
        &mut self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> Result<DenseMatrix<T>, ServeError> {
        let frame = self.multiply_frame(a, b)?;
        let expected = (a.rows(), b.cols());
        let resp = self.request(&frame)?;
        Self::multiply_result(expected, resp)
    }

    /// Pipelined batch: write every request, then read every response.
    /// Per-product failures (e.g. one `Busy`) come back as per-slot
    /// `Err`; a transport failure aborts the whole batch since the
    /// stream can no longer be trusted to be aligned.
    #[allow(clippy::type_complexity)]
    pub fn multiply_batch<T: WireScalar>(
        &mut self,
        batch: &[(DenseMatrix<T>, DenseMatrix<T>)],
    ) -> Result<Vec<Result<DenseMatrix<T>, ServeError>>, ServeError> {
        let mut ids = Vec::with_capacity(batch.len());
        for (a, b) in batch {
            let frame = self.multiply_frame(a, b)?;
            ids.push((frame.id(), (a.rows(), b.cols())));
            write_frame(&mut self.stream, &frame)?;
        }
        let mut out = Vec::with_capacity(batch.len());
        for (id, expected) in ids {
            let resp = self.read_response(id)?;
            out.push(Self::multiply_result(expected, resp));
        }
        Ok(out)
    }

    /// Statistics snapshot: a shard answers with its
    /// `ShardStatsReport` JSON, a router with its aggregated
    /// `FleetStats` JSON.
    pub fn stats_json(&mut self) -> Result<String, ServeError> {
        let id = self.fresh_id();
        match self.request(&Frame::StatsReq { id })? {
            Frame::StatsOk { json, .. } => Ok(json),
            Frame::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected StatsOk, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn health(&mut self) -> Result<HealthInfo, ServeError> {
        let id = self.fresh_id();
        match self.request(&Frame::HealthReq { id })? {
            Frame::HealthOk {
                queue_depth,
                draining,
                ..
            } => Ok(HealthInfo {
                queue_depth,
                draining,
            }),
            Frame::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected HealthOk, got {other:?}"
            ))),
        }
    }

    /// Ask the server to drain: finish inflight work, refuse new work,
    /// and (for a shard) exit. Returns once the drain is acknowledged.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        let id = self.fresh_id();
        match self.request(&Frame::DrainReq { id })? {
            Frame::DrainOk { .. } => Ok(()),
            Frame::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected DrainOk, got {other:?}"
            ))),
        }
    }
}
