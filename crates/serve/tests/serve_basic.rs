//! Client ↔ shard integration over a real Unix socket: bitwise
//! correctness against `Plan::execute`, pipelined batches, admission
//! control, the stats RPC, and the drain handshake.

use fmm_core::{FmmEngine, Workspace};
use fmm_matrix::DenseMatrix;
use fmm_serve::{ServeClient, ServeError, ShardConfig, ShardServer, ShardStatsReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn socket(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fmm-serve-basic-{}-{name}.sock",
        std::process::id()
    ))
}

/// The single-threaded `Plan::execute` reference the engine (and so
/// the whole serving stack) must match bitwise.
fn reference(a: &DenseMatrix<f64>, b: &DenseMatrix<f64>) -> DenseMatrix<f64> {
    let engine = FmmEngine::<f64>::builder().build().expect("engine");
    let plan = engine.plan_for(a.rows(), a.cols(), b.cols()).expect("plan");
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    let mut ws = Workspace::for_plan(&plan);
    plan.execute(a, b, &mut c, &mut ws);
    c
}

#[test]
fn served_multiply_is_bitwise_identical_to_plan_execute() {
    let shard = ShardServer::start(ShardConfig::new(socket("bitwise"))).expect("start shard");
    let mut client = ServeClient::connect(shard.socket()).expect("connect");

    let mut rng = StdRng::seed_from_u64(7);
    for &(m, k, n) in &[
        (64usize, 64usize, 64usize),
        (33, 70, 21),
        (1, 5, 1),
        (96, 48, 80),
    ] {
        let a = DenseMatrix::<f64>::random(m, k, &mut rng);
        let b = DenseMatrix::<f64>::random(k, n, &mut rng);
        let served = client.multiply(&a, &b).expect("served multiply");
        let local = reference(&a, &b);
        assert_eq!(
            served.as_slice(),
            local.as_slice(),
            "served {m}x{k}x{n} differs from Plan::execute"
        );
    }

    client.drain().expect("drain");
    shard.join().expect("shard exits after drain");
}

#[test]
fn f32_and_pipelined_batches_serve_correctly() {
    let shard = ShardServer::start(ShardConfig::new(socket("batch"))).expect("start shard");
    let mut client = ServeClient::connect(shard.socket()).expect("connect");

    // f32 rides the same shard (second hosted engine).
    let mut rng = StdRng::seed_from_u64(11);
    let a32 = DenseMatrix::<f32>::random(40, 52, &mut rng);
    let b32 = DenseMatrix::<f32>::random(52, 36, &mut rng);
    let engine32 = FmmEngine::<f32>::builder().build().expect("engine");
    let want32 = engine32.multiply(&a32, &b32).expect("local f32");
    let got32 = client.multiply(&a32, &b32).expect("served f32");
    assert_eq!(got32.as_slice(), want32.as_slice());

    // A pipelined batch of mixed shapes returns per-slot results in
    // request order.
    let batch: Vec<(DenseMatrix<f64>, DenseMatrix<f64>)> = (0..6)
        .map(|i| {
            let (m, k, n) = (32 + 8 * i, 48, 24 + 4 * i);
            (
                DenseMatrix::random(m, k, &mut rng),
                DenseMatrix::random(k, n, &mut rng),
            )
        })
        .collect();
    let results = client.multiply_batch(&batch).expect("batch transport");
    assert_eq!(results.len(), batch.len());
    for ((a, b), result) in batch.iter().zip(results) {
        let got = result.expect("batch slot");
        assert_eq!(got.as_slice(), reference(a, b).as_slice());
    }

    client.drain().expect("drain");
    shard.join().expect("shard exits");
}

#[test]
fn shape_mismatch_is_rejected_client_side_and_server_side() {
    let shard = ShardServer::start(ShardConfig::new(socket("shape"))).expect("start shard");
    let mut client = ServeClient::connect(shard.socket()).expect("connect");

    let mut rng = StdRng::seed_from_u64(3);
    let a = DenseMatrix::<f64>::random(8, 9, &mut rng);
    let b = DenseMatrix::<f64>::random(10, 8, &mut rng);
    match client.multiply(&a, &b) {
        Err(ServeError::ShapeMismatch {
            a_cols: 9,
            b_rows: 10,
        }) => {}
        other => panic!("expected client-side shape rejection, got {other:?}"),
    }

    // The connection survives a rejected request.
    let b_ok = DenseMatrix::<f64>::random(9, 8, &mut rng);
    client.multiply(&a, &b_ok).expect("connection still usable");

    client.drain().expect("drain");
    shard.join().expect("shard exits");
}

#[test]
fn stats_rpc_reports_served_work() {
    let shard = ShardServer::start(ShardConfig::new(socket("stats"))).expect("start shard");
    let mut client = ServeClient::connect(shard.socket()).expect("connect");

    let mut rng = StdRng::seed_from_u64(5);
    let a = DenseMatrix::<f64>::random(32, 32, &mut rng);
    let b = DenseMatrix::<f64>::random(32, 32, &mut rng);
    for _ in 0..5 {
        client.multiply(&a, &b).expect("serve");
    }

    let report = ShardStatsReport::from_json(&client.stats_json().expect("stats rpc"))
        .expect("parse report");
    assert_eq!(report.served, 5);
    assert_eq!(report.engine_f64.multiplies, 5);
    assert_eq!(report.engine_f32.multiplies, 0);
    assert_eq!(report.engine_multiplies(), 5);
    assert!(!report.draining);
    // One shape, five requests: the plan cache worked.
    assert_eq!(report.engine_f64.plan_cache_misses, 1);
    assert_eq!(report.engine_f64.plan_cache_hits, 4);

    let health = client.health().expect("health rpc");
    assert_eq!(health.queue_depth, 0);
    assert!(!health.draining);

    client.drain().expect("drain");
    shard.join().expect("shard exits");
}

#[test]
fn draining_shard_refuses_new_work_with_typed_error() {
    let shard = ShardServer::start(ShardConfig::new(socket("drain"))).expect("start shard");
    let mut rng = StdRng::seed_from_u64(9);
    let a = DenseMatrix::<f64>::random(16, 16, &mut rng);
    let b = DenseMatrix::<f64>::random(16, 16, &mut rng);

    // Second connection drains the shard while the first stays open.
    let mut closer = ServeClient::connect(shard.socket()).expect("connect closer");
    let mut client = ServeClient::connect(shard.socket()).expect("connect client");
    client.multiply(&a, &b).expect("pre-drain multiply");
    closer.drain().expect("drain");

    // In-flight connections now get a typed Draining rejection (until
    // the process exits and the socket disappears entirely).
    match client.multiply(&a, &b) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, fmm_serve::ErrorCode::Draining);
        }
        // The shard may already have torn the socket down.
        Err(ServeError::Wire(_)) | Err(ServeError::Connect(_)) => {}
        Ok(_) => panic!("a draining shard must not serve new work"),
        Err(other) => panic!("unexpected error: {other}"),
    }

    shard.join().expect("shard exits after drain");
}
