//! Fleet robustness: a router over two real shard *processes*, one of
//! which is SIGKILLed mid-stream. The router must absorb the crash —
//! retrying interrupted work onto the surviving sibling and respawning
//! the dead shard — with zero client-visible failures, every product
//! bitwise identical to `Plan::execute`, and the fleet's multiply
//! accounting still consistent afterwards.

use fmm_core::{FmmEngine, Workspace};
use fmm_matrix::DenseMatrix;
use fmm_serve::{
    shape_hash, start_router, RouterConfig, ServeClient, ShardLauncher, ShardSpec, WireDtype,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: usize = 2;
const REQUESTS_PER_CLIENT: usize = 100;
/// Completions observed before the kill lands.
const KILL_AFTER: u64 = 40;

fn socket_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fmm-robustness-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    dir
}

#[test]
fn killing_a_shard_mid_stream_is_invisible_to_clients() {
    let dir = socket_dir();
    let specs = (0..2)
        .map(|i| ShardSpec {
            socket: dir.join(format!("shard-{i}.sock")),
            threads: 1,
            max_inflight: 8,
        })
        .collect();
    let shard_bin = PathBuf::from(env!("CARGO_BIN_EXE_fmm-shard"));
    let cfg = RouterConfig::new(
        dir.join("router.sock"),
        ShardLauncher::Binary(shard_bin),
        specs,
    );
    let router = start_router(cfg).expect("start router + 2 shard processes");

    // Pick 4 shapes whose placement hash covers BOTH shards (the
    // router's placement is deterministic, so select against it):
    // killing a shard must interrupt real traffic, and the survivor
    // must hold its own traffic plus the retries.
    let candidates = [
        (48usize, 48usize, 48usize),
        (32, 64, 32),
        (64, 32, 16),
        (50, 50, 50),
        (40, 56, 40),
        (56, 40, 24),
        (44, 44, 44),
        (36, 60, 28),
    ];
    let slot_of =
        |&(m, k, n): &(usize, usize, usize)| (shape_hash(m, k, n, WireDtype::F64) % 2) as usize;
    let mut by_slot: [Vec<(usize, usize, usize)>; 2] = [Vec::new(), Vec::new()];
    for s in &candidates {
        by_slot[slot_of(s)].push(*s);
    }
    assert!(
        by_slot[0].len() >= 2 && by_slot[1].len() >= 2,
        "candidate shapes do not cover both shards: {by_slot:?}"
    );
    // Two shapes per shard; references computed by a local engine
    // (engine results are deterministic across processes and widths).
    let shapes = [by_slot[0][0], by_slot[1][0], by_slot[0][1], by_slot[1][1]];
    // Kill the shard that owns shapes[0] — it is guaranteed to have
    // live traffic when the kill lands.
    let kill_slot = slot_of(&shapes[0]);
    let engine = FmmEngine::<f64>::builder().build().expect("engine");
    let problems: Vec<(DenseMatrix<f64>, DenseMatrix<f64>)> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(p, q, r))| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(42 + i as u64);
            (
                DenseMatrix::random(p, q, &mut rng),
                DenseMatrix::random(q, r, &mut rng),
            )
        })
        .collect();
    let expected: Vec<DenseMatrix<f64>> = problems
        .iter()
        .map(|(a, b)| {
            let plan = engine.plan_for(a.rows(), a.cols(), b.cols()).expect("plan");
            let mut c = DenseMatrix::zeros(a.rows(), b.cols());
            let mut ws = Workspace::for_plan(&plan);
            plan.execute(a, b, &mut c, &mut ws);
            c
        })
        .collect();

    let done = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let problems = &problems;
            let expected = &expected;
            let done = &done;
            let failures = &failures;
            let mismatches = &mismatches;
            let router = &router;
            scope.spawn(move || {
                let mut client = ServeClient::connect(router.socket()).expect("connect to router");
                for req in 0..REQUESTS_PER_CLIENT {
                    let idx = (client_idx + req) % problems.len();
                    let (a, b) = &problems[idx];
                    match client.multiply(a, b) {
                        Ok(c) => {
                            if c.as_slice() != expected[idx].as_slice() {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("client {client_idx} request {req} failed: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // Chaos, deterministically mid-stream: once enough requests
        // completed, SIGKILL shard 0 while traffic keeps flowing.
        let deadline = Instant::now() + Duration::from_secs(60);
        while done.load(Ordering::Relaxed) < KILL_AFTER {
            assert!(Instant::now() < deadline, "stream stalled before the kill");
            std::thread::sleep(Duration::from_millis(1));
        }
        router.kill_shard(kill_slot).expect("SIGKILL shard");
        eprintln!(
            "killed shard {kill_slot} after {} completions",
            done.load(Ordering::Relaxed)
        );
    });

    // Zero client-visible failures and bitwise-identical results,
    // through a SIGKILL.
    assert_eq!(failures.load(Ordering::Relaxed), 0, "clients saw failures");
    assert_eq!(mismatches.load(Ordering::Relaxed), 0, "results drifted");
    assert_eq!(
        done.load(Ordering::Relaxed),
        (CLIENTS * REQUESTS_PER_CLIENT) as u64
    );

    // The supervisor must respawn the dead shard (it may still be in
    // flight when the stream ends — poll).
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let stats = router.fleet_stats();
        let killed = &stats.slots[kill_slot];
        if killed.respawns >= 1 && killed.healthy {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "shard {kill_slot} was not respawned: {}",
            stats.to_json()
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(stats.router.respawns >= 1);

    // Accounting survives the kill: live engine counters plus the
    // router's reconstruction of dead incarnations equal exactly the
    // multiplies clients saw complete.
    let completions = stats.router.completions;
    assert_eq!(completions, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert_eq!(
        stats.shard_multiplies(),
        completions,
        "fleet accounting inconsistent: {}",
        stats.to_json()
    );
    let slot_ok_sum: u64 = stats.slots.iter().map(|s| s.ok_total).sum();
    assert_eq!(slot_ok_sum, completions);
    // Both shards actually served traffic (the shape mix spreads).
    assert!(stats.slots.iter().all(|s| s.ok_total > 0));

    router.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
