//! Property tests of the wire protocol: every frame round-trips
//! bitwise through encode/decode across all dtypes, ragged shapes,
//! and error variants — and no truncation or corruption of the byte
//! stream can panic, hang, or silently mis-decode a frame.

use fmm_matrix::DenseMatrix;
use fmm_serve::wire::{
    decode_matrix, encode_matrix, read_frame, write_frame, ErrorCode, Frame, WireDtype, WireError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;

fn dtype_of(tag: u8) -> WireDtype {
    if tag.is_multiple_of(2) {
        WireDtype::F64
    } else {
        WireDtype::F32
    }
}

fn code_of(tag: u8) -> ErrorCode {
    match tag % 8 {
        0 => ErrorCode::Busy,
        1 => ErrorCode::Shape,
        2 => ErrorCode::Plan,
        3 => ErrorCode::BadDtype,
        4 => ErrorCode::Malformed,
        5 => ErrorCode::Internal,
        6 => ErrorCode::Draining,
        _ => ErrorCode::Unavailable,
    }
}

/// Random little-endian scalar payload for an `rows × cols` matrix.
fn matrix_bytes(rows: usize, cols: usize, dtype: WireDtype, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dtype {
        WireDtype::F64 => encode_matrix(&DenseMatrix::<f64>::random(rows, cols, &mut rng)),
        WireDtype::F32 => encode_matrix(&DenseMatrix::<f32>::random(rows, cols, &mut rng)),
        WireDtype::Gf2 => unreachable!("gf2 has no wire transport yet"),
    }
}

/// Write `frame` through the stream layer and collect the raw bytes
/// (length prefix included).
fn to_stream_bytes(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame).expect("write to Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multiply_frames_roundtrip_all_dtypes_and_ragged_shapes(
        id in 0u64..u64::MAX,
        dtype_tag in 0u8..2,
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in 0u64..1000,
    ) {
        let dtype = dtype_of(dtype_tag);
        let req = Frame::MultiplyReq {
            id,
            dtype,
            m: m as u32,
            k: k as u32,
            n: n as u32,
            a: matrix_bytes(m, k, dtype, seed),
            b: matrix_bytes(k, n, dtype, seed ^ 0x5a5a),
        };
        prop_assert_eq!(&Frame::decode(&req.encode()).unwrap(), &req);

        let ok = Frame::MultiplyOk {
            id,
            dtype,
            m: m as u32,
            n: n as u32,
            c: matrix_bytes(m, n, dtype, seed ^ 0xc3c3),
        };
        prop_assert_eq!(&Frame::decode(&ok.encode()).unwrap(), &ok);

        // The stream layer (length prefix) round-trips too.
        let bytes = to_stream_bytes(&req);
        let got = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
        prop_assert_eq!(&got, &req);
    }

    #[test]
    fn matrix_payloads_roundtrip_bitwise(
        rows in 0usize..24,
        cols in 0usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m64 = DenseMatrix::<f64>::random(rows, cols, &mut rng);
        let back = decode_matrix::<f64>(rows, cols, &encode_matrix(&m64)).unwrap();
        prop_assert_eq!(m64.as_slice(), back.as_slice());

        let m32 = DenseMatrix::<f32>::random(rows, cols, &mut rng);
        let back = decode_matrix::<f32>(rows, cols, &encode_matrix(&m32)).unwrap();
        prop_assert_eq!(m32.as_slice(), back.as_slice());
    }

    #[test]
    fn control_and_error_frames_roundtrip(
        id in 0u64..u64::MAX,
        code_tag in 0u8..8,
        msg_seed in 0u64..10_000,
        msg_len in 0usize..80,
        queue_depth in 0u32..u32::MAX,
        draining_tag in 0u8..2,
    ) {
        // Messages cover empty, ASCII, and multi-byte UTF-8.
        let message: String = format!("err-{msg_seed}-µß™")
            .chars()
            .cycle()
            .take(msg_len)
            .collect();
        let json = format!("{{\"seed\": {msg_seed}}}");
        let draining = draining_tag == 1;
        let frames = [
            Frame::Error { id, code: code_of(code_tag), message },
            Frame::StatsReq { id },
            Frame::StatsOk { id, json },
            Frame::HealthReq { id },
            Frame::HealthOk { id, queue_depth, draining },
            Frame::DrainReq { id },
            Frame::DrainOk { id },
        ];
        for frame in &frames {
            prop_assert_eq!(&Frame::decode(&frame.encode()).unwrap(), frame);
            let bytes = to_stream_bytes(frame);
            let got = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
            prop_assert_eq!(&got, frame);
        }
    }

    #[test]
    fn truncated_streams_are_rejected_not_hung(
        m in 1usize..8,
        k in 1usize..8,
        n in 1usize..8,
        seed in 0u64..200,
        cut_frac in 0.0f64..1.0,
    ) {
        let dtype = dtype_of(seed as u8);
        let frame = Frame::MultiplyReq {
            id: 7,
            dtype,
            m: m as u32,
            k: k as u32,
            n: n as u32,
            a: matrix_bytes(m, k, dtype, seed),
            b: matrix_bytes(k, n, dtype, seed + 1),
        };
        let bytes = to_stream_bytes(&frame);
        // Cut strictly inside the frame: the reader must report a
        // typed truncation, never block or panic.
        let cut = 1 + ((bytes.len() - 2) as f64 * cut_frac) as usize;
        let result = read_frame(&mut Cursor::new(&bytes[..cut]));
        prop_assert!(
            matches!(result, Err(WireError::Truncated)),
            "cut at {cut}/{} gave {result:?}", bytes.len()
        );
        // An empty stream is a clean close, not an error.
        prop_assert!(matches!(read_frame(&mut Cursor::new(&[][..])), Ok(None)));
    }

    #[test]
    fn corrupted_payloads_never_panic_and_bad_headers_are_typed(
        m in 1usize..8,
        n in 1usize..8,
        seed in 0u64..200,
        flip_at_frac in 0.0f64..1.0,
        flip_bits in 1u8..255,
    ) {
        let dtype = dtype_of(seed as u8);
        let frame = Frame::MultiplyOk {
            id: 9,
            dtype,
            m: m as u32,
            n: n as u32,
            c: matrix_bytes(m, n, dtype, seed),
        };
        let payload = frame.encode();

        // Arbitrary single-byte corruption: decode is total — it may
        // reject, or (for a data-byte flip) decode different contents,
        // but it must never panic.
        let mut corrupted = payload.clone();
        let at = ((corrupted.len() - 1) as f64 * flip_at_frac) as usize;
        corrupted[at] ^= flip_bits;
        let _ = Frame::decode(&corrupted);

        // Header corruption is always a *typed* rejection.
        let mut bad_version = payload.clone();
        bad_version[0] ^= flip_bits;
        prop_assert!(matches!(
            Frame::decode(&bad_version),
            Err(WireError::BadVersion(_))
        ));

        let mut bad_kind = payload.clone();
        bad_kind[1] = 0;
        prop_assert!(matches!(Frame::decode(&bad_kind), Err(WireError::BadKind(0))));

        // Declaring a longer body than is present is a length error.
        let mut short = payload.clone();
        short.truncate(payload.len() - 1);
        prop_assert!(matches!(
            Frame::decode(&short),
            Err(WireError::BadLength { .. }) | Err(WireError::Truncated)
        ));
    }

    #[test]
    fn malformed_length_prefixes_are_typed_errors(
        declared in 0u32..u32::MAX,
    ) {
        // A stream whose 4-byte prefix declares `declared` bytes but
        // carries none: either truncated (plausible prefix) or
        // oversized (prefix beyond MAX_FRAME) — decided *before* any
        // allocation, and never a hang.
        let bytes = declared.to_le_bytes();
        let result = read_frame(&mut Cursor::new(&bytes[..]));
        match result {
            Err(WireError::Truncated) => {
                prop_assert!(declared >= 1);
                prop_assert!((declared as usize) <= fmm_serve::wire::MAX_FRAME);
            }
            // A zero-length payload decodes (vacuously complete) and
            // is rejected as too short for even a header.
            Err(WireError::BadLength { .. }) => prop_assert!(declared == 0),
            Err(WireError::Oversized(len)) => {
                prop_assert!(len > fmm_serve::wire::MAX_FRAME);
            }
            other => prop_assert!(false, "expected a typed rejection, got {other:?}"),
        }
    }
}
