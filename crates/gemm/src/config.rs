//! Blocking configuration for the packed gemm.

/// Cache-blocking parameters in the GotoBLAS/BLIS taxonomy.
///
/// * `mc × kc` panels of `A` are packed to fit in L2,
/// * `kc × nc` panels of `B` are packed to fit in L3 (or stay streamable),
/// * the register microkernel computes an `MR × NR` tile of `C`.
///
/// `MR`/`NR` are compile-time constants (`packed::MR`, `packed::NR`);
/// the runtime parameters here are the loop tile sizes, exposed so the
/// benchmark harness can ablate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Rows of the packed A panel.
    pub mc: usize,
    /// Shared (inner) dimension of both packed panels.
    pub kc: usize,
    /// Columns of the packed B panel.
    pub nc: usize,
    /// Problems with `max(m,k,n)` at or below this size skip packing and
    /// use the direct small-kernel path (packing overhead dominates there).
    pub small_cutoff: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        GemmConfig {
            mc: 128,
            kc: 256,
            nc: 2048,
            small_cutoff: 32,
        }
    }
}

impl GemmConfig {
    /// Validate that the configuration is usable.
    pub fn validated(self) -> Result<Self, String> {
        if self.mc == 0 || self.kc == 0 || self.nc == 0 {
            return Err("block sizes must be positive".into());
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GemmConfig::default().validated().is_ok());
    }

    #[test]
    fn zero_block_rejected() {
        let cfg = GemmConfig {
            mc: 0,
            ..GemmConfig::default()
        };
        assert!(cfg.validated().is_err());
    }
}
