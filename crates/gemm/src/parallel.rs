//! Rayon-parallel gemm driver.
//!
//! Splits the output recursively — along *both* dimensions — into
//! enough pieces that the work-stealing runtime can balance them, then
//! runs the packed sequential kernel on each piece. The pool width is
//! re-read from the runtime on every call (not captured at
//! configuration time), so the same code adapts when it runs inside a
//! caller-provided `rayon::ThreadPool` (via `pool.install`) — which is
//! how the harness reproduces the paper's 6-core vs 24-core sweeps at
//! this machine's scale — or under an `FMM_THREADS` override.

use crate::config::GemmConfig;
use fmm_matrix::{MatMut, MatRef};

use crate::{gemm_with, GemmScalar};

/// Below this many output elements a split is never worthwhile.
const MIN_PAR_ELEMS: usize = 64 * 64;

/// Pieces per advertised thread. Oversplitting a little keeps every
/// deque stocked with stealable work, so a worker that finishes early
/// (or a pool that grew between calls) still finds something to take.
const OVERSPLIT: usize = 2;

/// Parallel `C ← α·A·B + β·C` using the current rayon pool and the
/// default blocking configuration.
pub fn par_gemm<T: GemmScalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    par_gemm_with(&GemmConfig::default(), alpha, a, b, beta, c);
}

/// Parallel gemm with explicit blocking configuration.
pub fn par_gemm_with<T: GemmScalar>(
    cfg: &GemmConfig,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    assert_eq!(b.rows(), a.cols(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "output cols mismatch");
    // Pool width at *call* time: the same function parallelizes
    // differently inside `pool.install(..)` than outside it. A width-1
    // pool runs the whole product unsplit — oversplitting there would
    // only add packing overhead to single-thread baselines.
    let width = rayon::current_num_threads();
    let ways = if width > 1 { width * OVERSPLIT } else { 1 };
    split_run(cfg, alpha, a, b, beta, c, ways);
}

fn split_run<T: GemmScalar>(
    cfg: &GemmConfig,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
    ways: usize,
) {
    let (m, n) = (c.rows(), c.cols());
    if ways <= 1 || m * n <= MIN_PAR_ELEMS || (m < 2 && n < 2) {
        gemm_with(cfg, alpha, a, b, beta, c);
        return;
    }
    let lo_ways = ways / 2;
    let hi_ways = ways - lo_ways;
    // Halve the longer dimension; when one dimension cannot split any
    // further (`ways` exceeding the row count, or a single-row strip),
    // the other absorbs the surplus, so tall, wide and square outputs
    // all decompose into ~`ways` tiles.
    let split_rows = if m < 2 {
        false
    } else if n < 2 {
        true
    } else {
        m >= n
    };
    if split_rows {
        let mid = m / 2;
        let (ctop, cbot) = c.split_at_row(mid);
        let atop = a.block(0, 0, mid, a.cols());
        let abot = a.block(mid, 0, m - mid, a.cols());
        rayon::join(
            || split_run(cfg, alpha, atop, b, beta, ctop, hi_ways),
            || split_run(cfg, alpha, abot, b, beta, cbot, lo_ways),
        );
    } else {
        let mid = n / 2;
        let (cleft, cright) = c.split_at_col(mid);
        let bleft = b.block(0, 0, b.rows(), mid);
        let bright = b.block(0, mid, b.rows(), n - mid);
        rayon::join(
            || split_run(cfg, alpha, a, bleft, beta, cleft, hi_ways),
            || split_run(cfg, alpha, a, bright, beta, cright, lo_ways),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_gemm;
    use fmm_matrix::{max_abs_diff, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_naive() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in &[(64usize, 64usize, 64usize), (301, 97, 403), (150, 300, 40)] {
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c1.as_mut());
            par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut());
            let d = max_abs_diff(&c1.as_ref(), &c2.as_ref()).unwrap();
            assert!(d < 1e-10 * k as f64, "mismatch {d} at {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_beta_accumulation() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = Matrix::random(200, 64, &mut rng);
        let b = Matrix::random(64, 200, &mut rng);
        let c0 = Matrix::random(200, 200, &mut rng);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        naive_gemm(1.5, a.as_ref(), b.as_ref(), -1.0, c1.as_mut());
        par_gemm(1.5, a.as_ref(), b.as_ref(), -1.0, c2.as_mut());
        assert!(max_abs_diff(&c1.as_ref(), &c2.as_ref()).unwrap() < 1e-10);
    }

    #[test]
    fn wide_pool_on_short_output_spills_into_column_splits() {
        // 2 output rows but 8 advertised threads: row halving alone
        // cannot produce 8 pieces, so the splitter must recurse into
        // columns. Verify correctness (and implicitly that no strip is
        // dropped or doubled).
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let a = Matrix::random(2, 96, &mut rng);
        let b = Matrix::random(96, 2048, &mut rng);
        let mut c1 = Matrix::zeros(2, 2048);
        let mut c2 = Matrix::zeros(2, 2048);
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c1.as_mut());
        pool.install(|| par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut()));
        assert!(max_abs_diff(&c1.as_ref(), &c2.as_ref()).unwrap() < 1e-10);
    }

    #[test]
    fn split_is_width_invariant_bitwise() {
        // The k-loop is never split, so every output element sees the
        // same floating-point evaluation order regardless of pool
        // width — results must be bitwise identical across widths.
        let mut rng = StdRng::seed_from_u64(30);
        let a = Matrix::random(160, 80, &mut rng);
        let b = Matrix::random(80, 200, &mut rng);
        let mut reference = Matrix::zeros(160, 200);
        par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, reference.as_mut());
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut c = Matrix::zeros(160, 200);
            pool.install(|| par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut()));
            assert_eq!(c, reference, "width {threads} changed the result");
        }
    }

    #[test]
    fn runs_inside_small_pool() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let a = Matrix::random(100, 100, &mut rng);
        let b = Matrix::random(100, 100, &mut rng);
        let mut c1 = Matrix::zeros(100, 100);
        let mut c2 = Matrix::zeros(100, 100);
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c1.as_mut());
        pool.install(|| par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut()));
        assert!(max_abs_diff(&c1.as_ref(), &c2.as_ref()).unwrap() < 1e-10);
    }
}
