//! Reference triple-loop gemm used as the correctness oracle.

use fmm_matrix::{MatMut, MatRef, Scalar};

/// `C ← α·A·B + β·C`, textbook i-k-j loop order (no blocking, no
/// packing), for any element type. Every other multiply in the
/// workspace is tested against this implementation.
pub fn naive_gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    assert_eq!(c.rows(), m, "output rows mismatch");
    assert_eq!(c.cols(), n, "output cols mismatch");

    for i in 0..m {
        let crow = c.row_mut(i);
        if beta == T::ZERO {
            crow.iter_mut().for_each(|x| *x = T::ZERO);
        } else if beta != T::ONE {
            crow.iter_mut().for_each(|x| *x *= beta);
        }
    }
    for i in 0..m {
        let arow = a.row(i);
        for (p, &av) in arow.iter().enumerate() {
            let aip = alpha * av;
            if aip == T::ZERO {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_matrix::Matrix;

    #[test]
    fn two_by_two_hand_check() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = Matrix::zeros(2, 2);
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn alpha_beta_combination() {
        let a = Matrix::identity(3);
        let b = Matrix::filled(3, 3, 1.0);
        let mut c = Matrix::filled(3, 3, 10.0);
        naive_gemm(2.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
        // C = 2*I*ones + 0.5*10 = 2 + 5
        assert_eq!(c, Matrix::filled(3, 3, 7.0));
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let mut c = Matrix::zeros(2, 4);
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        for i in 0..2 {
            for j in 0..4 {
                let want: f64 = (0..3).map(|p| ((i + p) * (p * 4 + j)) as f64).sum();
                assert_eq!(c[(i, j)], want);
            }
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let mut c = Matrix::zeros(0, 4);
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        let a2 = Matrix::zeros(2, 0);
        let b2 = Matrix::zeros(0, 4);
        let mut c2 = Matrix::filled(2, 4, 3.0);
        naive_gemm(1.0, a2.as_ref(), b2.as_ref(), 0.0, c2.as_mut());
        assert_eq!(c2, Matrix::zeros(2, 4)); // beta = 0 still clears C
    }
}
