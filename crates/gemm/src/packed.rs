//! Cache-blocked, operand-packing sequential gemm.
//!
//! Loop structure follows the GotoBLAS/BLIS design: the three outer loops
//! tile `n` by `nc`, `k` by `kc` and `m` by `mc`; panels of `A` and `B`
//! are packed into contiguous, microkernel-ordered buffers; the inner
//! register kernel computes an `MR × NR` tile of `C` with local
//! accumulators that LLVM keeps in vector registers.
//!
//! The whole pipeline is generic over the element type; the register
//! tile `MR × NR` is chosen **per scalar** by the
//! [`crate::GemmScalar`] impls — `4 × 8` for `f64` (unchanged from the
//! original f64-only kernel) and `4 × 16` for `f32`, which keeps the
//! accumulator footprint at the same number of vector registers while
//! doubling the elements per register.

use crate::config::GemmConfig;
use crate::naive::naive_gemm;
use fmm_matrix::{MatMut, MatRef, Scalar};

/// Microkernel tile rows of the `f64` instantiation.
pub const MR: usize = 4;
/// Microkernel tile columns of the `f64` instantiation.
pub const NR: usize = 8;

/// Sequential `C ← α·A·B + β·C` with explicit blocking configuration
/// and a compile-time `MR_ × NR_` register tile.
pub(crate) fn gemm_tiles<T: Scalar, const MR_: usize, const NR_: usize>(
    cfg: &GemmConfig,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    assert_eq!(c.rows(), m, "output rows mismatch");
    assert_eq!(c.cols(), n, "output cols mismatch");

    if m == 0 || n == 0 {
        return;
    }

    // Apply beta once up front; all panel updates below accumulate.
    if beta == T::ZERO {
        for i in 0..m {
            c.row_mut(i).iter_mut().for_each(|x| *x = T::ZERO);
        }
    } else if beta != T::ONE {
        for i in 0..m {
            c.row_mut(i).iter_mut().for_each(|x| *x *= beta);
        }
    }
    if k == 0 || alpha == T::ZERO {
        return;
    }

    if m.max(n).max(k) <= cfg.small_cutoff {
        // Packing overhead dominates tiny products; accumulate directly.
        naive_gemm(alpha, a, b, T::ONE, c);
        return;
    }

    let mut apack = vec![T::ZERO; cfg.mc.div_ceil(MR_) * MR_ * cfg.kc];
    let mut bpack = vec![T::ZERO; cfg.kc * cfg.nc.div_ceil(NR_) * NR_];

    let mut jc = 0;
    while jc < n {
        let nc_eff = cfg.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc_eff = cfg.kc.min(k - pc);
            pack_b::<T, NR_>(&mut bpack, &b, pc, jc, kc_eff, nc_eff);
            let mut ic = 0;
            while ic < m {
                let mc_eff = cfg.mc.min(m - ic);
                pack_a::<T, MR_>(&mut apack, &a, ic, pc, mc_eff, kc_eff, alpha);
                macro_kernel::<T, MR_, NR_>(
                    &apack,
                    &bpack,
                    c.reborrow().into_block(ic, jc, mc_eff, nc_eff),
                    mc_eff,
                    nc_eff,
                    kc_eff,
                );
                ic += mc_eff;
            }
            pc += kc_eff;
        }
        jc += nc_eff;
    }
}

/// Pack `mc × kc` of `A` (starting at `(ic, pc)`) into MR-row micro-panels,
/// folding `alpha` into the packed values. Ragged edges are zero-padded.
fn pack_a<T: Scalar, const MR_: usize>(
    buf: &mut [T],
    a: &MatRef<'_, T>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    alpha: T,
) {
    let mut idx = 0;
    let mut i0 = 0;
    while i0 < mc {
        let mr_eff = MR_.min(mc - i0);
        for p in 0..kc {
            for i in 0..MR_ {
                buf[idx] = if i < mr_eff {
                    alpha * a.get(ic + i0 + i, pc + p)
                } else {
                    T::ZERO
                };
                idx += 1;
            }
        }
        i0 += MR_;
    }
}

/// Pack `kc × nc` of `B` (starting at `(pc, jc)`) into NR-column
/// micro-panels. Ragged edges are zero-padded.
fn pack_b<T: Scalar, const NR_: usize>(
    buf: &mut [T],
    b: &MatRef<'_, T>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
) {
    let mut idx = 0;
    let mut j0 = 0;
    while j0 < nc {
        let nr_eff = NR_.min(nc - j0);
        for p in 0..kc {
            let brow = b.row(pc + p);
            for j in 0..NR_ {
                buf[idx] = if j < nr_eff {
                    brow[jc + j0 + j]
                } else {
                    T::ZERO
                };
                idx += 1;
            }
        }
        j0 += NR_;
    }
}

/// Multiply the packed panels into the `mc × nc` block of `C`.
fn macro_kernel<T: Scalar, const MR_: usize, const NR_: usize>(
    apack: &[T],
    bpack: &[T],
    mut c: MatMut<'_, T>,
    mc: usize,
    nc: usize,
    kc: usize,
) {
    let mut j0 = 0;
    let mut bcol = 0;
    while j0 < nc {
        let nr_eff = NR_.min(nc - j0);
        let bpanel = &bpack[bcol * kc * NR_..(bcol + 1) * kc * NR_];
        let mut i0 = 0;
        let mut arow = 0;
        while i0 < mc {
            let mr_eff = MR_.min(mc - i0);
            let apanel = &apack[arow * kc * MR_..(arow + 1) * kc * MR_];
            micro_kernel::<T, MR_, NR_>(
                apanel,
                bpanel,
                kc,
                c.reborrow().into_block(i0, j0, mr_eff, nr_eff),
                mr_eff,
                nr_eff,
            );
            i0 += MR_;
            arow += 1;
        }
        j0 += NR_;
        bcol += 1;
    }
}

/// `MR × NR` register tile: `C_tile += Apanel · Bpanel`.
#[inline]
fn micro_kernel<T: Scalar, const MR_: usize, const NR_: usize>(
    apanel: &[T],
    bpanel: &[T],
    kc: usize,
    mut c: MatMut<'_, T>,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[T::ZERO; NR_]; MR_];
    debug_assert!(apanel.len() >= kc * MR_);
    debug_assert!(bpanel.len() >= kc * NR_);
    for p in 0..kc {
        let arow = &apanel[p * MR_..p * MR_ + MR_];
        let brow = &bpanel[p * NR_..p * NR_ + NR_];
        for i in 0..MR_ {
            let aip = arow[i];
            let acc_i = &mut acc[i];
            for j in 0..NR_ {
                acc_i[j] += aip * brow[j];
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
        let crow = c.row_mut(i);
        for j in 0..nr_eff {
            crow[j] += acc_row[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{gemm_with, GemmConfig};
    use fmm_matrix::{max_abs_diff, DenseMatrix, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::naive::naive_gemm;

    fn check(m: usize, k: usize, n: usize, alpha: f64, beta: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let c0 = Matrix::random(m, n, &mut rng);
        let mut c_ref = c0.clone();
        let mut c_pack = c0.clone();
        naive_gemm(alpha, a.as_ref(), b.as_ref(), beta, c_ref.as_mut());
        gemm_with(
            &GemmConfig::default(),
            alpha,
            a.as_ref(),
            b.as_ref(),
            beta,
            c_pack.as_mut(),
        );
        let d = max_abs_diff(&c_ref.as_ref(), &c_pack.as_ref()).unwrap();
        assert!(
            d < 1e-10 * (k as f64).max(1.0),
            "mismatch {d} for {m}x{k}x{n} α={alpha} β={beta}"
        );
    }

    fn check_f32(m: usize, k: usize, n: usize, alpha: f32, beta: f32, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = DenseMatrix::<f32>::random(m, k, &mut rng);
        let b = DenseMatrix::<f32>::random(k, n, &mut rng);
        let c0 = DenseMatrix::<f32>::random(m, n, &mut rng);
        let mut c_ref = c0.clone();
        let mut c_pack = c0.clone();
        naive_gemm(alpha, a.as_ref(), b.as_ref(), beta, c_ref.as_mut());
        gemm_with(
            &GemmConfig::default(),
            alpha,
            a.as_ref(),
            b.as_ref(),
            beta,
            c_pack.as_mut(),
        );
        let d = max_abs_diff(&c_ref.as_ref(), &c_pack.as_ref()).unwrap();
        assert!(
            d < 1e-4 * (k as f64).max(1.0),
            "mismatch {d} for f32 {m}x{k}x{n} α={alpha} β={beta}"
        );
    }

    #[test]
    fn matches_naive_on_assorted_shapes() {
        check(1, 1, 1, 1.0, 0.0, 1);
        check(4, 8, 4, 1.0, 0.0, 2);
        check(33, 65, 47, 1.0, 0.0, 3);
        check(128, 128, 128, 1.0, 0.0, 4);
        check(200, 30, 170, 1.0, 0.0, 5);
        check(31, 257, 63, 1.0, 0.0, 6);
    }

    #[test]
    fn f32_matches_naive_on_assorted_shapes() {
        // Shapes straddle the f32 tile edges (NR = 16) and the small
        // cutoff, so panel raggedness in the wider tile is exercised.
        check_f32(1, 1, 1, 1.0, 0.0, 1);
        check_f32(4, 8, 4, 1.0, 0.0, 2);
        check_f32(33, 65, 47, 1.0, 0.0, 3);
        check_f32(128, 128, 128, 1.0, 0.0, 4);
        check_f32(200, 30, 170, 1.0, 0.0, 5);
        check_f32(31, 257, 63, 1.0, 0.0, 6);
        check_f32(50, 50, 50, 2.0, 1.0, 7);
        check_f32(50, 50, 50, -0.5, 0.5, 8);
    }

    #[test]
    fn alpha_beta_paths() {
        check(50, 50, 50, 2.0, 1.0, 7);
        check(50, 50, 50, -0.5, 0.5, 8);
        check(50, 50, 50, 0.0, 2.0, 9);
        check(7, 7, 7, 1.0, 1.0, 10);
    }

    #[test]
    fn tiny_blocks_configuration() {
        // Exercise many panel edges with deliberately small tiles.
        let cfg = GemmConfig {
            mc: 8,
            kc: 8,
            nc: 16,
            small_cutoff: 2,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::random(37, 29, &mut rng);
        let b = Matrix::random(29, 41, &mut rng);
        let mut c1 = Matrix::zeros(37, 41);
        let mut c2 = Matrix::zeros(37, 41);
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c1.as_mut());
        gemm_with(&cfg, 1.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut());
        assert!(max_abs_diff(&c1.as_ref(), &c2.as_ref()).unwrap() < 1e-11);
    }

    #[test]
    fn strided_views_multiply_correctly() {
        // Multiply interior blocks of larger matrices to exercise strides.
        let mut rng = StdRng::seed_from_u64(12);
        let abig = Matrix::random(80, 80, &mut rng);
        let bbig = Matrix::random(80, 80, &mut rng);
        let a = abig.block(5, 7, 40, 33);
        let b = bbig.block(2, 3, 33, 50);
        let mut c1 = Matrix::zeros(40, 50);
        let mut c2 = Matrix::zeros(40, 50);
        naive_gemm(1.0, a, b, 0.0, c1.as_mut());
        gemm_with(&GemmConfig::default(), 1.0, a, b, 0.0, c2.as_mut());
        assert!(max_abs_diff(&c1.as_ref(), &c2.as_ref()).unwrap() < 1e-11);
    }

    #[test]
    fn zero_k_clears_output_when_beta_zero() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::filled(3, 3, 9.0);
        gemm_with(
            &GemmConfig::default(),
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        assert_eq!(c, Matrix::zeros(3, 3));
    }
}
