//! Classical matrix multiplication substrate.
//!
//! The paper's experiments compare fast algorithms against Intel MKL's
//! `dgemm`. MKL is proprietary and unavailable here, so this crate is the
//! vendor-BLAS stand-in: a cache-blocked, operand-packing, register-tiled
//! classical `dgemm` (in the BLIS/GotoBLAS style) with a rayon-parallel
//! driver. It reproduces the *performance shape* the experiments rely on —
//! a ramp-up phase followed by a flat plateau (paper Fig. 3) and a flop
//! rate that dominates the bandwidth-bound additions — which is what
//! determines recursion cutoffs and fast-vs-classical crossovers.
//!
//! The base-case call of every fast algorithm in `fmm-core` lands on
//! [`gemm`] (sequential leaves, BFS scheme) or [`par_gemm`] (DFS/HYBRID
//! leaves), exactly as the paper's generated code calls `dgemm` with one
//! or all threads.

mod config;
mod naive;
mod packed;
mod parallel;

pub use config::GemmConfig;
pub use naive::naive_gemm;
pub use packed::gemm_with;
pub use parallel::{par_gemm, par_gemm_with};

use fmm_matrix::{MatMut, MatRef};

/// Sequential `C ← α·A·B + β·C` with the default blocking configuration.
///
/// Shapes: `A: m×k`, `B: k×n`, `C: m×n`.
pub fn gemm(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, beta: f64, c: MatMut<'_>) {
    gemm_with(&GemmConfig::default(), alpha, a, b, beta, c);
}

/// Convenience wrapper: `C = A·B` as a new owned matrix.
pub fn matmul(a: &fmm_matrix::Matrix, b: &fmm_matrix::Matrix) -> fmm_matrix::Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let mut c = fmm_matrix::Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

/// Flop count of a classical `P × Q × R` multiply–accumulate
/// (`2PQR − PR` when `β = 0`, matching Eq. 3's numerator).
pub fn classical_flops(p: usize, q: usize, r: usize) -> f64 {
    2.0 * p as f64 * q as f64 * r as f64 - (p as f64) * (r as f64)
}

/// Effective GFLOPS metric of the paper (Eq. 3): classical flop count of
/// the problem divided by the measured time, regardless of the algorithm
/// used. Lets classical and fast algorithms share an inverse-time scale.
pub fn effective_gflops(p: usize, q: usize, r: usize, seconds: f64) -> f64 {
    classical_flops(p, q, r) / seconds * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_matrix::Matrix;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let i4 = Matrix::identity(4);
        assert_eq!(matmul(&a, &i4), a);
        assert_eq!(matmul(&i4, &a), a);
    }

    #[test]
    fn effective_gflops_metric() {
        // 1000×1000×1000 in one second = (2e9 - 1e6) * 1e-9 effective GFLOPS.
        let g = effective_gflops(1000, 1000, 1000, 1.0);
        assert!((g - 1.999).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}
