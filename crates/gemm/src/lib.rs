//! Classical matrix multiplication substrate.
//!
//! The paper's experiments compare fast algorithms against Intel MKL's
//! `dgemm`. MKL is proprietary and unavailable here, so this crate is the
//! vendor-BLAS stand-in: a cache-blocked, operand-packing, register-tiled
//! classical gemm (in the BLIS/GotoBLAS style) with a rayon-parallel
//! driver. It reproduces the *performance shape* the experiments rely on —
//! a ramp-up phase followed by a flat plateau (paper Fig. 3) and a flop
//! rate that dominates the bandwidth-bound additions — which is what
//! determines recursion cutoffs and fast-vs-classical crossovers.
//!
//! The base-case call of every fast algorithm in `fmm-core` lands on
//! [`gemm`] (sequential leaves, BFS scheme) or [`par_gemm`] (DFS/HYBRID
//! leaves), exactly as the paper's generated code calls `dgemm` with one
//! or all threads.
//!
//! # Element types
//!
//! The blocking/packing pipeline is generic over
//! [`fmm_matrix::Scalar`]; what is *specialized per type* is the
//! register microkernel tile, selected by the [`GemmScalar`] impl:
//! `f64` keeps the original `4 × 8` tile, `f32` uses `4 × 16` — the
//! same number of vector registers, twice the elements per register —
//! which is where the dtype's 2× SIMD/bandwidth advantage materializes.

mod config;
mod naive;
mod packed;
mod parallel;

pub use config::GemmConfig;
pub use naive::naive_gemm;
pub use parallel::{par_gemm, par_gemm_with};

use fmm_matrix::{DenseMatrix, MatMut, MatRef, Scalar};

/// A [`Scalar`] with a tuned packed-gemm instantiation: the dispatch
/// point where each element type picks its register tile. This is the
/// bound the executor/engine layers require — a future semiring backend
/// implements it once (the default body falls back to the naive
/// triple loop, which is always correct) and the whole stack serves it.
pub trait GemmScalar: Scalar {
    /// Sequential packed `C ← α·A·B + β·C` with this scalar's register
    /// tile.
    fn packed_gemm(
        cfg: &GemmConfig,
        alpha: Self,
        a: MatRef<'_, Self>,
        b: MatRef<'_, Self>,
        beta: Self,
        c: MatMut<'_, Self>,
    ) {
        let _ = cfg;
        naive_gemm(alpha, a, b, beta, c);
    }
}

impl GemmScalar for f64 {
    fn packed_gemm(
        cfg: &GemmConfig,
        alpha: Self,
        a: MatRef<'_, Self>,
        b: MatRef<'_, Self>,
        beta: Self,
        c: MatMut<'_, Self>,
    ) {
        packed::gemm_tiles::<f64, { packed::MR }, { packed::NR }>(cfg, alpha, a, b, beta, c);
    }
}

impl GemmScalar for f32 {
    fn packed_gemm(
        cfg: &GemmConfig,
        alpha: Self,
        a: MatRef<'_, Self>,
        b: MatRef<'_, Self>,
        beta: Self,
        c: MatMut<'_, Self>,
    ) {
        // Same register budget as the f64 tile, twice the lanes.
        packed::gemm_tiles::<f32, 4, 16>(cfg, alpha, a, b, beta, c);
    }
}

/// Sequential `C ← α·A·B + β·C` with explicit blocking configuration.
pub fn gemm_with<T: GemmScalar>(
    cfg: &GemmConfig,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    T::packed_gemm(cfg, alpha, a, b, beta, c);
}

/// Sequential `C ← α·A·B + β·C` with the default blocking configuration.
///
/// Shapes: `A: m×k`, `B: k×n`, `C: m×n`.
pub fn gemm<T: GemmScalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    gemm_with(&GemmConfig::default(), alpha, a, b, beta, c);
}

/// Convenience wrapper: `C = A·B` as a new owned matrix.
pub fn matmul<T: GemmScalar>(a: &DenseMatrix<T>, b: &DenseMatrix<T>) -> DenseMatrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    gemm(T::ONE, a.as_ref(), b.as_ref(), T::ZERO, c.as_mut());
    c
}

/// Flop count of a classical `P × Q × R` multiply–accumulate
/// (`2PQR − PR` when `β = 0`, matching Eq. 3's numerator).
pub fn classical_flops(p: usize, q: usize, r: usize) -> f64 {
    2.0 * p as f64 * q as f64 * r as f64 - (p as f64) * (r as f64)
}

/// Effective GFLOPS metric of the paper (Eq. 3): classical flop count of
/// the problem divided by the measured time, regardless of the algorithm
/// used. Lets classical and fast algorithms share an inverse-time scale.
pub fn effective_gflops(p: usize, q: usize, r: usize, seconds: f64) -> f64 {
    classical_flops(p, q, r) / seconds * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_matrix::Matrix;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let i4 = Matrix::identity(4);
        assert_eq!(matmul(&a, &i4), a);
        assert_eq!(matmul(&i4, &a), a);
    }

    #[test]
    fn matmul_identity_f32() {
        let a = DenseMatrix::<f32>::from_fn(4, 4, |i, j| (i * 4 + j) as f32);
        let i4 = DenseMatrix::<f32>::identity(4);
        assert_eq!(matmul(&a, &i4), a);
        assert_eq!(matmul(&i4, &a), a);
    }

    #[test]
    fn f32_matches_f64_on_integer_inputs() {
        // Integer-valued operands small enough that every partial sum is
        // exact in f32: the two dtypes must agree exactly, proving the
        // wider f32 tile drops/duplicates nothing.
        let n = 48;
        let a64 = Matrix::from_fn(n, n, |i, j| ((i + 2 * j) % 5) as f64 - 2.0);
        let b64 = Matrix::from_fn(n, n, |i, j| ((3 * i + j) % 7) as f64 - 3.0);
        let a32 = DenseMatrix::<f32>::from_fn(n, n, |i, j| ((i + 2 * j) % 5) as f32 - 2.0);
        let b32 = DenseMatrix::<f32>::from_fn(n, n, |i, j| ((3 * i + j) % 7) as f32 - 3.0);
        let c64 = matmul(&a64, &b64);
        let c32 = matmul(&a32, &b32);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(c64[(i, j)], c32[(i, j)] as f64, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn effective_gflops_metric() {
        // 1000×1000×1000 in one second = (2e9 - 1e6) * 1e-9 effective GFLOPS.
        let g = effective_gflops(1000, 1000, 1000, 1.0);
        assert!((g - 1.999).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}
