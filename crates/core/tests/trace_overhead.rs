//! The tracing overhead guard: span hooks are compiled into the hot
//! path unconditionally, so the *disabled* gate must stay cheap — the
//! leaf loops hoist the gate read (`now_if`) out of the per-leaf work
//! and a disabled run must record nothing at all.
//!
//! Timing-sensitive, so the throughput half only runs in release
//! builds (debug-mode ratios are dominated by unoptimized overhead
//! everywhere and prove nothing about the release hot path).

use fmm_core::{Options, Planner, Scheme, Workspace};
use fmm_matrix::Matrix;
use fmm_trace::TraceSink;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn median_run_secs(plan: &fmm_core::Plan, a: &Matrix, b: &Matrix, runs: usize) -> f64 {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    let mut ws = Workspace::for_plan(plan);
    // Warm-up.
    plan.execute(a, b, &mut c, &mut ws);
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            plan.execute(a, b, &mut c, &mut ws);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.partial_cmp(y).unwrap());
    times[times.len() / 2]
}

#[test]
fn disabled_tracing_is_free_and_silent() {
    let dim = 192;
    let plan = Planner::new()
        .shape(dim, dim, dim)
        .algorithm(&fmm_algo::strassen())
        .steps(2)
        .options(Options {
            scheme: Scheme::Sequential,
            ..Options::default()
        })
        .plan::<f64>()
        .expect("overhead test plan");
    let mut rng = StdRng::seed_from_u64(11);
    let a = Matrix::random(dim, dim, &mut rng);
    let b = Matrix::random(dim, dim, &mut rng);

    // Silence: a disabled run must leave the rings untouched.
    fmm_trace::reset();
    fmm_trace::set_enabled(false);
    let disabled = median_run_secs(&plan, &a, &b, 15);
    let sink = TraceSink::collect();
    assert!(
        sink.tracks.iter().all(|t| t.records.is_empty()),
        "a tracing-disabled run must record no spans"
    );

    if cfg!(debug_assertions) {
        // Debug-build timings say nothing about the release hot path.
        return;
    }

    fmm_trace::reset();
    fmm_trace::set_enabled(true);
    let enabled = median_run_secs(&plan, &a, &b, 15);
    fmm_trace::set_enabled(false);

    // Generous: even *enabled* tracing is per-leaf clock reads against
    // multi-microsecond leaf gemms; disabled must be well inside noise
    // of that. A failure here means a gate check or clock read leaked
    // into the per-element loops.
    assert!(
        disabled <= enabled * 1.5 + 1e-4,
        "tracing-disabled run ({disabled:.6}s) slower than enabled ({enabled:.6}s): \
         the disabled gate is no longer cheap"
    );
}
