//! Tracing instrumentation is *accounting*: the spans the executor
//! records must agree exactly with the executor's own counters, and
//! the per-thread span streams must be well-formed (LIFO-nested,
//! positive-duration intervals) so a Chrome trace of them renders
//! sensibly.

use fmm_core::{AdditionMethod, Options, Plan, Planner, Scheme, Workspace};
use fmm_matrix::Matrix;
use fmm_trace::{SpanKind, TraceSink};
use std::sync::{Mutex, OnceLock};

/// Tracing state (the enable gate and the rings) is process-global;
/// serialize the tests that mutate it.
fn trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn plan_for(scheme: Scheme, dim: usize, steps: usize) -> Plan {
    Planner::new()
        .shape(dim, dim, dim)
        .algorithm(&fmm_algo::strassen())
        .steps(steps)
        .options(Options {
            scheme,
            additions: AdditionMethod::WriteOnce,
            ..Options::default()
        })
        .plan::<f64>()
        .expect("trace test plan")
}

/// Run one traced multiply of `scheme` and return the sink plus the
/// executor's own leaf counters.
fn traced_run(scheme: Scheme, dim: usize, steps: usize) -> (TraceSink, u64, u64) {
    let plan = plan_for(scheme, dim, steps);
    let (a, b) = operands(dim);
    let mut c = Matrix::zeros(dim, dim);
    let mut ws = Workspace::for_plan(&plan);
    fmm_trace::reset();
    fmm_trace::set_enabled(true);
    let snap = plan.execute_with_stats(&a, &b, &mut c, &mut ws);
    fmm_trace::set_enabled(false);
    (TraceSink::collect(), snap.base_gemms, snap.peel_gemms)
}

fn operands(dim: usize) -> (Matrix, Matrix) {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    (
        Matrix::random(dim, dim, &mut rng),
        Matrix::random(dim, dim, &mut rng),
    )
}

#[test]
fn gemm_span_counts_match_executor_counters() {
    let _guard = trace_lock().lock().unwrap();
    for scheme in [Scheme::Sequential, Scheme::Bfs, Scheme::Hybrid] {
        let (sink, base_gemms, peel_gemms) = traced_run(scheme, 96, 1);
        assert_eq!(
            sink.count(SpanKind::BaseGemm),
            base_gemms,
            "{scheme:?}: every base-case gemm must emit exactly one span"
        );
        assert_eq!(
            sink.count(SpanKind::PeelGemm),
            peel_gemms,
            "{scheme:?}: every peel gemm must emit exactly one span"
        );
        // Strassen at one step on an even square: 7 base gemms, no peel.
        assert_eq!(base_gemms, 7, "{scheme:?}");
        assert_eq!(peel_gemms, 0, "{scheme:?}");
        assert!(
            sink.count(SpanKind::Additions) > 0,
            "{scheme:?}: the S/T formation phases must be spanned"
        );
        assert!(
            sink.count(SpanKind::Combine) > 0,
            "{scheme:?}: the M-combine must be spanned"
        );
    }
}

#[test]
fn spans_are_well_formed_per_track() {
    let _guard = trace_lock().lock().unwrap();
    let (sink, _, _) = traced_run(Scheme::Hybrid, 128, 2);
    let mut spans_seen = 0usize;
    for track in &sink.tracks {
        assert_eq!(
            track.dropped, 0,
            "a two-step 128³ multiply must fit the ring"
        );
        // Records are pushed at span *end*, so each track's stream is
        // sorted by end time, every interval is sane, and — because a
        // worker executes spans LIFO (a stolen task runs strictly
        // inside the steal site's blocked span) — any two spans on one
        // track either nest or are disjoint.
        let mut last_end = 0u64;
        let mut open: Vec<(u64, u64)> = Vec::new();
        for rec in &track.records {
            if rec.kind.is_instant() {
                continue;
            }
            assert!(rec.t_end >= rec.t_start, "span ends before it starts");
            assert!(rec.t_end >= last_end, "records out of end-time order");
            last_end = rec.t_end;
            spans_seen += 1;
            // Pop every already-ended span that this one encloses,
            // then check we don't *partially* overlap what remains.
            while let Some(&(s, e)) = open.last() {
                if rec.t_start <= s && rec.t_end >= e {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(&(s, _)) = open.last() {
                assert!(
                    rec.t_start >= s,
                    "span partially overlaps an earlier span on the same thread"
                );
            }
            open.push((rec.t_start, rec.t_end));
        }
    }
    assert!(spans_seen > 0, "the traced run must record spans");
}

#[test]
fn disabled_tracing_records_nothing() {
    let _guard = trace_lock().lock().unwrap();
    fmm_trace::reset();
    fmm_trace::set_enabled(false);
    let plan = plan_for(Scheme::Sequential, 64, 1);
    let (a, b) = operands(64);
    let mut c = Matrix::zeros(64, 64);
    let mut ws = Workspace::for_plan(&plan);
    plan.execute(&a, &b, &mut c, &mut ws);
    let sink = TraceSink::collect();
    for kind in SpanKind::ALL {
        assert_eq!(sink.count(kind), 0, "{kind:?} recorded while disabled");
    }
}
