//! The paper's framework: practical parallel fast matrix multiplication.
//!
//! This crate turns any verified tensor decomposition
//! ([`fmm_tensor::Decomposition`]) into a high-performance matrix
//! multiplication routine, reproducing the design space of Benson &
//! Ballard (PPoPP 2015):
//!
//! * recursion with **dynamic peeling** for arbitrary dimensions (§3.5);
//! * three **addition strategies** — pairwise, write-once, streaming
//!   (§3.2) — with optional greedy **common subexpression elimination**
//!   (§3.3, Table 3);
//! * the **singleton-column optimization**: columns of U/V with one
//!   non-zero pipe a scale through to the output combination instead of
//!   materializing a temporary (§3.1);
//! * three **parallel schemes** — DFS, BFS, HYBRID (§4) — implemented
//!   on scoped tasks over the in-tree work-stealing scheduler
//!   (`fmm-runtime`, reached through the rayon-compatible facade);
//!   [`ExecStatsSnapshot::tasks_stolen`] / `threads_used` expose the
//!   scheduler's behaviour so tests can assert stealing happens;
//! * **composed schedules** (different base case per recursion level),
//!   which is how the ⟨54,54,54⟩, ω ≈ 2.775 algorithm of §5.2 is built;
//! * the **effective GFLOPS** metric (Eq. 3) and forward-error
//!   instrumentation for APA and exact algorithms (§2.2.3, §6).
//!
//! # Plan once, execute many
//!
//! The framework's design space (depth × scheme × additions × border)
//! only pays off when resolved per machine and problem shape, so the
//! primary API separates the two phases FFTW-style:
//!
//! * [`Planner`] resolves the configuration — applying the §3.4 cutoff
//!   rule through a measured [`GemmProfile`], optionally auto-selecting
//!   the decomposition from a catalog — into an immutable [`Plan`]
//!   whose exact temporary footprint is computed by walking the
//!   recursion tree once.
//! * [`Plan::execute`] runs against a reusable [`Workspace`]: after
//!   the first call every S/T/M temporary is checked out of the same
//!   arena, so the hot path performs **zero heap allocation**
//!   (asserted by [`ExecStatsSnapshot::workspace_reused`]).
//! * [`Plan::execute_batch`] fans a batch of independent same-shape
//!   products out across rayon tasks, one workspace each.
//!
//! ```
//! use fmm_core::{Planner, Workspace};
//! use fmm_matrix::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dec = fmm_tensor::compose::classical(2, 2, 2); // any Decomposition works
//! let plan = Planner::new()
//!     .shape(100, 100, 100)
//!     .algorithm(&dec)
//!     // With a fast algorithm, .profile(GemmProfile::measure(..))
//!     // lets the §3.4 rule pick the depth for this machine; the
//!     // classical decomposition has zero speedup, so pin it here.
//!     .steps(2)
//!     .plan()
//!     .unwrap();
//! assert!(plan.workspace_len() > 0);
//! let mut ws = Workspace::for_plan(&plan);
//! let mut rng = StdRng::seed_from_u64(1);
//! let a = Matrix::random(100, 100, &mut rng);
//! let b = Matrix::random(100, 100, &mut rng);
//! let mut c = Matrix::zeros(100, 100);
//! for _ in 0..3 {
//!     plan.execute(&a, &b, &mut c, &mut ws); // allocation-free after call 1
//! }
//! ```
//!
//! # Serve many: the engine
//!
//! On top of plan/execute sits [`FmmEngine`] ([`engine`]), the
//! concurrent multiply *service*: a long-lived object owning an
//! `fmm-runtime` thread pool, a bounded LRU plan cache (auto-planning
//! via `fmm_algo::candidates_for_shape` on a miss) and a workspace pool
//! that checks arenas in and out, so steady-state serving allocates
//! nothing. [`FmmEngine::multiply`] is the synchronous call,
//! [`FmmEngine::submit`] hands back a [`MultiplyHandle`] that joins a
//! detached pool job (with work-stealing help when the waiter is a pool
//! thread), and [`FmmEngine::submit_batch`] fans out mixed-shape
//! streams — the front door a server hands its request threads.
//!
//! [`FastMul`] remains as the low-level, shape-agnostic path (one
//! right-sized workspace allocation per call) for callers that multiply
//! each shape once.
//!
//! # Element types
//!
//! Every layer here is generic over [`fmm_matrix::Scalar`] (through
//! the [`GemmScalar`] bound that adds the per-type packed microkernel),
//! with `f64` as the default type parameter everywhere: `Plan`,
//! `Workspace`, `FastMul`, `FmmEngine` written without a parameter mean
//! exactly what they did before generics. `f32` is the second shipped
//! instantiation — `Planner::plan::<f32>()`,
//! `FmmEngine::<f32>::builder()` — with decomposition coefficients
//! injected once per level at plan time via
//! [`fmm_matrix::Scalar::from_coeff`]. That injection is fallible by
//! design ([`PlanError::UnrepresentableCoefficient`]): a future
//! non-field semiring backend (e.g. bit-packed GF(2)) rejects
//! fractional APA coefficients there instead of computing nonsense.
//! [`GemmProfile`] is measured on the f64 gemm; its §3.4 depth
//! recommendation is reused for every dtype (the performance *shape* —
//! ramp-up then plateau — is what the rule needs, and it transfers).

mod accuracy;
mod certificate;
pub mod codegen;
pub mod cutoff;
pub mod engine;
mod executor;
pub mod plan;
mod planner;
mod workspace;

pub use accuracy::{
    forward_error, forward_error_in, max_rel_error_vs_classical, max_rel_error_vs_classical_in,
};
pub use certificate::PlanCertificate;
pub use codegen::generate_rust;
pub use cutoff::GemmProfile;
pub use engine::{shape_class, EngineBuilder, EngineError, EngineStats, FmmEngine, MultiplyHandle};
pub use executor::{
    AdditionMethod, BorderHandling, ExecStats, ExecStatsSnapshot, FastMul, Options, Scheme,
};
pub use fmm_gemm::{classical_flops, effective_gflops, GemmScalar};
pub use plan::{cse_stats, CseStats};
pub use planner::{Plan, PlanError, Planner};
pub use workspace::Workspace;

use fmm_matrix::DenseMatrix;
use fmm_tensor::Decomposition;

/// One-call helper: multiply with a fast algorithm using default
/// options and the given number of recursive steps. Generic over the
/// element type (inferred from the operands).
pub fn fast_multiply<T: GemmScalar>(
    dec: &Decomposition,
    a: &DenseMatrix<T>,
    b: &DenseMatrix<T>,
    steps: usize,
) -> DenseMatrix<T> {
    FastMul::new(
        dec,
        Options {
            steps,
            ..Options::default()
        },
    )
    .multiply(a, b)
}

/// Number of leaf (base-case) multiplications a uniform `L`-step run of
/// the algorithm performs on a divisible problem: `R^L`.
pub fn leaf_count(dec: &Decomposition, steps: usize) -> u64 {
    (dec.rank() as u64).pow(steps as u32)
}

/// Arithmetic-cost model: flops performed by `L` steps of `⟨m,k,n⟩`
/// rank-`R` recursion on a `P×Q×S` problem (divisible case), counting
/// base-case classical gemms and all additions. This is the recurrence
/// of §2.1 generalized to rectangular base cases.
pub fn flop_model(dec: &Decomposition, p: usize, q: usize, s: usize, steps: usize) -> f64 {
    if steps == 0 {
        return fmm_gemm::classical_flops(p, q, s);
    }
    let (m, k, n) = dec.base();
    let adds = dec.addition_count(1e-14) as f64;
    // additions operate on sub-blocks of sizes (p/m × q/k), (q/k × s/n),
    // (p/m × s/n) for the U, V, W sides respectively; approximate with
    // the dominant output-block size for the W side and input sizes
    // otherwise. An exact split is possible but the aggregate is what
    // the cost model needs.
    let sub_u = (p / m) as f64 * (q / k) as f64;
    let sub_v = (q / k) as f64 * (s / n) as f64;
    let sub_w = (p / m) as f64 * (s / n) as f64;
    let u_adds = dec.u.nnz(1e-14).saturating_sub(dec.rank()) as f64;
    let v_adds = dec.v.nnz(1e-14).saturating_sub(dec.rank()) as f64;
    let w_adds = adds - u_adds - v_adds;
    let add_flops = u_adds * sub_u + v_adds * sub_v + w_adds.max(0.0) * sub_w;
    dec.rank() as f64 * flop_model(dec, p / m, q / k, s / n, steps - 1) + add_flops
}

/// Strassen fixture shared by in-crate tests (codegen, planner,
/// cutoff and executor tests all reuse this single U/V/W literal).
#[cfg(test)]
pub(crate) fn codegen_fixture() -> Decomposition {
    let u = fmm_matrix::Matrix::from_rows(&[
        &[1., 0., 1., 0., 1., -1., 0.],
        &[0., 0., 0., 0., 1., 0., 1.],
        &[0., 1., 0., 0., 0., 1., 0.],
        &[1., 1., 0., 1., 0., 0., -1.],
    ]);
    let v = fmm_matrix::Matrix::from_rows(&[
        &[1., 1., 0., -1., 0., 1., 0.],
        &[0., 0., 1., 0., 0., 1., 0.],
        &[0., 0., 0., 1., 0., 0., 1.],
        &[1., 0., -1., 0., 1., 0., 1.],
    ]);
    let w = fmm_matrix::Matrix::from_rows(&[
        &[1., 0., 0., 1., -1., 0., 1.],
        &[0., 0., 1., 0., 1., 0., 0.],
        &[0., 1., 0., 1., 0., 0., 0.],
        &[1., -1., 1., 0., 0., 1., 0.],
    ]);
    Decomposition::new(2, 2, 2, u, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_gemm::naive_gemm;
    use fmm_matrix::{max_abs_diff, Matrix};
    use fmm_tensor::compose::{classical, direct_sum_n, kron_compose};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strassen() -> Decomposition {
        codegen_fixture()
    }

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        c
    }

    fn check(dec: &Decomposition, p: usize, q: usize, r: usize, opts: Options, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(p, q, &mut rng);
        let b = Matrix::random(q, r, &mut rng);
        let want = reference(&a, &b);
        let got = FastMul::new(dec, opts).multiply(&a, &b);
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        assert!(
            d < 1e-9 * q as f64,
            "mismatch {d} for {p}x{q}x{r} opts {opts:?}"
        );
    }

    #[test]
    fn strassen_one_step_exact_dims() {
        let s = strassen();
        s.verify(0.0).unwrap();
        check(&s, 64, 64, 64, Options::default(), 1);
    }

    #[test]
    fn strassen_multi_step_and_peeling() {
        let s = strassen();
        for steps in 1..=3 {
            let opts = Options {
                steps,
                ..Options::default()
            };
            check(&s, 97, 53, 71, opts, 2); // odd sizes force peeling
            check(&s, 96, 96, 96, opts, 3);
        }
    }

    #[test]
    fn all_addition_methods_agree() {
        let s = strassen();
        for additions in [
            AdditionMethod::Pairwise,
            AdditionMethod::WriteOnce,
            AdditionMethod::Streaming,
        ] {
            for cse in [false, true] {
                let opts = Options {
                    steps: 2,
                    additions,
                    cse,
                    ..Options::default()
                };
                check(&s, 60, 60, 60, opts, 4);
                check(&s, 59, 61, 67, opts, 5);
            }
        }
    }

    #[test]
    fn rectangular_base_case_algorithms() {
        // ⟨2,2,3⟩ rank 11 via direct sum, and ⟨2,2,4⟩ rank 14 via
        // composition — the constructions behind Table 2.
        let s = strassen();
        let a223 = direct_sum_n(&s, &classical(2, 2, 1));
        let a224 = kron_compose(&s, &classical(1, 1, 2));
        for dec in [&a223, &a224] {
            dec.verify(1e-12).unwrap();
            for steps in 1..=2 {
                let opts = Options {
                    steps,
                    ..Options::default()
                };
                check(dec, 48, 44, 60, opts, 6);
                check(dec, 50, 45, 61, opts, 7);
            }
        }
    }

    #[test]
    fn parallel_schemes_match_sequential() {
        let s = strassen();
        for scheme in [Scheme::Dfs, Scheme::Bfs, Scheme::Hybrid] {
            for additions in [
                AdditionMethod::Pairwise,
                AdditionMethod::WriteOnce,
                AdditionMethod::Streaming,
            ] {
                let opts = Options {
                    steps: 2,
                    additions,
                    scheme,
                    ..Options::default()
                };
                check(&s, 80, 80, 80, opts, 8);
                check(&s, 83, 77, 85, opts, 9);
            }
        }
    }

    #[test]
    fn composed_schedule_multiplies_correctly() {
        // Mixed schedule: Strassen at level 0, ⟨2,2,3⟩ at level 1.
        let s = strassen();
        let a223 = direct_sum_n(&s, &classical(2, 2, 1));
        let sched = [&s, &a223];
        let fm = FastMul::with_schedule(
            &sched,
            Options {
                steps: 0, // schedule length is authoritative
                ..Options::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(10);
        let a = Matrix::random(4 * 13, 4 * 9, &mut rng);
        let b = Matrix::random(4 * 9, 6 * 7, &mut rng);
        let want = reference(&a, &b);
        let got = fm.multiply(&a, &b);
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        assert!(d < 1e-10 * a.cols() as f64, "mismatch {d}");
    }

    #[test]
    fn zero_steps_is_plain_gemm() {
        let s = strassen();
        check(
            &s,
            33,
            45,
            27,
            Options {
                steps: 0,
                ..Options::default()
            },
            11,
        );
    }

    #[test]
    fn tiny_problems_fall_back_to_gemm() {
        let s = strassen();
        // 1×1×1 and problems smaller than the base case.
        check(&s, 1, 1, 1, Options::default(), 12);
        check(
            &s,
            1,
            5,
            3,
            Options {
                steps: 2,
                ..Options::default()
            },
            13,
        );
    }

    #[test]
    fn leaf_count_and_flop_model() {
        let s = strassen();
        assert_eq!(leaf_count(&s, 2), 49);
        // One step of Strassen on N×N×N: 7·(2(N/2)³·... ) + 18·(N/2)²;
        // model must be below classical for large N and above for tiny N.
        let n = 4096;
        let fast = flop_model(&s, n, n, n, 3);
        let classical_cost = fmm_gemm::classical_flops(n, n, n);
        assert!(fast < classical_cost, "{fast} !< {classical_cost}");
        let small = flop_model(&s, 8, 8, 8, 2);
        let classical_small = fmm_gemm::classical_flops(8, 8, 8);
        assert!(small > 0.8 * classical_small);
    }

    #[test]
    fn multiply_into_writes_over_existing_content() {
        let s = strassen();
        let mut rng = StdRng::seed_from_u64(14);
        let a = Matrix::random(32, 32, &mut rng);
        let b = Matrix::random(32, 32, &mut rng);
        let want = reference(&a, &b);
        let mut c = Matrix::filled(32, 32, 123.0);
        FastMul::new(&s, Options::default()).multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        let d = max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap();
        assert!(d < 1e-10);
    }
}
