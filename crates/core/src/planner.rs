//! Plan/execute separation for fast matrix multiplication.
//!
//! The paper's central practical lesson (§3.4, §4) is that a fast
//! algorithm only pays when the recursion depth, parallel scheme and
//! addition strategy are chosen *for the machine and the problem
//! shape*. [`Planner`] is where those choices are made — once, up
//! front, optionally driven by a measured [`GemmProfile`] and a catalog
//! of candidate decompositions — and [`Plan`] is the immutable result:
//! per-level addition plans plus the exact temporary footprint of the
//! whole recursion tree, computed by walking it once at plan time.
//! Executing a plan against a reusable [`Workspace`] then allocates
//! nothing (the FFTW plan/execute and BLIS preallocated-packing-buffer
//! discipline), which is what makes the batched front door
//! [`Plan::execute_batch`] cheap enough to serve many small multiplies.

use crate::certificate::PlanCertificate;
use crate::cutoff::GemmProfile;
use crate::executor::{
    execute_on, required_workspace, AdditionMethod, BorderHandling, ExecStats, ExecStatsSnapshot,
    LevelPlan, Options, Scheme,
};
use crate::workspace::Workspace;
use fmm_gemm::GemmScalar;
use fmm_matrix::DenseMatrix;
use fmm_tensor::Decomposition;

/// Why [`Planner::plan`] could not produce a [`Plan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// No problem shape was given ([`Planner::shape`] is mandatory —
    /// the workspace footprint depends on it).
    MissingShape,
    /// No algorithm, schedule, or auto-selection catalog was given.
    MissingAlgorithm,
    /// [`Planner::auto_algorithm`] received an empty candidate list.
    EmptyCatalog,
    /// An explicit [`Planner::steps`] conflicts with the schedule
    /// length, which is authoritative for schedules.
    StepsConflict {
        /// The schedule length.
        schedule_len: usize,
        /// The conflicting explicit steps value.
        steps: usize,
    },
    /// A decomposition coefficient is not representable in the target
    /// element type ([`fmm_matrix::Scalar::from_coeff`] returned `None`). Cannot
    /// happen for the float types; this is the designed rejection path
    /// for non-field semiring backends fed fractional APA coefficients.
    UnrepresentableCoefficient {
        /// The offending coefficient, as stored in the `.alg` data.
        value: f64,
        /// The scheme it came from, e.g. `"<3,2,2> rank 10"` — APA
        /// catalogs mix exact and border schemes, so the failing one
        /// must be named for the error to be self-diagnosing.
        scheme: String,
        /// The element type that rejected it.
        dtype: &'static str,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::MissingShape => write!(f, "Planner::shape(m, k, n) was not called"),
            PlanError::MissingAlgorithm => write!(
                f,
                "no algorithm given: call algorithm(), schedule() or auto_algorithm()"
            ),
            PlanError::EmptyCatalog => write!(f, "auto_algorithm received an empty candidate list"),
            PlanError::StepsConflict {
                schedule_len,
                steps,
            } => write!(
                f,
                "steps({steps}) conflicts with schedule length {schedule_len}; \
                 the schedule length is authoritative"
            ),
            PlanError::UnrepresentableCoefficient {
                value,
                scheme,
                dtype,
            } => write!(
                f,
                "coefficient {value} of scheme {scheme} is not representable in {dtype}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

enum AlgChoice {
    None,
    /// One decomposition applied uniformly for the chosen depth.
    Single(Decomposition),
    /// One decomposition per recursion level; the length is the depth.
    Schedule(Vec<Decomposition>),
    /// Pick the best of these candidates for the shape and profile.
    Auto(Vec<Decomposition>),
}

/// Builder that turns machine and problem knowledge into a [`Plan`].
///
/// With a real fast algorithm (e.g. `fmm_algo::strassen()`), pass a
/// measured [`GemmProfile`] via [`Planner::profile`] and let the §3.4
/// rule pick the depth; here an explicit depth keeps the example
/// self-contained (the classical decomposition has zero speedup, so
/// the rule would — correctly — plan depth 0 for it):
///
/// ```
/// use fmm_core::{Planner, Workspace};
/// use fmm_matrix::Matrix;
///
/// let dec = fmm_tensor::compose::classical(2, 2, 2); // any Decomposition
/// let plan = Planner::new()
///     .shape(128, 128, 128)
///     .algorithm(&dec)
///     .steps(2) // or .profile(GemmProfile::measure(..)) to auto-pick
///     .plan()
///     .unwrap();
/// assert_eq!(plan.depth(), 2);
/// assert!(plan.workspace_len() > 0);
/// let mut ws = Workspace::for_plan(&plan);
/// let a = Matrix::identity(128);
/// let b = Matrix::identity(128);
/// let mut c = Matrix::zeros(128, 128);
/// plan.execute(&a, &b, &mut c, &mut ws); // plan once, execute many
/// ```
pub struct Planner {
    shape: Option<(usize, usize, usize)>,
    alg: AlgChoice,
    steps: Option<usize>,
    max_steps: usize,
    profile: Option<GemmProfile>,
    additions: AdditionMethod,
    cse: bool,
    scheme: Scheme,
    border: BorderHandling,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

impl Planner {
    /// A planner with the executor defaults (write-once additions,
    /// sequential scheme, dynamic peeling, no CSE).
    #[must_use]
    pub fn new() -> Self {
        Planner {
            shape: None,
            alg: AlgChoice::None,
            steps: None,
            max_steps: 4,
            profile: None,
            additions: AdditionMethod::WriteOnce,
            cse: false,
            scheme: Scheme::Sequential,
            border: BorderHandling::DynamicPeeling,
        }
    }

    /// Problem shape `C(m×n) = A(m×k) · B(k×n)`. Mandatory: the plan's
    /// workspace footprint is exact for this shape.
    #[must_use]
    pub fn shape(mut self, m: usize, k: usize, n: usize) -> Self {
        self.shape = Some((m, k, n));
        self
    }

    /// Use one decomposition uniformly. Depth comes from
    /// [`Planner::steps`] when set, otherwise from
    /// [`GemmProfile::recommended_steps`] when a profile is present,
    /// otherwise 1.
    #[must_use]
    pub fn algorithm(mut self, dec: &Decomposition) -> Self {
        self.alg = AlgChoice::Single(dec.clone());
        self
    }

    /// Use a composed schedule: one decomposition per recursion level
    /// (§5.2). The schedule length is the depth.
    #[must_use]
    pub fn schedule(mut self, schedule: &[&Decomposition]) -> Self {
        self.alg = AlgChoice::Schedule(schedule.iter().map(|d| (*d).clone()).collect());
        self
    }

    /// Pick the best candidate for this shape: for each candidate the
    /// planner computes the recursion depth the §3.4 cutoff rule
    /// approves (via the profile when present) and scores it by its
    /// compounded per-step multiplication speedup
    /// `(1 + speedup)^steps`. A flat profile therefore sends Strassen
    /// to full depth while the classical algorithm (zero speedup) plans
    /// depth 0. Use `fmm_algo::candidates_for_shape` to get a
    /// shape-ranked candidate list from the catalog.
    #[must_use]
    pub fn auto_algorithm(mut self, candidates: &[Decomposition]) -> Self {
        self.alg = AlgChoice::Auto(candidates.to_vec());
        self
    }

    /// Replay a measured (or saved — see [`GemmProfile::from_json`])
    /// machine profile; drives the §3.4 depth rule and auto-selection.
    #[must_use]
    pub fn profile(mut self, profile: GemmProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Explicit recursion depth, overriding the profile-recommended
    /// depth. With [`Planner::schedule`] it must be 0 or equal to the
    /// schedule length.
    #[must_use]
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Cap on the profile-recommended recursion depth (default 4).
    #[must_use]
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Addition-chain evaluation strategy (§3.2).
    #[must_use]
    pub fn additions(mut self, additions: AdditionMethod) -> Self {
        self.additions = additions;
        self
    }

    /// Greedy length-2 common subexpression elimination (§3.3).
    #[must_use]
    pub fn cse(mut self, cse: bool) -> Self {
        self.cse = cse;
        self
    }

    /// Parallel scheme (§4). BFS/HYBRID plans reserve disjoint
    /// workspace for every concurrent task, making the §4.2 memory
    /// factor visible in [`Plan::workspace_len`].
    #[must_use]
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Remainder handling for non-divisible dimensions (§3.5).
    #[must_use]
    pub fn border(mut self, border: BorderHandling) -> Self {
        self.border = border;
        self
    }

    /// Absorb the strategy fields of an executor [`Options`]
    /// (additions, cse, scheme, border). `steps` is deliberately *not*
    /// copied — set it via [`Planner::steps`] or let the profile decide.
    #[must_use]
    pub fn options(mut self, opts: Options) -> Self {
        self.additions = opts.additions;
        self.cse = opts.cse;
        self.scheme = opts.scheme;
        self.border = opts.border;
        self
    }

    /// Depth the cutoff rule recommends for `dec` on this problem: the
    /// binding dimension is the smallest one.
    fn recommended_depth(&self, dec: &Decomposition, shape: (usize, usize, usize)) -> usize {
        let eff = shape.0.min(shape.1).min(shape.2);
        match &self.profile {
            Some(profile) => profile.recommended_steps(dec, eff, self.max_steps),
            None => usize::from(dec.speedup_per_step() > 0.0),
        }
    }

    /// Resolve the configuration into an immutable [`Plan`].
    ///
    /// Generic over the element type the plan will execute in; `T`
    /// defaults to `f64` through [`Plan`]'s own default parameter and
    /// is normally inferred from the matrices later passed to
    /// [`Plan::execute`]. Request single precision explicitly with
    /// `planner.plan::<f32>()`.
    pub fn plan<T: GemmScalar>(self) -> Result<Plan<T>, PlanError> {
        let shape = self.shape.ok_or(PlanError::MissingShape)?;
        let schedule: Vec<Decomposition> = match &self.alg {
            AlgChoice::None => return Err(PlanError::MissingAlgorithm),
            AlgChoice::Single(dec) => {
                let steps = self
                    .steps
                    .unwrap_or_else(|| self.recommended_depth(dec, shape));
                vec![dec.clone(); steps]
            }
            AlgChoice::Schedule(s) => {
                if let Some(steps) = self.steps {
                    if steps != 0 && steps != s.len() {
                        return Err(PlanError::StepsConflict {
                            schedule_len: s.len(),
                            steps,
                        });
                    }
                }
                s.clone()
            }
            AlgChoice::Auto(cands) => {
                if cands.is_empty() {
                    return Err(PlanError::EmptyCatalog);
                }
                let mut best: Option<(f64, &Decomposition, usize)> = None;
                for dec in cands {
                    let steps = self
                        .steps
                        .unwrap_or_else(|| self.recommended_depth(dec, shape));
                    let score = (1.0 + dec.speedup_per_step()).powi(steps as i32);
                    if best.is_none_or(|(s, _, _)| score > s) {
                        best = Some((score, dec, steps));
                    }
                }
                let (_, dec, steps) = best.expect("candidates are non-empty");
                vec![dec.clone(); steps]
            }
        };
        let opts = Options {
            steps: schedule.len(),
            additions: self.additions,
            cse: self.cse,
            scheme: self.scheme,
            border: self.border,
        };
        let levels: Vec<LevelPlan<T>> = schedule
            .iter()
            .map(|d| {
                LevelPlan::try_new(d, opts.cse).map_err(|value| {
                    PlanError::UnrepresentableCoefficient {
                        value,
                        scheme: format!("<{},{},{}> rank {}", d.m, d.k, d.n, d.rank()),
                        dtype: T::NAME,
                    }
                })
            })
            .collect::<Result<_, _>>()?;
        let ws_len = required_workspace(&levels, &opts, shape.0, shape.1, shape.2);
        let plan = Plan {
            levels,
            opts,
            shape,
            ws_len,
        };
        // Audit: the certificate re-derives the workspace footprint
        // from the recursion tree independently of the executor's
        // NodeLayout arithmetic; any disagreement is a sizing bug.
        debug_assert_eq!(
            plan.certificate().workspace_len,
            ws_len,
            "plan certificate disagrees with precomputed workspace"
        );
        Ok(plan)
    }
}

/// An immutable, shape-specialized execution plan: per-level addition
/// plans (coefficients pre-injected into the element type) plus the
/// precomputed temporary footprint of the whole recursion tree.
/// Produced by [`Planner::plan`]; executed repeatedly against a
/// [`Workspace`] with zero per-call allocation. `Plan` (no parameter)
/// is a `Plan<f64>`.
pub struct Plan<T = f64> {
    levels: Vec<LevelPlan<T>>,
    opts: Options,
    shape: (usize, usize, usize),
    ws_len: usize,
}

impl<T: GemmScalar> Plan<T> {
    /// The `(m, k, n)` problem shape this plan is specialized for.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.shape
    }

    /// Recursion depth the planner settled on.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The resolved executor options (with `steps` normalized to the
    /// schedule length).
    pub fn options(&self) -> Options {
        self.opts
    }

    /// Exact workspace requirement in scalar elements: every S/T/M
    /// buffer, CSE temporary and padding copy of the recursion tree,
    /// summed with per-task reservations under BFS/HYBRID.
    pub fn workspace_len(&self) -> usize {
        self.ws_len
    }

    /// [`Plan::workspace_len`] in bytes (of this plan's element type).
    pub fn workspace_bytes(&self) -> usize {
        self.ws_len * std::mem::size_of::<T>()
    }

    /// Statically re-derive this plan's composed rank, gemm counts,
    /// flop count and exact workspace footprint from the recursion
    /// tree — an independent audit of the planner's precomputed values
    /// (cross-checked with a `debug_assert` at plan time) and an exact
    /// prediction of the executor's runtime statistics.
    pub fn certificate(&self) -> PlanCertificate {
        crate::certificate::derive_certificate(&self.levels, &self.opts, self.shape)
    }

    /// `C = A · B`. After the first call on a given `workspace`,
    /// repeated calls allocate nothing.
    ///
    /// # Panics
    /// Panics when the operand shapes differ from [`Plan::shape`].
    pub fn execute(
        &self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
        c: &mut DenseMatrix<T>,
        workspace: &mut Workspace<T>,
    ) {
        self.exec(a, b, c, workspace, None);
    }

    /// As [`Plan::execute`], additionally returning execution
    /// statistics including the workspace footprint and whether the
    /// workspace buffer was reused without growing.
    pub fn execute_with_stats(
        &self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
        c: &mut DenseMatrix<T>,
        workspace: &mut Workspace<T>,
    ) -> ExecStatsSnapshot {
        let stats = ExecStats::default();
        let steals_before = fmm_runtime::steal_count();
        let reused = self.exec(a, b, c, workspace, Some(&stats));
        let tasks_stolen = fmm_runtime::steal_count() - steals_before;
        stats.snapshot(self.workspace_bytes() as u64, reused, tasks_stolen)
    }

    fn exec(
        &self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
        c: &mut DenseMatrix<T>,
        workspace: &mut Workspace<T>,
        stats: Option<&ExecStats>,
    ) -> bool {
        let (m, k, n) = self.shape;
        assert_eq!(a.shape(), (m, k), "A shape differs from the planned shape");
        assert_eq!(b.shape(), (k, n), "B shape differs from the planned shape");
        assert_eq!(c.shape(), (m, n), "C shape differs from the planned shape");
        let (buf, reused) = workspace.checkout(self.ws_len);
        execute_on(
            &self.levels,
            &self.opts,
            a.as_ref(),
            b.as_ref(),
            c.as_mut(),
            stats,
            buf,
        );
        reused
    }

    /// Batched front door: run every `(Aᵢ, Bᵢ)` product of the batch in
    /// parallel — one task per problem, sharing nothing but the plan,
    /// load-balanced across the current pool by the work-stealing
    /// runtime (`rayon::current_num_threads` wide; run inside
    /// `ThreadPool::install` or set `FMM_THREADS` to control it) — and
    /// return the fresh outputs. All problems must have the planned
    /// shape. For allocation-free repeated batches, keep the outputs
    /// and workspaces and use [`Plan::execute_batch_into`].
    pub fn execute_batch(
        &self,
        batch: &[(&DenseMatrix<T>, &DenseMatrix<T>)],
    ) -> Vec<DenseMatrix<T>> {
        let (m, _, n) = self.shape;
        let mut outs: Vec<DenseMatrix<T>> =
            batch.iter().map(|_| DenseMatrix::zeros(m, n)).collect();
        let mut workspaces: Vec<Workspace<T>> =
            batch.iter().map(|_| Workspace::for_plan(self)).collect();
        self.execute_batch_into(batch, &mut outs, &mut workspaces);
        outs
    }

    /// As [`Plan::execute_batch`], writing into caller-provided outputs
    /// and workspaces (one per problem) so repeated batches allocate
    /// nothing.
    ///
    /// # Panics
    /// Panics when the three slices differ in length or any problem
    /// differs from the planned shape.
    pub fn execute_batch_into(
        &self,
        batch: &[(&DenseMatrix<T>, &DenseMatrix<T>)],
        outs: &mut [DenseMatrix<T>],
        workspaces: &mut [Workspace<T>],
    ) {
        assert_eq!(batch.len(), outs.len(), "one output per batch problem");
        assert_eq!(
            batch.len(),
            workspaces.len(),
            "one workspace per batch problem"
        );
        rayon::scope(|scope| {
            for ((&(a, b), c), ws) in batch.iter().zip(outs.iter_mut()).zip(workspaces.iter_mut()) {
                scope.spawn(move |_| self.execute(a, b, c, ws));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_gemm::naive_gemm;
    use fmm_matrix::{max_abs_diff, Matrix};
    use fmm_tensor::compose::classical;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strassen() -> Decomposition {
        crate::codegen_fixture()
    }

    fn flat_profile() -> GemmProfile {
        GemmProfile::from_samples(vec![(64, 4.0), (4096, 4.0)])
    }

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        c
    }

    #[test]
    fn flat_profile_plans_deep_strassen_and_shallow_classical() {
        let plan = Planner::new()
            .shape(512, 512, 512)
            .algorithm(&strassen())
            .profile(flat_profile())
            .plan::<f64>()
            .unwrap();
        assert!(plan.depth() > 0, "flat profile must recurse Strassen");

        let plan = Planner::new()
            .shape(512, 512, 512)
            .algorithm(&classical(2, 2, 2))
            .profile(flat_profile())
            .plan::<f64>()
            .unwrap();
        assert_eq!(plan.depth(), 0, "classical has no speedup, never pays");
    }

    #[test]
    fn auto_algorithm_prefers_the_faster_candidate() {
        let cands = vec![classical(2, 2, 2), strassen()];
        let plan = Planner::new()
            .shape(256, 256, 256)
            .auto_algorithm(&cands)
            .profile(flat_profile())
            .plan::<f64>()
            .unwrap();
        assert!(plan.depth() > 0);
        let lv = plan.options();
        assert_eq!(lv.steps, plan.depth());
    }

    #[test]
    fn plan_errors_are_reported() {
        assert_eq!(
            Planner::new().algorithm(&strassen()).plan::<f64>().err(),
            Some(PlanError::MissingShape)
        );
        assert_eq!(
            Planner::new().shape(8, 8, 8).plan::<f64>().err(),
            Some(PlanError::MissingAlgorithm)
        );
        assert_eq!(
            Planner::new()
                .shape(8, 8, 8)
                .auto_algorithm(&[])
                .plan::<f64>()
                .err(),
            Some(PlanError::EmptyCatalog)
        );
        let s = strassen();
        let sched = [&s, &s];
        assert_eq!(
            Planner::new()
                .shape(8, 8, 8)
                .schedule(&sched)
                .steps(3)
                .plan::<f64>()
                .err(),
            Some(PlanError::StepsConflict {
                schedule_len: 2,
                steps: 3
            })
        );
        // steps == 0 and steps == len are both accepted for schedules.
        assert_eq!(
            Planner::new()
                .shape(8, 8, 8)
                .schedule(&sched)
                .steps(0)
                .plan::<f64>()
                .unwrap()
                .depth(),
            2
        );
    }

    #[test]
    fn execute_matches_reference_and_reuses_workspace() {
        let plan = Planner::new()
            .shape(96, 96, 96)
            .algorithm(&strassen())
            .steps(2)
            .plan()
            .unwrap();
        let mut ws = Workspace::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut last_bytes = None;
        for trial in 0..3 {
            let a = Matrix::random(96, 96, &mut rng);
            let b = Matrix::random(96, 96, &mut rng);
            let mut c = Matrix::zeros(96, 96);
            let stats = plan.execute_with_stats(&a, &b, &mut c, &mut ws);
            let want = reference(&a, &b);
            let d = max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap();
            assert!(d < 1e-9, "trial {trial}: diff {d}");
            assert_eq!(stats.workspace_bytes, plan.workspace_bytes() as u64);
            if let Some(prev) = last_bytes {
                assert_eq!(stats.workspace_bytes, prev);
            }
            last_bytes = Some(stats.workspace_bytes);
            assert_eq!(stats.workspace_reused, trial > 0);
        }
    }

    #[test]
    fn batch_matches_reference_per_problem() {
        let plan = Planner::new()
            .shape(40, 40, 40)
            .algorithm(&strassen())
            .steps(1)
            .plan()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let problems: Vec<(Matrix, Matrix)> = (0..5)
            .map(|_| {
                (
                    Matrix::random(40, 40, &mut rng),
                    Matrix::random(40, 40, &mut rng),
                )
            })
            .collect();
        let batch: Vec<(&Matrix, &Matrix)> = problems.iter().map(|(a, b)| (a, b)).collect();
        let outs = plan.execute_batch(&batch);
        assert_eq!(outs.len(), 5);
        for ((a, b), c) in problems.iter().zip(&outs) {
            let want = reference(a, b);
            let d = max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap();
            assert!(d < 1e-9, "batch entry diff {d}");
        }
    }

    #[test]
    fn zero_depth_plan_is_plain_gemm() {
        let plan = Planner::new()
            .shape(33, 21, 17)
            .algorithm(&strassen())
            .steps(0)
            .plan()
            .unwrap();
        assert_eq!(plan.workspace_len(), 0);
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random(33, 21, &mut rng);
        let b = Matrix::random(21, 17, &mut rng);
        let mut c = Matrix::zeros(33, 17);
        let mut ws = Workspace::new();
        plan.execute(&a, &b, &mut c, &mut ws);
        let want = reference(&a, &b);
        assert!(max_abs_diff(&want.as_ref(), &c.as_ref()).unwrap() < 1e-10);
    }
}
