//! Addition plans: how the `S_r`, `T_r` and `C_ij` linear combinations
//! are evaluated, including greedy length-2 common subexpression
//! elimination (paper §3.3).

use fmm_matrix::Matrix;
use std::collections::HashMap;

/// A variable in an addition chain: either an original operand block or
/// a temporary produced by CSE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Var {
    /// Index of an operand sub-block (row index of U or V; row-major).
    Block(usize),
    /// Index into the plan's temporary list.
    Temp(usize),
}

/// One linear combination `Σ coefᵢ · varᵢ`.
pub type Chain = Vec<(Var, f64)>;

/// Evaluation plan for one side (U ⇒ all `S_r`, V ⇒ all `T_r`).
#[derive(Debug, Clone)]
pub struct SidePlan {
    /// CSE temporaries, in evaluation order (a temp may reference
    /// earlier temps).
    pub temps: Vec<Chain>,
    /// One chain per multiplication `r`; `chains[r]` forms `S_r`/`T_r`.
    pub chains: Vec<Chain>,
    /// For chains that are a single scaled block (`nnz = 1`) the
    /// executor skips the temporary entirely and pipes the scale through
    /// to the output combination (paper §3.1). `passthrough[r]` is
    /// `Some((block, scale))` in that case.
    pub passthrough: Vec<Option<(usize, f64)>>,
}

impl SidePlan {
    /// Number of scalar-block additions this plan performs
    /// (each chain of `z` terms costs `z − 1`; each temp costs its
    /// length − 1).
    pub fn addition_count(&self) -> usize {
        let chain_adds: usize = self.chains.iter().map(|c| c.len().saturating_sub(1)).sum();
        let temp_adds: usize = self.temps.iter().map(|t| t.len().saturating_sub(1)).sum();
        chain_adds + temp_adds
    }

    /// Number of CSE temporaries.
    pub fn temp_count(&self) -> usize {
        self.temps.len()
    }
}

/// Build the plan for one factor matrix: chains are its columns.
///
/// With `cse = true`, greedily eliminate the most frequent length-2
/// subexpression (a pair of variables with a fixed coefficient ratio)
/// until no pair occurs at least twice, exactly the greedy scheme whose
/// savings the paper reports in Table 3.
pub fn side_plan(factor: &Matrix, cse: bool, tol: f64) -> SidePlan {
    let rank = factor.cols();
    let mut chains: Vec<Chain> = (0..rank)
        .map(|c| {
            (0..factor.rows())
                .filter(|&i| factor[(i, c)].abs() > tol)
                .map(|i| (Var::Block(i), factor[(i, c)]))
                .collect()
        })
        .collect();
    let mut temps: Vec<Chain> = Vec::new();

    if cse {
        while let Some(((va, vb, ratio), count)) = most_frequent_pair(&chains) {
            if count < 2 {
                break;
            }
            // New temp Y = va + ratio·vb.
            let y = Var::Temp(temps.len());
            temps.push(vec![(va, 1.0), (vb, ratio)]);
            for chain in &mut chains {
                rewrite_chain(chain, va, vb, ratio, y);
            }
        }
    }

    let passthrough = chains
        .iter()
        .map(|c| match c.as_slice() {
            [(Var::Block(b), coef)] => Some((*b, *coef)),
            _ => None,
        })
        .collect();

    SidePlan {
        temps,
        chains,
        passthrough,
    }
}

/// Key identifying a subexpression up to scale: ordered variable pair
/// plus the quantized coefficient ratio `coef_b / coef_a`.
fn pair_key(va: Var, ca: f64, vb: Var, cb: f64) -> (Var, Var, i64) {
    // Quantize the ratio to 1/64ths: catalog coefficients are small
    // dyadic rationals, so this is exact for them.
    let ratio = cb / ca;
    (va, vb, (ratio * 64.0).round() as i64)
}

fn most_frequent_pair(chains: &[Chain]) -> Option<((Var, Var, f64), usize)> {
    let mut counts: HashMap<(Var, Var, i64), usize> = HashMap::new();
    for chain in chains {
        for x in 0..chain.len() {
            for y in x + 1..chain.len() {
                let (va, ca) = chain[x];
                let (vb, cb) = chain[y];
                let key = pair_key(va, ca, vb, cb);
                *counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(key, c)| (c, std::cmp::Reverse(quant_abs(key.2))))
        .map(|((va, vb, q), c)| ((va, vb, q as f64 / 64.0), c))
}

fn quant_abs(q: i64) -> i64 {
    q.abs()
}

/// Replace `ca·va + ca·ratio·vb` by `ca·y` in `chain` when present.
fn rewrite_chain(chain: &mut Chain, va: Var, vb: Var, ratio: f64, y: Var) {
    let pos_a = chain.iter().position(|&(v, _)| v == va);
    let pos_b = chain.iter().position(|&(v, _)| v == vb);
    if let (Some(ia), Some(ib)) = (pos_a, pos_b) {
        let ca = chain[ia].1;
        let cb = chain[ib].1;
        if ((cb / ca) * 64.0).round() as i64 == (ratio * 64.0).round() as i64 {
            chain[ia] = (y, ca);
            chain.remove(ib);
        }
    }
}

/// CSE statistics for Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CseStats {
    /// Additions in S/T formation without CSE.
    pub original_adds: usize,
    /// Additions with CSE (including temp formation).
    pub cse_adds: usize,
    /// Number of length-2 subexpressions eliminated.
    pub subexpressions: usize,
}

impl CseStats {
    /// `original − cse`, the "Additions saved" column of Table 3.
    pub fn saved(&self) -> usize {
        self.original_adds.saturating_sub(self.cse_adds)
    }
}

/// Compute Table-3-style CSE statistics for the S and T chains of an
/// algorithm's U and V factors.
pub fn cse_stats(u: &Matrix, v: &Matrix, tol: f64) -> CseStats {
    let before =
        side_plan(u, false, tol).addition_count() + side_plan(v, false, tol).addition_count();
    let up = side_plan(u, true, tol);
    let vp = side_plan(v, true, tol);
    CseStats {
        original_adds: before,
        cse_adds: up.addition_count() + vp.addition_count(),
        subexpressions: up.temp_count() + vp.temp_count(),
    }
}

/// Plan for the output side: one chain per output block `C_ij`, built
/// from the *rows* of W. No CSE is applied on the output side (the
/// paper's Table 3 covers S/T formation only).
pub fn output_plan(w: &Matrix, tol: f64) -> Vec<Vec<(usize, f64)>> {
    (0..w.rows())
        .map(|i| {
            (0..w.cols())
                .filter(|&r| w[(i, r)].abs() > tol)
                .map(|r| (r, w[(i, r)]))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn plan_without_cse_mirrors_columns() {
        let u = mat(&[&[1.0, 0.0], &[-1.0, 2.0], &[0.0, 0.0], &[0.0, 1.0]]);
        let p = side_plan(&u, false, 1e-12);
        assert_eq!(p.chains.len(), 2);
        assert_eq!(
            p.chains[0],
            vec![(Var::Block(0), 1.0), (Var::Block(1), -1.0)]
        );
        assert_eq!(
            p.chains[1],
            vec![(Var::Block(1), 2.0), (Var::Block(3), 1.0)]
        );
        assert_eq!(p.addition_count(), 2);
        assert!(p.passthrough.iter().all(|x| x.is_none()));
    }

    #[test]
    fn passthrough_detected_for_singletons() {
        let u = mat(&[&[1.0, 0.0], &[0.0, -2.0]]);
        let p = side_plan(&u, false, 1e-12);
        assert_eq!(p.passthrough[0], Some((0, 1.0)));
        assert_eq!(p.passthrough[1], Some((1, -2.0)));
        assert_eq!(p.addition_count(), 0);
    }

    #[test]
    fn cse_eliminates_repeated_pair() {
        // Three columns all containing (b0 + b1); like T11/T25 in §3.3.
        let u = mat(&[
            &[1.0, 1.0, 2.0],
            &[1.0, 1.0, 2.0],
            &[1.0, 0.0, 0.0],
            &[0.0, -1.0, 0.0],
        ]);
        let p = side_plan(&u, true, 1e-12);
        assert_eq!(p.temps.len(), 1);
        assert_eq!(p.temps[0], vec![(Var::Block(0), 1.0), (Var::Block(1), 1.0)]);
        // chains: col0 = temp + b2 (1 add), col1 = temp - b3 (1 add),
        // col2 = 2*temp (0 adds) → 2 + 1 temp add = 3 vs original 2+2+1=5.
        assert_eq!(p.addition_count(), 3);
        let no = side_plan(&u, false, 1e-12);
        assert_eq!(no.addition_count(), 5);
    }

    #[test]
    fn cse_respects_coefficient_ratio() {
        // col0 has b0 + b1, col1 has b0 - b1: different ratios, no CSE.
        let u = mat(&[&[1.0, 1.0], &[1.0, -1.0]]);
        let p = side_plan(&u, true, 1e-12);
        assert!(p.temps.is_empty());
    }

    #[test]
    fn cse_matches_scaled_occurrences() {
        // col0 = b0 + b1, col1 = -b0 - b1 = -(b0 + b1): same ratio +1.
        let u = mat(&[&[1.0, -1.0], &[1.0, -1.0]]);
        let p = side_plan(&u, true, 1e-12);
        assert_eq!(p.temps.len(), 1);
        // both chains become a single scaled temp → 1 temp add total
        assert_eq!(p.addition_count(), 1);
        // and they are NOT passthrough (temp is not an original block)
        assert!(p.passthrough.iter().all(|x| x.is_none()));
    }

    #[test]
    fn strassen_has_no_length2_cse() {
        // Strassen's U: no repeated length-2 subexpression occurs twice.
        let u = mat(&[
            &[1., 0., 1., 0., 1., -1., 0.],
            &[0., 0., 0., 0., 1., 0., 1.],
            &[0., 1., 0., 0., 0., 1., 0.],
            &[1., 1., 0., 1., 0., 0., -1.],
        ]);
        let p = side_plan(&u, true, 1e-12);
        assert_eq!(p.temps.len(), 0);
        assert_eq!(p.addition_count(), 5);
    }

    #[test]
    fn output_plan_reads_rows() {
        let w = mat(&[&[1.0, 0.0, -1.0], &[0.0, 2.0, 0.0]]);
        let p = output_plan(&w, 1e-12);
        assert_eq!(p[0], vec![(0, 1.0), (2, -1.0)]);
        assert_eq!(p[1], vec![(1, 2.0)]);
    }

    #[test]
    fn cse_stats_report() {
        let u = mat(&[
            &[1.0, 1.0, 2.0],
            &[1.0, 1.0, 2.0],
            &[1.0, 0.0, 0.0],
            &[0.0, -1.0, 0.0],
        ]);
        let v = mat(&[&[1.0], &[0.0]]);
        let s = cse_stats(&u, &v, 1e-12);
        assert_eq!(s.original_adds, 5);
        assert_eq!(s.cse_adds, 3);
        assert_eq!(s.subexpressions, 1);
        assert_eq!(s.saved(), 2);
    }

    #[test]
    fn temps_can_chain_recursively() {
        // Four columns sharing (b0+b1), two also sharing ((b0+b1)+b2).
        let u = mat(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 1.0],
        ]);
        let p = side_plan(&u, true, 1e-12);
        assert!(!p.temps.is_empty());
        // Evaluating the plan must still reproduce each original column —
        // expand chains symbolically and compare.
        let expand = |p: &SidePlan, chain: &Chain| -> Vec<f64> {
            fn add_into(p: &SidePlan, acc: &mut Vec<f64>, var: Var, coef: f64) {
                match var {
                    Var::Block(b) => acc[b] += coef,
                    Var::Temp(t) => {
                        let def = p.temps[t].clone();
                        for (v, c) in def {
                            add_into(p, acc, v, coef * c);
                        }
                    }
                }
            }
            let mut acc = vec![0.0; 4];
            for &(v, c) in chain {
                add_into(p, &mut acc, v, c);
            }
            acc
        };
        for (col, chain) in p.chains.iter().enumerate() {
            let got = expand(&p, chain);
            for row in 0..4 {
                assert!(
                    (got[row] - u[(row, col)]).abs() < 1e-12,
                    "column {col} row {row}: {} vs {}",
                    got[row],
                    u[(row, col)]
                );
            }
        }
    }
}
