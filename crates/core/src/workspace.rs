//! Reusable execution workspace: one flat scalar arena that a
//! [`crate::Plan`] carves all of its S/T/M temporaries out of.
//!
//! Planning computes the exact peak temporary footprint by walking the
//! recursion tree once ([`crate::Plan::workspace_len`]); executing then
//! checks a right-sized slice out of a `Workspace` and performs **no**
//! heap allocation — the FFTW/BLIS plan-execute discipline applied to
//! fast matrix multiplication. A workspace grows monotonically: once it
//! has served a plan, every further execute of that plan (or any
//! smaller one) reuses the same buffer, which
//! [`crate::ExecStatsSnapshot::workspace_reused`] lets tests assert.
//!
//! The arena is carved in **elements of the plan's scalar type** —
//! a `Workspace::<f32>` holds half the bytes of an equally-sized
//! `Workspace` (f64) — so a workspace only serves plans of its own
//! element type (the type system enforces this).

use crate::planner::Plan;
use fmm_gemm::GemmScalar;
use fmm_matrix::Scalar;

/// A reusable bump arena for [`crate::Plan::execute`].
///
/// Create one per thread of control (workspaces are not shared between
/// concurrent executes; [`crate::Plan::execute_batch`] uses one per
/// batch entry) and keep it alive across calls to amortize the single
/// allocation.
#[derive(Debug)]
pub struct Workspace<T = f64> {
    buf: Vec<T>,
}

impl<T: Scalar> Default for Workspace<T> {
    fn default() -> Self {
        Workspace { buf: Vec::new() }
    }
}

impl<T: GemmScalar> Workspace<T> {
    /// An empty workspace; the first execute sizes it.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace pre-sized for `plan`, so even the first
    /// [`crate::Plan::execute`] allocates nothing.
    pub fn for_plan(plan: &Plan<T>) -> Self {
        Workspace {
            buf: vec![T::ZERO; plan.workspace_len()],
        }
    }

    /// A workspace holding `len` scalar elements.
    pub fn with_len(len: usize) -> Self {
        Workspace {
            buf: vec![T::ZERO; len],
        }
    }

    /// Current capacity in scalar elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no buffer has been acquired yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrow the first `len` elements, growing the buffer only when it
    /// is too small. Returns the slice and whether the existing buffer
    /// was reused as-is (i.e. the checkout allocated nothing).
    pub(crate) fn checkout(&mut self, len: usize) -> (&mut [T], bool) {
        let reused = self.buf.len() >= len;
        if !reused {
            self.buf.resize(len, T::ZERO);
        }
        (&mut self.buf[..len], reused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_grows_then_reuses() {
        let mut ws = Workspace::<f64>::new();
        assert!(ws.is_empty());
        let (slice, reused) = ws.checkout(16);
        assert_eq!(slice.len(), 16);
        assert!(!reused, "first checkout must allocate");
        let (_, reused) = ws.checkout(16);
        assert!(reused, "same-size checkout must not allocate");
        let (_, reused) = ws.checkout(8);
        assert!(reused, "smaller checkout must not allocate");
        assert_eq!(ws.len(), 16);
        let (_, reused) = ws.checkout(32);
        assert!(!reused, "larger checkout must grow");
        assert_eq!(ws.len(), 32);
    }

    #[test]
    fn with_len_pre_sizes() {
        let mut ws = Workspace::<f64>::with_len(10);
        assert_eq!(ws.len(), 10);
        let (_, reused) = ws.checkout(10);
        assert!(reused);
    }

    #[test]
    fn f32_workspace_checkout() {
        let mut ws = Workspace::<f32>::with_len(12);
        let (slice, reused) = ws.checkout(12);
        assert!(reused);
        assert!(slice.iter().all(|&x| x == 0.0f32));
    }
}
