//! The recursive fast-matrix-multiplication executor.
//!
//! Given a schedule of verified decompositions (one per recursion
//! level — a uniform algorithm is a schedule of `L` copies; the
//! composed ⟨54,54,54⟩ algorithm of §5.2 is a schedule of three
//! different ones), the executor:
//!
//! 1. splits off dynamic-peeling strips so arbitrary dimensions work
//!    (§3.5),
//! 2. forms the `S_r`/`T_r` linear combinations with the configured
//!    addition strategy (§3.2) and optional CSE temporaries (§3.3),
//!    piping singleton-column scales through to the output combination
//!    instead of materializing a temporary (§3.1),
//! 3. recursively multiplies `M_r = S_r · T_r`, switching among
//!    sequential, DFS, BFS and HYBRID parallel schemes (§4), and
//! 4. combines the `M_r` into `C` with the rows of `W`.
//!
//! The whole recursion is generic over the element type
//! ([`fmm_gemm::GemmScalar`]): decomposition coefficients are injected
//! into the scalar once per level at plan time
//! ([`Scalar::from_coeff`]), so the hot path never converts.
//!
//! # Memory model
//!
//! The executor never allocates temporaries itself: every S/T/M buffer,
//! every CSE temporary, and the padding copies are carved out of a flat
//! `&mut [T]` workspace whose exact size is computed by walking the
//! recursion tree once ([`required_workspace`]). The [`crate::Plan`] API
//! computes that size at plan time and reuses a [`crate::Workspace`]
//! across executes (zero allocation on the hot path); the lower-level
//! [`FastMul`] allocates one right-sized buffer per call. Under the
//! BFS/HYBRID schemes each spawned task receives a disjoint slice of the
//! workspace, which makes the §4.2 memory growth factor explicit in
//! [`crate::Plan::workspace_len`].

use crate::plan::{output_plan, side_plan, SidePlan, Var};
use fmm_gemm::{gemm, par_gemm, GemmScalar};
use fmm_matrix::kernels;
use fmm_matrix::partition::{Grid, PeelSplit};
use fmm_matrix::{DenseMatrix, MatMut, MatRef, Scalar};
use fmm_tensor::Decomposition;

/// How the bandwidth-bound addition chains are evaluated (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdditionMethod {
    /// One `daxpy`-style pass per chain term.
    Pairwise,
    /// Each destination entry written exactly once (the paper's
    /// best-performing variant).
    #[default]
    WriteOnce,
    /// Each source block read once; all dependent temporaries updated
    /// while it streams through cache.
    Streaming,
}

/// How non-divisible dimensions are handled (§3.5).
///
/// The paper chooses dynamic peeling to limit memory and keep code
/// generation simple; padding is the classical alternative it compares
/// against in the discussion, implemented here for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BorderHandling {
    /// Fix up remainder strips with thin classical products at every
    /// recursion level (the paper's choice).
    #[default]
    DynamicPeeling,
    /// Zero-pad the operands up front so every level divides exactly,
    /// then copy the result back. Simpler, but costs extra memory and
    /// bandwidth proportional to the padding.
    Padding,
}

/// Shared-memory parallelization scheme (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// Single-threaded recursion, sequential base-case gemm.
    #[default]
    Sequential,
    /// Depth-first: recursion is sequential, every base-case gemm and
    /// every addition uses all threads (§4.1).
    Dfs,
    /// Breadth-first: each recursive multiply is an independent task
    /// with sequential leaf gemms; per-level joins are the taskwait
    /// barriers (§4.2).
    Bfs,
    /// BFS for the first `R^L − (R^L mod P)` leaves, all-threads DFS
    /// for the remainder (§4.3). The runtime's work stealing supplies
    /// the "no oversubscription" guarantee the paper builds with
    /// OpenMP locks: an idle worker steals a pending BFS task instead
    /// of a new thread being created.
    Hybrid,
}

impl Scheme {
    /// True when recursive children run as independent tasks whose
    /// workspaces must be disjoint (BFS/HYBRID); Sequential/DFS run
    /// children one at a time and share a single child region.
    pub(crate) fn concurrent_children(self) -> bool {
        matches!(self, Scheme::Bfs | Scheme::Hybrid)
    }
}

/// Executor configuration.
///
/// `Eq`/`Hash` make a whole configuration usable as a cache key, which
/// is how [`crate::FmmEngine`] indexes its plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Options {
    /// Recursion depth (`steps` in the paper).
    ///
    /// Authoritative for [`FastMul::new`]. For schedule-based
    /// constructors ([`FastMul::with_schedule`],
    /// [`crate::Planner::schedule`]) the **schedule length** is the
    /// depth: pass `steps: 0` (or the matching length) there — a
    /// conflicting nonzero value trips a `debug_assert`.
    pub steps: usize,
    /// Addition-chain evaluation strategy.
    pub additions: AdditionMethod,
    /// Apply greedy length-2 common subexpression elimination.
    pub cse: bool,
    /// Parallel scheme.
    pub scheme: Scheme,
    /// Remainder handling for non-divisible dimensions.
    pub border: BorderHandling,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            steps: 1,
            additions: AdditionMethod::WriteOnce,
            cse: false,
            scheme: Scheme::Sequential,
            border: BorderHandling::DynamicPeeling,
        }
    }
}

/// Execution statistics collected by
/// [`FastMul::multiply_into_with_stats`]: used by the tests to verify
/// the `R^L` leaf count and by the memory discussion of §4.2.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Base-case gemm calls (the "active multiplications").
    pub base_gemms: std::sync::atomic::AtomicU64,
    /// Classical fix-up products issued by dynamic peeling.
    pub peel_gemms: std::sync::atomic::AtomicU64,
    /// Total scalar elements checked out of the workspace for S/T/M
    /// temporaries and padding copies.
    pub temp_elements: std::sync::atomic::AtomicU64,
    /// Bitmask of pool workers that executed at least one gemm during
    /// this run (bit 63 stands for any non-worker thread). Feeds
    /// [`ExecStatsSnapshot::threads_used`].
    pub thread_mask: std::sync::atomic::AtomicU64,
}

/// Plain snapshot of [`ExecStats`]. Serializable
/// ([`ExecStatsSnapshot::to_json`]/[`ExecStatsSnapshot::from_json`])
/// so per-run execution statistics can cross a process boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExecStatsSnapshot {
    /// Base-case gemm calls.
    pub base_gemms: u64,
    /// Peel fix-up gemm calls.
    pub peel_gemms: u64,
    /// Total temporary scalar elements checked out of the workspace.
    pub temp_elements: u64,
    /// Size in bytes of the workspace this execution ran in.
    pub workspace_bytes: u64,
    /// True when the execution reused an existing workspace buffer
    /// without growing it — i.e. the run performed no temp allocation.
    pub workspace_reused: bool,
    /// Number of distinct threads that executed at least one gemm of
    /// this run — direct evidence of how many workers participated.
    /// Exact for pools up to 63 workers; wider pools alias into 63
    /// index buckets (plus one for non-worker threads), making this a
    /// lower bound there.
    pub threads_used: u32,
    /// Work-stealing events (tasks taken from another worker's deque)
    /// observed across the runtime while this run executed. `> 0` under
    /// BFS/HYBRID with several workers means the scheduler actually
    /// balanced load; always 0 for Sequential. Process-wide counter
    /// diff, so concurrent executions can inflate each other's count.
    pub tasks_stolen: u64,
}

impl ExecStatsSnapshot {
    /// Serialize as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parse a snapshot previously produced by
    /// [`ExecStatsSnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl ExecStats {
    pub(crate) fn snapshot(
        &self,
        workspace_bytes: u64,
        workspace_reused: bool,
        tasks_stolen: u64,
    ) -> ExecStatsSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        ExecStatsSnapshot {
            base_gemms: self.base_gemms.load(Relaxed),
            peel_gemms: self.peel_gemms.load(Relaxed),
            temp_elements: self.temp_elements.load(Relaxed),
            workspace_bytes,
            workspace_reused,
            threads_used: self.thread_mask.load(Relaxed).count_ones(),
            tasks_stolen,
        }
    }
}

/// One side's addition chains with coefficients already injected into
/// the target scalar type (the typed twin of [`SidePlan`]).
pub(crate) struct TypedSide<T> {
    pub(crate) temps: Vec<Vec<(Var, T)>>,
    pub(crate) chains: Vec<Vec<(Var, T)>>,
    pub(crate) passthrough: Vec<Option<(usize, T)>>,
}

fn typed_chain<T: Scalar>(chain: &[(Var, f64)]) -> Result<Vec<(Var, T)>, f64> {
    chain
        .iter()
        .map(|&(v, c)| T::from_coeff(c).map(|tc| (v, tc)).ok_or(c))
        .collect()
}

impl<T: Scalar> TypedSide<T> {
    fn try_from(plan: &SidePlan) -> Result<Self, f64> {
        Ok(TypedSide {
            temps: plan
                .temps
                .iter()
                .map(|t| typed_chain(t))
                .collect::<Result<_, _>>()?,
            chains: plan
                .chains
                .iter()
                .map(|c| typed_chain(c))
                .collect::<Result<_, _>>()?,
            passthrough: plan
                .passthrough
                .iter()
                .map(|p| match p {
                    Some((b, c)) => T::from_coeff(*c).map(|tc| Some((*b, tc))).ok_or(*c),
                    None => Ok(None),
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Pre-computed per-level plan, with coefficients in the element type.
pub(crate) struct LevelPlan<T> {
    pub(crate) m: usize,
    pub(crate) k: usize,
    pub(crate) n: usize,
    uplan: TypedSide<T>,
    vplan: TypedSide<T>,
    wplan: Vec<Vec<(usize, T)>>,
    pub(crate) rank: usize,
}

impl<T: Scalar> LevelPlan<T> {
    /// Build the level plan, injecting every coefficient through
    /// [`Scalar::from_coeff`]. `Err` carries the first coefficient the
    /// scalar type rejected — impossible for the float types, the
    /// designed failure mode for non-field semirings.
    pub(crate) fn try_new(dec: &Decomposition, cse: bool) -> Result<Self, f64> {
        const TOL: f64 = 1e-14;
        let wplan = output_plan(&dec.w, TOL)
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(r, c)| T::from_coeff(c).map(|tc| (r, tc)).ok_or(c))
                    .collect::<Result<Vec<_>, f64>>()
            })
            .collect::<Result<_, _>>()?;
        Ok(LevelPlan {
            m: dec.m,
            k: dec.k,
            n: dec.n,
            uplan: TypedSide::try_from(&side_plan(&dec.u, cse, TOL))?,
            vplan: TypedSide::try_from(&side_plan(&dec.v, cse, TOL))?,
            wplan,
            rank: dec.rank(),
        })
    }

    /// Number of U-side CSE temporaries (certificate audit).
    pub(crate) fn u_temp_count(&self) -> usize {
        self.uplan.temps.len()
    }

    /// Number of V-side CSE temporaries (certificate audit).
    pub(crate) fn v_temp_count(&self) -> usize {
        self.vplan.temps.len()
    }

    /// Whether multiplication `r` reads its S/T operand directly from a
    /// source block (passthrough) instead of a workspace temporary.
    pub(crate) fn passthrough(&self, r: usize) -> (bool, bool) {
        (
            self.uplan.passthrough[r].is_some(),
            self.vplan.passthrough[r].is_some(),
        )
    }
}

/// Workspace layout of one recursion node, derived from the node's
/// problem dimensions. The same arithmetic drives both plan-time sizing
/// ([`required_workspace`]) and runtime carving, so the two can never
/// disagree.
struct NodeLayout {
    peel: PeelSplit,
    /// Elements of one S_r temporary (`(p1/m) · (q1/k)`).
    s_size: usize,
    /// Elements of one T_r temporary (`(q1/k) · (r1/n)`).
    t_size: usize,
    /// Elements of one M_r product (`(p1/m) · (r1/n)`).
    m_size: usize,
    /// U-side CSE temporary region.
    ut_len: usize,
    /// V-side CSE temporary region.
    vt_len: usize,
    /// All `rank` M_r products.
    ms_len: usize,
    /// All non-passthrough S_r/T_r operands.
    st_len: usize,
    /// Workspace of one recursive child.
    child_len: usize,
    /// Total child region: `rank · child_len` when children run as
    /// concurrent tasks (BFS/HYBRID), `child_len` when they run one at
    /// a time (Sequential/DFS).
    children_len: usize,
}

impl NodeLayout {
    /// Layout for a node at `depth` on a `p × q × r` problem, or `None`
    /// when the node degenerates to a single base-case gemm (recursion
    /// exhausted or core empty) and needs no workspace.
    fn at<T: Scalar>(
        levels: &[LevelPlan<T>],
        depth: usize,
        scheme: Scheme,
        p: usize,
        q: usize,
        r: usize,
    ) -> Option<Self> {
        let lp = levels.get(depth)?;
        let peel = PeelSplit::new(p, q, r, lp.m, lp.k, lp.n);
        if peel.core_is_empty() {
            return None;
        }
        let (cp, cq, cr) = (peel.p1 / lp.m, peel.q1 / lp.k, peel.r1 / lp.n);
        let s_size = cp * cq;
        let t_size = cq * cr;
        let m_size = cp * cr;
        let st_len = (0..lp.rank)
            .map(|i| {
                let s = if lp.uplan.passthrough[i].is_none() {
                    s_size
                } else {
                    0
                };
                let t = if lp.vplan.passthrough[i].is_none() {
                    t_size
                } else {
                    0
                };
                s + t
            })
            .sum();
        let child_len = node_workspace(levels, depth + 1, scheme, cp, cq, cr);
        let children_len = if scheme.concurrent_children() {
            lp.rank * child_len
        } else {
            child_len
        };
        Some(NodeLayout {
            peel,
            s_size,
            t_size,
            m_size,
            ut_len: lp.uplan.temps.len() * s_size,
            vt_len: lp.vplan.temps.len() * t_size,
            ms_len: lp.rank * m_size,
            st_len,
            child_len,
            children_len,
        })
    }

    fn total(&self) -> usize {
        self.ut_len + self.vt_len + self.ms_len + self.st_len + self.children_len
    }
}

/// Workspace elements needed by the subtree rooted at `depth`.
fn node_workspace<T: Scalar>(
    levels: &[LevelPlan<T>],
    depth: usize,
    scheme: Scheme,
    p: usize,
    q: usize,
    r: usize,
) -> usize {
    NodeLayout::at(levels, depth, scheme, p, q, r).map_or(0, |l| l.total())
}

/// Exact workspace size (in scalar elements) a `p × q × r` execution of
/// this schedule requires, including padding copies when
/// [`BorderHandling::Padding`] is selected. One walk of the recursion
/// tree; this is what [`crate::Plan::workspace_len`] precomputes.
pub(crate) fn required_workspace<T: Scalar>(
    levels: &[LevelPlan<T>],
    opts: &Options,
    p: usize,
    q: usize,
    r: usize,
) -> usize {
    if opts.border == BorderHandling::Padding && !levels.is_empty() {
        let (pp, qq, rr) = padded_dims(levels, p, q, r);
        if (pp, qq, rr) != (p, q, r) {
            return pp * qq
                + qq * rr
                + pp * rr
                + node_workspace(levels, 0, opts.scheme, pp, qq, rr);
        }
    }
    node_workspace(levels, 0, opts.scheme, p, q, r)
}

/// Dimensions after zero-padding each axis to the full per-level
/// product so no recursion level ever peels.
fn padded_dims<T>(levels: &[LevelPlan<T>], p: usize, q: usize, r: usize) -> (usize, usize, usize) {
    let mprod: usize = levels.iter().map(|l| l.m).product();
    let kprod: usize = levels.iter().map(|l| l.k).product();
    let nprod: usize = levels.iter().map(|l| l.n).product();
    (
        p.div_ceil(mprod) * mprod,
        q.div_ceil(kprod) * kprod,
        r.div_ceil(nprod) * nprod,
    )
}

/// A configured fast multiplication ready to run on any problem size.
///
/// This is the low-level, shape-agnostic path: each call sizes and
/// allocates one flat workspace buffer for the given operands, then
/// runs allocation-free inside it. When the problem shape is known up
/// front and the multiply repeats, prefer [`crate::Planner`] /
/// [`crate::Plan::execute`], which hoist both the sizing walk and the
/// allocation out of the hot path entirely.
///
/// Generic over the element type with the usual `f64` default;
/// `FastMul::<f32>::new(..)` runs the same schedule in single
/// precision.
pub struct FastMul<T = f64> {
    levels: Vec<LevelPlan<T>>,
    opts: Options,
}

impl<T: GemmScalar> FastMul<T> {
    /// Uniform algorithm: `opts.steps` recursive applications of `dec`.
    ///
    /// `opts.steps` is authoritative here (and only here); the
    /// schedule-based constructor derives the depth from the schedule.
    ///
    /// # Panics
    /// Panics when a decomposition coefficient is not representable in
    /// `T` ([`Scalar::from_coeff`]); use [`crate::Planner`] for the
    /// error-returning path.
    pub fn new(dec: &Decomposition, opts: Options) -> Self {
        let levels = (0..opts.steps)
            .map(|_| {
                LevelPlan::try_new(dec, opts.cse)
                    .unwrap_or_else(|c| panic!("coefficient {c} not representable in {}", T::NAME))
            })
            .collect();
        FastMul { levels, opts }
    }

    /// Composed algorithm: one decomposition per recursion level
    /// (e.g. ⟨3,3,6⟩ ∘ ⟨3,6,3⟩ ∘ ⟨6,3,3⟩ for the ⟨54,54,54⟩ algorithm
    /// of §5.2).
    ///
    /// The schedule length is the recursion depth. Pass `steps: 0` (or
    /// a value equal to `schedule.len()`): any other nonzero value is a
    /// configuration bug and trips a `debug_assert`. The stored options
    /// are normalized so `steps == schedule.len()` afterwards.
    ///
    /// # Panics
    /// As [`FastMul::new`], on unrepresentable coefficients.
    pub fn with_schedule(schedule: &[&Decomposition], mut opts: Options) -> Self {
        debug_assert!(
            opts.steps == 0 || opts.steps == schedule.len(),
            "Options::steps ({}) conflicts with schedule length ({}); \
             the schedule length is authoritative — pass steps: 0",
            opts.steps,
            schedule.len()
        );
        opts.steps = schedule.len();
        let levels = schedule
            .iter()
            .map(|d| {
                LevelPlan::try_new(d, opts.cse)
                    .unwrap_or_else(|c| panic!("coefficient {c} not representable in {}", T::NAME))
            })
            .collect();
        FastMul { levels, opts }
    }

    /// `C = A · B` into a fresh matrix.
    pub fn multiply(&self, a: &DenseMatrix<T>, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let mut c = DenseMatrix::zeros(a.rows(), b.cols());
        self.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        c
    }

    /// `C = A · B` into a caller-provided view (contents overwritten).
    pub fn multiply_into(&self, a: MatRef<'_, T>, b: MatRef<'_, T>, c: MatMut<'_, T>) {
        self.run(a, b, c, None);
    }

    /// As [`FastMul::multiply_into`], additionally returning execution
    /// statistics (leaf gemm count, peel fix-ups, temporary footprint).
    pub fn multiply_into_with_stats(
        &self,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        c: MatMut<'_, T>,
    ) -> ExecStatsSnapshot {
        let stats = ExecStats::default();
        let steals_before = fmm_runtime::steal_count();
        let ws_len = self.run(a, b, c, Some(&stats));
        let tasks_stolen = fmm_runtime::steal_count() - steals_before;
        stats.snapshot(
            (ws_len * std::mem::size_of::<T>()) as u64,
            false,
            tasks_stolen,
        )
    }

    fn run(
        &self,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        c: MatMut<'_, T>,
        stats: Option<&ExecStats>,
    ) -> usize {
        let len = required_workspace(&self.levels, &self.opts, a.rows(), a.cols(), b.cols());
        let mut buf = vec![T::ZERO; len];
        execute_on(&self.levels, &self.opts, a, b, c, stats, &mut buf);
        len
    }

    /// Recursion depth of this executor.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Run the schedule inside `ws`, which must hold at least
/// [`required_workspace`] elements. Shared by [`FastMul`] (fresh buffer
/// per call) and [`crate::Plan::execute`] (reused [`crate::Workspace`]).
pub(crate) fn execute_on<T: GemmScalar>(
    levels: &[LevelPlan<T>],
    opts: &Options,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    mut c: MatMut<'_, T>,
    stats: Option<&ExecStats>,
    ws: &mut [T],
) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "output cols mismatch");
    let total_leaves: u64 = levels.iter().map(|l| l.rank as u64).product();
    let threads = rayon::current_num_threads() as u64;
    let threshold = match opts.scheme {
        Scheme::Hybrid => total_leaves - (total_leaves % threads.max(1)),
        _ => u64::MAX,
    };
    let ctx = Ctx {
        levels,
        additions: opts.additions,
        scheme: opts.scheme,
        threshold,
        stats,
        // The tracing gate is read once per execute and carried as a
        // plain bool so recursion leaves never touch the atomic.
        trace: fmm_trace::enabled(),
    };
    if opts.border == BorderHandling::Padding && !levels.is_empty() {
        // Pad each dimension to the full per-level product so no
        // recursion level ever peels.
        let (p, q, r) = (a.rows(), a.cols(), b.cols());
        let (pp, qq, rr) = padded_dims(levels, p, q, r);
        if (pp, qq, rr) != (p, q, r) {
            ctx.count(|s| &s.temp_elements, (pp * qq + qq * rr + pp * rr) as u64);
            let (abuf, rest) = ws.split_at_mut(pp * qq);
            let (bbuf, rest) = rest.split_at_mut(qq * rr);
            let (cbuf, rest) = rest.split_at_mut(pp * rr);
            // The workspace may hold stale values from a previous
            // execute; the pad frame must be exact zeros.
            abuf.fill(T::ZERO);
            bbuf.fill(T::ZERO);
            kernels::copy(
                MatMut::from_slice(abuf, pp, qq, qq).into_block(0, 0, p, q),
                a,
            );
            kernels::copy(
                MatMut::from_slice(bbuf, qq, rr, rr).into_block(0, 0, q, r),
                b,
            );
            run_node(
                &ctx,
                0,
                0,
                MatRef::from_slice(abuf, pp, qq, qq),
                MatRef::from_slice(bbuf, qq, rr, rr),
                MatMut::from_slice(cbuf, pp, rr, rr),
                rest,
            );
            kernels::copy(
                c.reborrow(),
                MatRef::from_slice(cbuf, pp, rr, rr).block(0, 0, p, r),
            );
            return;
        }
    }
    run_node(&ctx, 0, 0, a, b, c, ws);
}

struct Ctx<'p, T> {
    levels: &'p [LevelPlan<T>],
    additions: AdditionMethod,
    scheme: Scheme,
    threshold: u64,
    stats: Option<&'p ExecStats>,
    trace: bool,
}

impl<T> Ctx<'_, T> {
    fn count(&self, field: impl Fn(&ExecStats) -> &std::sync::atomic::AtomicU64, amount: u64) {
        if let Some(stats) = self.stats {
            field(stats).fetch_add(amount, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Record which thread is doing compute: pool worker `i` sets bit
    /// `i` (mod 63), non-worker threads set bit 63.
    fn mark_thread(&self) {
        if let Some(stats) = self.stats {
            let bit = match fmm_runtime::worker_index() {
                Some(i) => i as u64 % 63,
                None => 63,
            };
            stats
                .thread_mask
                .fetch_or(1 << bit, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl<T: GemmScalar> Ctx<'_, T> {
    /// Leaves under one child of a node at `depth`.
    fn leaves_below(&self, depth: usize) -> u64 {
        self.levels[depth + 1..]
            .iter()
            .map(|l| l.rank as u64)
            .product()
    }

    /// Should additions at this depth use all threads?
    fn par_adds(&self, depth: usize) -> bool {
        match self.scheme {
            Scheme::Sequential => false,
            Scheme::Dfs => true,
            // BFS/HYBRID: only the top level runs outside tasks.
            Scheme::Bfs | Scheme::Hybrid => depth == 0,
        }
    }

    /// Base-case gemm for the leaf with global index `leaf`.
    fn leaf_gemm(
        &self,
        leaf: u64,
        alpha: T,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        beta: T,
        c: MatMut<'_, T>,
    ) {
        self.count(|s| &s.base_gemms, 1);
        self.mark_thread();
        let flops = (a.rows() * a.cols() * b.cols()) as u64;
        let t_span = fmm_trace::now_if(self.trace);
        match self.scheme {
            Scheme::Sequential | Scheme::Bfs => gemm(alpha, a, b, beta, c),
            Scheme::Dfs => par_gemm(alpha, a, b, beta, c),
            Scheme::Hybrid => {
                if leaf >= self.threshold {
                    par_gemm(alpha, a, b, beta, c)
                } else {
                    gemm(alpha, a, b, beta, c)
                }
            }
        }
        fmm_trace::span_end(fmm_trace::SpanKind::BaseGemm, t_span, flops);
    }

    /// Gemm used for peel strips at `depth`.
    fn strip_gemm(
        &self,
        depth: usize,
        alpha: T,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        beta: T,
        c: MatMut<'_, T>,
    ) {
        self.count(|s| &s.peel_gemms, 1);
        self.mark_thread();
        let flops = (a.rows() * a.cols() * b.cols()) as u64;
        let t_span = fmm_trace::now_if(self.trace);
        let par = match self.scheme {
            Scheme::Sequential => false,
            Scheme::Dfs => true,
            Scheme::Bfs | Scheme::Hybrid => depth == 0,
        };
        if par {
            par_gemm(alpha, a, b, beta, c)
        } else {
            gemm(alpha, a, b, beta, c)
        }
        fmm_trace::span_end(fmm_trace::SpanKind::PeelGemm, t_span, flops);
    }
}

/// Recursive driver: peel, then run the fast step on the divisible core.
fn run_node<T: GemmScalar>(
    ctx: &Ctx<'_, T>,
    depth: usize,
    leaf_lo: u64,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    mut c: MatMut<'_, T>,
    ws: &mut [T],
) {
    let (p, q, r) = (a.rows(), a.cols(), b.cols());
    let Some(layout) = NodeLayout::at(ctx.levels, depth, ctx.scheme, p, q, r) else {
        // Recursion exhausted, or the core is smaller than the base
        // case: one classical product.
        ctx.leaf_gemm(leaf_lo, T::ONE, a, b, T::ZERO, c);
        return;
    };
    let peel = layout.peel;
    let (p1, q1, r1) = (peel.p1, peel.q1, peel.r1);
    let (dp, dq, dr) = (peel.dp, peel.dq, peel.dr);

    let a11 = a.block(0, 0, p1, q1);
    let b11 = b.block(0, 0, q1, r1);

    // Fast multiplication on the divisible core, then the thin
    // dynamic-peeling fix-up products (§3.5). Sequential mutable
    // reborrows of C keep exclusive access sound.
    fast_step(
        ctx,
        depth,
        leaf_lo,
        a11,
        b11,
        c.reborrow().into_block(0, 0, p1, r1),
        &layout,
        ws,
    );

    if dq > 0 {
        // C11 += A12·B21
        let a12 = a.block(0, q1, p1, dq);
        let b21 = b.block(q1, 0, dq, r1);
        ctx.strip_gemm(
            depth,
            T::ONE,
            a12,
            b21,
            T::ONE,
            c.reborrow().into_block(0, 0, p1, r1),
        );
    }
    if dr > 0 {
        // C12 = A11·B12 + A12·B22
        let b12 = b.block(0, r1, q1, dr);
        ctx.strip_gemm(
            depth,
            T::ONE,
            a11,
            b12,
            T::ZERO,
            c.reborrow().into_block(0, r1, p1, dr),
        );
        if dq > 0 {
            let a12 = a.block(0, q1, p1, dq);
            let b22 = b.block(q1, r1, dq, dr);
            ctx.strip_gemm(
                depth,
                T::ONE,
                a12,
                b22,
                T::ONE,
                c.reborrow().into_block(0, r1, p1, dr),
            );
        }
    }
    if dp > 0 {
        // C21 = A21·B11 + A22·B21
        let a21 = a.block(p1, 0, dp, q1);
        ctx.strip_gemm(
            depth,
            T::ONE,
            a21,
            b11,
            T::ZERO,
            c.reborrow().into_block(p1, 0, dp, r1),
        );
        if dq > 0 {
            let a22 = a.block(p1, q1, dp, dq);
            let b21 = b.block(q1, 0, dq, r1);
            ctx.strip_gemm(
                depth,
                T::ONE,
                a22,
                b21,
                T::ONE,
                c.reborrow().into_block(p1, 0, dp, r1),
            );
        }
    }
    if dp > 0 && dr > 0 {
        // C22 = A21·B12 + A22·B22
        let a21 = a.block(p1, 0, dp, q1);
        let b12 = b.block(0, r1, q1, dr);
        ctx.strip_gemm(
            depth,
            T::ONE,
            a21,
            b12,
            T::ZERO,
            c.reborrow().into_block(p1, r1, dp, dr),
        );
        if dq > 0 {
            let a22 = a.block(p1, q1, dp, dq);
            let b22 = b.block(q1, r1, dq, dr);
            ctx.strip_gemm(
                depth,
                T::ONE,
                a22,
                b22,
                T::ONE,
                c.reborrow().into_block(p1, r1, dp, dr),
            );
        }
    }
}

/// Evaluate the CSE temporaries of one side into workspace slices
/// carved from `buf`, returning a read view of each in evaluation
/// order (a temp may reference earlier temps).
fn eval_temps<'w, T: Scalar>(
    temps: &[Vec<(Var, T)>],
    grid: &Grid,
    src: &MatRef<'w, T>,
    par: bool,
    buf: &'w mut [T],
) -> Vec<MatRef<'w, T>> {
    let size = grid.rs * grid.cs;
    let mut done: Vec<MatRef<'w, T>> = Vec::with_capacity(temps.len());
    let mut rest = buf;
    for def in temps {
        let (cur, tail) = rest.split_at_mut(size);
        rest = tail;
        {
            let terms: Vec<(T, MatRef<'_, T>)> = def
                .iter()
                .map(|&(v, coef)| match v {
                    Var::Block(bi) => (coef, grid.block(src, bi / grid.bc, bi % grid.bc)),
                    Var::Temp(t) => (coef, done[t]),
                })
                .collect();
            let out = MatMut::from_slice(&mut cur[..], grid.rs, grid.cs, grid.cs);
            if par {
                kernels::par_lincomb(out, T::ZERO, &terms);
            } else {
                kernels::lincomb(out, T::ZERO, &terms);
            }
        }
        done.push(MatRef::from_slice(cur, grid.rs, grid.cs, grid.cs));
    }
    done
}

/// Carve the per-multiplication S/T buffers out of the node's operand
/// region: one `s_size`/`t_size` slice per non-passthrough chain,
/// `None` where the singleton-column optimization (§3.1) borrows the
/// source block directly.
#[allow(clippy::type_complexity)]
fn carve_st<'w, T: Scalar>(
    lp: &LevelPlan<T>,
    layout: &NodeLayout,
    st: &'w mut [T],
) -> (Vec<Option<&'w mut [T]>>, Vec<Option<&'w mut [T]>>) {
    let mut s: Vec<Option<&'w mut [T]>> = Vec::with_capacity(lp.rank);
    let mut t: Vec<Option<&'w mut [T]>> = Vec::with_capacity(lp.rank);
    let mut rest = st;
    for i in 0..lp.rank {
        if lp.uplan.passthrough[i].is_none() {
            let (cur, tail) = rest.split_at_mut(layout.s_size);
            rest = tail;
            s.push(Some(cur));
        } else {
            s.push(None);
        }
        if lp.vplan.passthrough[i].is_none() {
            let (cur, tail) = rest.split_at_mut(layout.t_size);
            rest = tail;
            t.push(Some(cur));
        } else {
            t.push(None);
        }
    }
    (s, t)
}

/// Form one operand (`S_r` or `T_r`) with the write-once or pairwise
/// strategy, returning `(view, scale)` — a borrowed scaled source block
/// for singleton columns (§3.1) or a view of `buf` after evaluating the
/// chain into it.
#[allow(clippy::too_many_arguments)]
fn form_operand<'x, T: Scalar>(
    plan: &TypedSide<T>,
    r: usize,
    grid: &Grid,
    src: &MatRef<'x, T>,
    temps: &[MatRef<'x, T>],
    method: AdditionMethod,
    par: bool,
    buf: Option<&'x mut [T]>,
) -> (MatRef<'x, T>, T) {
    if let Some((bi, scale)) = plan.passthrough[r] {
        return (grid.block(src, bi / grid.bc, bi % grid.bc), scale);
    }
    let buf = buf.expect("non-passthrough operand requires a workspace buffer");
    let chain = &plan.chains[r];
    let terms: Vec<(T, MatRef<'_, T>)> = chain
        .iter()
        .map(|&(v, coef)| match v {
            Var::Block(bi) => (coef, grid.block(src, bi / grid.bc, bi % grid.bc)),
            Var::Temp(t) => (coef, temps[t]),
        })
        .collect();
    {
        let mut out = MatMut::from_slice(&mut buf[..], grid.rs, grid.cs, grid.cs);
        match method {
            AdditionMethod::Pairwise => {
                // daxpy-chain: initial scaled copy then one axpy per term.
                let (c0, s0) = terms[0];
                if par {
                    kernels::par_copy(out.reborrow(), s0);
                    if c0 != T::ONE {
                        kernels::scale(out.reborrow(), c0);
                    }
                    for &(cf, sv) in &terms[1..] {
                        kernels::par_axpy(out.reborrow(), cf, sv);
                    }
                } else {
                    kernels::copy_scaled(out.reborrow(), c0, s0);
                    for &(cf, sv) in &terms[1..] {
                        kernels::axpy(out.reborrow(), cf, sv);
                    }
                }
            }
            AdditionMethod::WriteOnce | AdditionMethod::Streaming => {
                if par {
                    kernels::par_lincomb(out, T::ZERO, &terms);
                } else {
                    kernels::lincomb(out, T::ZERO, &terms);
                }
            }
        }
    }
    (MatRef::from_slice(buf, grid.rs, grid.cs, grid.cs), T::ONE)
}

/// Form all operands of one side with the streaming strategy: zero all
/// workspace temporaries, then stream each source block once, updating
/// every chain that references it.
fn form_side_streaming<'x, T: Scalar>(
    plan: &TypedSide<T>,
    grid: &Grid,
    src: &MatRef<'x, T>,
    temps: &[MatRef<'x, T>],
    par: bool,
    bufs: Vec<Option<&'x mut [T]>>,
) -> Vec<(MatRef<'x, T>, T)> {
    // The workspace may hold stale values; streaming accumulates, so
    // every owned destination starts from exact zero.
    let mut owned: Vec<Option<&'x mut [T]>> = bufs;
    for buf in owned.iter_mut().flatten() {
        buf.fill(T::ZERO);
    }

    // Reverse index: variable → [(chain, coef)], chains ascending so
    // disjoint mutable access can be split off in order.
    let mut by_var: std::collections::HashMap<Var, Vec<(usize, T)>> =
        std::collections::HashMap::new();
    for (r, chain) in plan.chains.iter().enumerate() {
        if plan.passthrough[r].is_some() {
            continue;
        }
        for &(v, coef) in chain {
            by_var.entry(v).or_default().push((r, coef));
        }
    }

    for (&var, targets) in by_var.iter() {
        let srcview = match var {
            Var::Block(bi) => grid.block(src, bi / grid.bc, bi % grid.bc),
            Var::Temp(t) => temps[t],
        };
        let mut targets: Vec<(usize, T)> = targets.clone();
        targets.sort_unstable_by_key(|&(r, _)| r);
        // Split disjoint mutable views off `owned` in ascending chain
        // order (each chain references a variable at most once).
        let mut refs: Vec<(T, MatMut<'_, T>)> = Vec::with_capacity(targets.len());
        let mut rest: &mut [Option<&'x mut [T]>] = &mut owned;
        let mut base = 0;
        for &(r, coef) in &targets {
            let (_, tail) = rest.split_at_mut(r - base);
            let (item, tail) = tail.split_at_mut(1);
            let buf = item[0]
                .as_mut()
                .expect("streaming target must have a workspace buffer");
            refs.push((coef, MatMut::from_slice(buf, grid.rs, grid.cs, grid.cs)));
            rest = tail;
            base = r + 1;
        }
        if par {
            kernels::par_stream_update(&mut refs, srcview);
        } else {
            kernels::stream_update(&mut refs, srcview);
        }
    }

    owned
        .into_iter()
        .enumerate()
        .map(|(r, o)| match o {
            Some(buf) => (MatRef::from_slice(buf, grid.rs, grid.cs, grid.cs), T::ONE),
            None => {
                let (bi, scale) = plan.passthrough[r].unwrap();
                (grid.block(src, bi / grid.bc, bi % grid.bc), scale)
            }
        })
        .collect()
}

/// One fast recursive step on a divisible core problem, entirely inside
/// the `ws` region described by `layout`.
#[allow(clippy::too_many_arguments)]
fn fast_step<T: GemmScalar>(
    ctx: &Ctx<'_, T>,
    depth: usize,
    leaf_lo: u64,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    layout: &NodeLayout,
    ws: &mut [T],
) {
    let lp = &ctx.levels[depth];
    let ga = Grid::new(a.rows(), a.cols(), lp.m, lp.k);
    let gb = Grid::new(b.rows(), b.cols(), lp.k, lp.n);
    let rank = lp.rank;
    let par = ctx.par_adds(depth);
    let leaves_per_child = ctx.leaves_below(depth);

    let (ut_buf, rest) = ws.split_at_mut(layout.ut_len);
    let (vt_buf, rest) = rest.split_at_mut(layout.vt_len);
    let (ms_buf, rest) = rest.split_at_mut(layout.ms_len);
    let (st_buf, child_buf) = rest.split_at_mut(layout.st_len);

    // CSE temporaries are shared across all chains of a side.
    let t_span =
        fmm_trace::now_if(ctx.trace && !(lp.uplan.temps.is_empty() && lp.vplan.temps.is_empty()));
    let utemps = eval_temps(&lp.uplan.temps, &ga, &a, par, ut_buf);
    let vtemps = eval_temps(&lp.vplan.temps, &gb, &b, par, vt_buf);
    fmm_trace::span_end(fmm_trace::SpanKind::Additions, t_span, depth as u64);

    // Per-multiplication S/T buffers.
    let (mut sbufs, mut tbufs) = carve_st(lp, layout, st_buf);

    // M_r storage.
    let (sub_rows, sub_cols) = (ga.rs, gb.cs);
    ctx.count(|s| &s.temp_elements, layout.ms_len as u64);
    // Scales piped from singleton S/T columns into the W combination.
    let mut scales = vec![T::ONE; rank];

    let sequentialish = !ctx.scheme.concurrent_children();

    match ctx.additions {
        AdditionMethod::Streaming => {
            let t_span = fmm_trace::now_if(ctx.trace);
            let ss =
                form_side_streaming(&lp.uplan, &ga, &a, &utemps, par, std::mem::take(&mut sbufs));
            let ts =
                form_side_streaming(&lp.vplan, &gb, &b, &vtemps, par, std::mem::take(&mut tbufs));
            fmm_trace::span_end(fmm_trace::SpanKind::Additions, t_span, depth as u64);
            for r in 0..rank {
                scales[r] = ss[r].1 * ts[r].1;
            }
            if sequentialish {
                for (r, m_chunk) in ms_buf.chunks_mut(layout.m_size).enumerate() {
                    let m = MatMut::from_slice(m_chunk, sub_rows, sub_cols, sub_cols);
                    run_node(
                        ctx,
                        depth + 1,
                        leaf_lo + r as u64 * leaves_per_child,
                        ss[r].0,
                        ts[r].0,
                        m,
                        &mut child_buf[..layout.child_len],
                    );
                }
            } else {
                rayon::scope(|scope| {
                    let kids = child_chunks(child_buf, layout.child_len, rank);
                    for ((r, m_chunk), kid) in
                        ms_buf.chunks_mut(layout.m_size).enumerate().zip(kids)
                    {
                        let (sv, tv) = (ss[r].0, ts[r].0);
                        scope.spawn(move |_| {
                            let m = MatMut::from_slice(m_chunk, sub_rows, sub_cols, sub_cols);
                            run_node(
                                ctx,
                                depth + 1,
                                leaf_lo + r as u64 * leaves_per_child,
                                sv,
                                tv,
                                m,
                                kid,
                            );
                        });
                    }
                });
            }
        }
        AdditionMethod::WriteOnce | AdditionMethod::Pairwise => {
            if sequentialish {
                for (r, m_chunk) in ms_buf.chunks_mut(layout.m_size).enumerate() {
                    let t_span = fmm_trace::now_if(ctx.trace);
                    let (sv, su) = form_operand(
                        &lp.uplan,
                        r,
                        &ga,
                        &a,
                        &utemps,
                        ctx.additions,
                        par,
                        sbufs[r].take(),
                    );
                    let (tv, tu) = form_operand(
                        &lp.vplan,
                        r,
                        &gb,
                        &b,
                        &vtemps,
                        ctx.additions,
                        par,
                        tbufs[r].take(),
                    );
                    fmm_trace::span_end(fmm_trace::SpanKind::Additions, t_span, r as u64);
                    scales[r] = su * tu;
                    let m = MatMut::from_slice(m_chunk, sub_rows, sub_cols, sub_cols);
                    run_node(
                        ctx,
                        depth + 1,
                        leaf_lo + r as u64 * leaves_per_child,
                        sv,
                        tv,
                        m,
                        &mut child_buf[..layout.child_len],
                    );
                }
            } else {
                // Each task writes its singleton-scale product into a
                // disjoint one-element chunk of `scales` — same
                // disjointness argument as the M_r chunks.
                rayon::scope(|scope| {
                    let kids = child_chunks(child_buf, layout.child_len, rank);
                    for ((((r, m_chunk), kid), sbuf), (tbuf, slot)) in ms_buf
                        .chunks_mut(layout.m_size)
                        .enumerate()
                        .zip(kids)
                        .zip(sbufs)
                        .zip(tbufs.into_iter().zip(scales.chunks_mut(1)))
                    {
                        let utemps = &utemps;
                        let vtemps = &vtemps;
                        scope.spawn(move |_| {
                            // S/T formation is part of the task (§4.2),
                            // hence sequential additions here.
                            let t_span = fmm_trace::now_if(ctx.trace);
                            let (sv, su) = form_operand(
                                &lp.uplan,
                                r,
                                &ga,
                                &a,
                                utemps,
                                ctx.additions,
                                false,
                                sbuf,
                            );
                            let (tv, tu) = form_operand(
                                &lp.vplan,
                                r,
                                &gb,
                                &b,
                                vtemps,
                                ctx.additions,
                                false,
                                tbuf,
                            );
                            fmm_trace::span_end(fmm_trace::SpanKind::Additions, t_span, r as u64);
                            slot[0] = su * tu;
                            let m = MatMut::from_slice(m_chunk, sub_rows, sub_cols, sub_cols);
                            run_node(
                                ctx,
                                depth + 1,
                                leaf_lo + r as u64 * leaves_per_child,
                                sv,
                                tv,
                                m,
                                kid,
                            );
                        });
                    }
                });
            }
        }
    }

    // Combine: C_ij = Σ_r w_ijr · scale_r · M_r.
    let ms: Vec<MatRef<'_, T>> = ms_buf
        .chunks(layout.m_size)
        .map(|chunk| MatRef::from_slice(chunk, sub_rows, sub_cols, sub_cols))
        .collect();
    let t_span = fmm_trace::now_if(ctx.trace);
    combine_outputs(ctx, lp, &ms, &scales, c, par);
    fmm_trace::span_end(fmm_trace::SpanKind::Combine, t_span, depth as u64);
}

/// Disjoint per-child workspace regions for concurrent (BFS/HYBRID)
/// tasks; empty slices when the children are leaves.
fn child_chunks<T>(child_buf: &mut [T], child_len: usize, rank: usize) -> Vec<&mut [T]> {
    if child_len == 0 {
        (0..rank).map(|_| Default::default()).collect()
    } else {
        child_buf.chunks_mut(child_len).take(rank).collect()
    }
}

/// Evaluate the W-side plan into the output blocks.
fn combine_outputs<T: Scalar>(
    ctx: &Ctx<'_, T>,
    lp: &LevelPlan<T>,
    ms: &[MatRef<'_, T>],
    scales: &[T],
    c: MatMut<'_, T>,
    par: bool,
) {
    let gc = Grid::new(c.rows(), c.cols(), lp.m, lp.n);
    let mut cblocks = gc.blocks_mut(c);
    match ctx.additions {
        AdditionMethod::WriteOnce => {
            for (ij, cb) in cblocks.iter_mut().enumerate() {
                let terms: Vec<(T, MatRef<'_, T>)> = lp.wplan[ij]
                    .iter()
                    .map(|&(r, coef)| (coef * scales[r], ms[r]))
                    .collect();
                if par {
                    kernels::par_lincomb(cb.reborrow(), T::ZERO, &terms);
                } else {
                    kernels::lincomb(cb.reborrow(), T::ZERO, &terms);
                }
            }
        }
        AdditionMethod::Pairwise => {
            for (ij, cb) in cblocks.iter_mut().enumerate() {
                let chain = &lp.wplan[ij];
                if chain.is_empty() {
                    cb.fill(T::ZERO);
                    continue;
                }
                let (r0, c0) = chain[0];
                if par {
                    kernels::par_copy(cb.reborrow(), ms[r0]);
                    if c0 * scales[r0] != T::ONE {
                        kernels::scale(cb.reborrow(), c0 * scales[r0]);
                    }
                    for &(r, coef) in &chain[1..] {
                        kernels::par_axpy(cb.reborrow(), coef * scales[r], ms[r]);
                    }
                } else {
                    kernels::copy_scaled(cb.reborrow(), c0 * scales[r0], ms[r0]);
                    for &(r, coef) in &chain[1..] {
                        kernels::axpy(cb.reborrow(), coef * scales[r], ms[r]);
                    }
                }
            }
        }
        AdditionMethod::Streaming => {
            for cb in cblocks.iter_mut() {
                cb.fill(T::ZERO);
            }
            // Read each M_r once, updating every output block that uses it.
            for (r, m) in ms.iter().enumerate() {
                let mut refs: Vec<(T, MatMut<'_, T>)> = Vec::new();
                for (ij, cb) in cblocks.iter_mut().enumerate() {
                    if let Some(&(_, coef)) = lp.wplan[ij].iter().find(|&&(rr, _)| rr == r) {
                        refs.push((coef * scales[r], cb.reborrow()));
                    }
                }
                if par {
                    kernels::par_stream_update(&mut refs, *m);
                } else {
                    kernels::stream_update(&mut refs, *m);
                }
            }
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::ExecStatsSnapshot;

    #[test]
    fn exec_stats_snapshot_json_roundtrip() {
        let snap = ExecStatsSnapshot {
            base_gemms: 49,
            peel_gemms: 3,
            temp_elements: 12_345,
            workspace_bytes: 8 * 12_345,
            workspace_reused: true,
            threads_used: 4,
            tasks_stolen: 17,
        };
        let back = ExecStatsSnapshot::from_json(&snap.to_json()).expect("round-trip");
        assert_eq!(snap, back);
        assert!(ExecStatsSnapshot::from_json("[]").is_err());
        assert!(ExecStatsSnapshot::from_json("{\"base_gemms\": 1}").is_err());
    }
}
