//! The recursive fast-matrix-multiplication executor.
//!
//! Given a schedule of verified decompositions (one per recursion
//! level — a uniform algorithm is a schedule of `L` copies; the
//! composed ⟨54,54,54⟩ algorithm of §5.2 is a schedule of three
//! different ones), the executor:
//!
//! 1. splits off dynamic-peeling strips so arbitrary dimensions work
//!    (§3.5),
//! 2. forms the `S_r`/`T_r` linear combinations with the configured
//!    addition strategy (§3.2) and optional CSE temporaries (§3.3),
//!    piping singleton-column scales through to the output combination
//!    instead of materializing a temporary (§3.1),
//! 3. recursively multiplies `M_r = S_r · T_r`, switching among
//!    sequential, DFS, BFS and HYBRID parallel schemes (§4), and
//! 4. combines the `M_r` into `C` with the rows of `W`.

use crate::plan::{output_plan, side_plan, SidePlan, Var};
use fmm_gemm::{gemm, par_gemm};
use fmm_matrix::kernels;
use fmm_matrix::partition::{Grid, PeelSplit};
use fmm_matrix::{MatMut, MatRef, Matrix};
use fmm_tensor::Decomposition;

/// How the bandwidth-bound addition chains are evaluated (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdditionMethod {
    /// One `daxpy`-style pass per chain term.
    Pairwise,
    /// Each destination entry written exactly once (the paper's
    /// best-performing variant).
    #[default]
    WriteOnce,
    /// Each source block read once; all dependent temporaries updated
    /// while it streams through cache.
    Streaming,
}

/// How non-divisible dimensions are handled (§3.5).
///
/// The paper chooses dynamic peeling to limit memory and keep code
/// generation simple; padding is the classical alternative it compares
/// against in the discussion, implemented here for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BorderHandling {
    /// Fix up remainder strips with thin classical products at every
    /// recursion level (the paper's choice).
    #[default]
    DynamicPeeling,
    /// Zero-pad the operands up front so every level divides exactly,
    /// then copy the result back. Simpler, but costs extra memory and
    /// bandwidth proportional to the padding.
    Padding,
}

/// Shared-memory parallelization scheme (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Single-threaded recursion, sequential base-case gemm.
    #[default]
    Sequential,
    /// Depth-first: recursion is sequential, every base-case gemm and
    /// every addition uses all threads (§4.1).
    Dfs,
    /// Breadth-first: each recursive multiply is an independent task
    /// with sequential leaf gemms; per-level joins are the taskwait
    /// barriers (§4.2).
    Bfs,
    /// BFS for the first `R^L − (R^L mod P)` leaves, all-threads DFS
    /// for the remainder (§4.3). Rayon's work stealing supplies the
    /// "no oversubscription" guarantee the paper builds with OpenMP
    /// locks.
    Hybrid,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Recursion depth (`steps` in the paper). Ignored for schedules —
    /// the schedule length is the depth.
    pub steps: usize,
    /// Addition-chain evaluation strategy.
    pub additions: AdditionMethod,
    /// Apply greedy length-2 common subexpression elimination.
    pub cse: bool,
    /// Parallel scheme.
    pub scheme: Scheme,
    /// Remainder handling for non-divisible dimensions.
    pub border: BorderHandling,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            steps: 1,
            additions: AdditionMethod::WriteOnce,
            cse: false,
            scheme: Scheme::Sequential,
            border: BorderHandling::DynamicPeeling,
        }
    }
}

/// Execution statistics collected by
/// [`FastMul::multiply_into_with_stats`]: used by the tests to verify
/// the `R^L` leaf count and by the memory discussion of §4.2.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Base-case gemm calls (the "active multiplications").
    pub base_gemms: std::sync::atomic::AtomicU64,
    /// Classical fix-up products issued by dynamic peeling.
    pub peel_gemms: std::sync::atomic::AtomicU64,
    /// Total f64 elements allocated for S/T/M temporaries.
    pub temp_elements: std::sync::atomic::AtomicU64,
}

/// Plain snapshot of [`ExecStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStatsSnapshot {
    /// Base-case gemm calls.
    pub base_gemms: u64,
    /// Peel fix-up gemm calls.
    pub peel_gemms: u64,
    /// Total temporary f64 elements allocated.
    pub temp_elements: u64,
}

impl ExecStats {
    fn snapshot(&self) -> ExecStatsSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        ExecStatsSnapshot {
            base_gemms: self.base_gemms.load(Relaxed),
            peel_gemms: self.peel_gemms.load(Relaxed),
            temp_elements: self.temp_elements.load(Relaxed),
        }
    }
}

/// Pre-computed per-level plan.
struct LevelPlan {
    m: usize,
    k: usize,
    n: usize,
    uplan: SidePlan,
    vplan: SidePlan,
    wplan: Vec<Vec<(usize, f64)>>,
    rank: usize,
}

impl LevelPlan {
    fn new(dec: &Decomposition, cse: bool) -> Self {
        const TOL: f64 = 1e-14;
        LevelPlan {
            m: dec.m,
            k: dec.k,
            n: dec.n,
            uplan: side_plan(&dec.u, cse, TOL),
            vplan: side_plan(&dec.v, cse, TOL),
            wplan: output_plan(&dec.w, TOL),
            rank: dec.rank(),
        }
    }
}

/// A configured fast multiplication ready to run on any problem size.
pub struct FastMul {
    levels: Vec<LevelPlan>,
    opts: Options,
}

impl FastMul {
    /// Uniform algorithm: `opts.steps` recursive applications of `dec`.
    pub fn new(dec: &Decomposition, opts: Options) -> Self {
        let levels = (0..opts.steps)
            .map(|_| LevelPlan::new(dec, opts.cse))
            .collect();
        FastMul { levels, opts }
    }

    /// Composed algorithm: one decomposition per recursion level
    /// (e.g. ⟨3,3,6⟩ ∘ ⟨3,6,3⟩ ∘ ⟨6,3,3⟩ for the ⟨54,54,54⟩ algorithm
    /// of §5.2). `opts.steps` is ignored.
    pub fn with_schedule(schedule: &[&Decomposition], opts: Options) -> Self {
        let levels = schedule
            .iter()
            .map(|d| LevelPlan::new(d, opts.cse))
            .collect();
        FastMul { levels, opts }
    }

    /// `C = A · B` into a fresh matrix.
    pub fn multiply(&self, a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let mut c = Matrix::zeros(a.rows(), b.cols());
        self.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        c
    }

    /// `C = A · B` into a caller-provided view (contents overwritten).
    pub fn multiply_into(&self, a: MatRef<'_>, b: MatRef<'_>, c: MatMut<'_>) {
        self.run(a, b, c, None);
    }

    /// As [`FastMul::multiply_into`], additionally returning execution
    /// statistics (leaf gemm count, peel fix-ups, temporary footprint).
    pub fn multiply_into_with_stats(
        &self,
        a: MatRef<'_>,
        b: MatRef<'_>,
        c: MatMut<'_>,
    ) -> ExecStatsSnapshot {
        let stats = ExecStats::default();
        self.run(a, b, c, Some(&stats));
        stats.snapshot()
    }

    fn run(&self, a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>, stats: Option<&ExecStats>) {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        assert_eq!(c.rows(), a.rows(), "output rows mismatch");
        assert_eq!(c.cols(), b.cols(), "output cols mismatch");
        let total_leaves: u64 = self.levels.iter().map(|l| l.rank as u64).product();
        let threads = rayon::current_num_threads() as u64;
        let threshold = match self.opts.scheme {
            Scheme::Hybrid => total_leaves - (total_leaves % threads.max(1)),
            _ => u64::MAX,
        };
        let ctx = Ctx {
            levels: &self.levels,
            additions: self.opts.additions,
            scheme: self.opts.scheme,
            threshold,
            stats,
        };
        if self.opts.border == BorderHandling::Padding && !self.levels.is_empty() {
            // Pad each dimension to the full per-level product so no
            // recursion level ever peels.
            let mprod: usize = self.levels.iter().map(|l| l.m).product();
            let kprod: usize = self.levels.iter().map(|l| l.k).product();
            let nprod: usize = self.levels.iter().map(|l| l.n).product();
            let (p, q, r) = (a.rows(), a.cols(), b.cols());
            let pp = p.div_ceil(mprod) * mprod;
            let qq = q.div_ceil(kprod) * kprod;
            let rr = r.div_ceil(nprod) * nprod;
            if (pp, qq, rr) != (p, q, r) {
                let mut ap = Matrix::zeros(pp, qq);
                let mut bp = Matrix::zeros(qq, rr);
                kernels::copy(ap.block_mut(0, 0, p, q), a);
                kernels::copy(bp.block_mut(0, 0, q, r), b);
                let mut cp = Matrix::zeros(pp, rr);
                ctx.count(|s| &s.temp_elements, (pp * qq + qq * rr + pp * rr) as u64);
                run_node(&ctx, 0, 0, ap.as_ref(), bp.as_ref(), cp.as_mut());
                kernels::copy(c.reborrow(), cp.block(0, 0, p, r));
                return;
            }
        }
        run_node(&ctx, 0, 0, a, b, c);
    }

    /// Recursion depth of this executor.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

struct Ctx<'p> {
    levels: &'p [LevelPlan],
    additions: AdditionMethod,
    scheme: Scheme,
    threshold: u64,
    stats: Option<&'p ExecStats>,
}

impl Ctx<'_> {
    fn count(&self, field: impl Fn(&ExecStats) -> &std::sync::atomic::AtomicU64, amount: u64) {
        if let Some(stats) = self.stats {
            field(stats).fetch_add(amount, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl Ctx<'_> {
    /// Leaves under one child of a node at `depth`.
    fn leaves_below(&self, depth: usize) -> u64 {
        self.levels[depth + 1..]
            .iter()
            .map(|l| l.rank as u64)
            .product()
    }

    /// Should additions at this depth use all threads?
    fn par_adds(&self, depth: usize) -> bool {
        match self.scheme {
            Scheme::Sequential => false,
            Scheme::Dfs => true,
            // BFS/HYBRID: only the top level runs outside tasks.
            Scheme::Bfs | Scheme::Hybrid => depth == 0,
        }
    }

    /// Base-case gemm for the leaf with global index `leaf`.
    fn leaf_gemm(
        &self,
        leaf: u64,
        alpha: f64,
        a: MatRef<'_>,
        b: MatRef<'_>,
        beta: f64,
        c: MatMut<'_>,
    ) {
        self.count(|s| &s.base_gemms, 1);
        match self.scheme {
            Scheme::Sequential | Scheme::Bfs => gemm(alpha, a, b, beta, c),
            Scheme::Dfs => par_gemm(alpha, a, b, beta, c),
            Scheme::Hybrid => {
                if leaf >= self.threshold {
                    par_gemm(alpha, a, b, beta, c)
                } else {
                    gemm(alpha, a, b, beta, c)
                }
            }
        }
    }

    /// Gemm used for peel strips at `depth`.
    fn strip_gemm(
        &self,
        depth: usize,
        alpha: f64,
        a: MatRef<'_>,
        b: MatRef<'_>,
        beta: f64,
        c: MatMut<'_>,
    ) {
        self.count(|s| &s.peel_gemms, 1);
        let par = match self.scheme {
            Scheme::Sequential => false,
            Scheme::Dfs => true,
            Scheme::Bfs | Scheme::Hybrid => depth == 0,
        };
        if par {
            par_gemm(alpha, a, b, beta, c)
        } else {
            gemm(alpha, a, b, beta, c)
        }
    }
}

/// An `S_r`/`T_r` operand: a borrowed scaled block (singleton columns,
/// §3.1) or an owned temporary.
enum Operand<'a> {
    View(MatRef<'a>, f64),
    Owned(Matrix, f64),
}

impl Operand<'_> {
    fn as_view(&self) -> (MatRef<'_>, f64) {
        match self {
            Operand::View(v, s) => (*v, *s),
            Operand::Owned(m, s) => (m.as_ref(), *s),
        }
    }
}

/// Recursive driver: peel, then run the fast step on the divisible core.
fn run_node(
    ctx: &Ctx<'_>,
    depth: usize,
    leaf_lo: u64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    mut c: MatMut<'_>,
) {
    if depth == ctx.levels.len() {
        ctx.leaf_gemm(leaf_lo, 1.0, a, b, 0.0, c);
        return;
    }
    let lp = &ctx.levels[depth];
    let (p, q, r) = (a.rows(), a.cols(), b.cols());
    let peel = PeelSplit::new(p, q, r, lp.m, lp.k, lp.n);
    if peel.core_is_empty() {
        ctx.leaf_gemm(leaf_lo, 1.0, a, b, 0.0, c);
        return;
    }
    let (p1, q1, r1) = (peel.p1, peel.q1, peel.r1);
    let (dp, dq, dr) = (peel.dp, peel.dq, peel.dr);

    let a11 = a.block(0, 0, p1, q1);
    let b11 = b.block(0, 0, q1, r1);

    // Fast multiplication on the divisible core, then the thin
    // dynamic-peeling fix-up products (§3.5). Sequential mutable
    // reborrows of C keep exclusive access sound.
    fast_step(
        ctx,
        depth,
        leaf_lo,
        a11,
        b11,
        c.reborrow().into_block(0, 0, p1, r1),
    );

    if dq > 0 {
        // C11 += A12·B21
        let a12 = a.block(0, q1, p1, dq);
        let b21 = b.block(q1, 0, dq, r1);
        ctx.strip_gemm(
            depth,
            1.0,
            a12,
            b21,
            1.0,
            c.reborrow().into_block(0, 0, p1, r1),
        );
    }
    if dr > 0 {
        // C12 = A11·B12 + A12·B22
        let b12 = b.block(0, r1, q1, dr);
        ctx.strip_gemm(
            depth,
            1.0,
            a11,
            b12,
            0.0,
            c.reborrow().into_block(0, r1, p1, dr),
        );
        if dq > 0 {
            let a12 = a.block(0, q1, p1, dq);
            let b22 = b.block(q1, r1, dq, dr);
            ctx.strip_gemm(
                depth,
                1.0,
                a12,
                b22,
                1.0,
                c.reborrow().into_block(0, r1, p1, dr),
            );
        }
    }
    if dp > 0 {
        // C21 = A21·B11 + A22·B21
        let a21 = a.block(p1, 0, dp, q1);
        ctx.strip_gemm(
            depth,
            1.0,
            a21,
            b11,
            0.0,
            c.reborrow().into_block(p1, 0, dp, r1),
        );
        if dq > 0 {
            let a22 = a.block(p1, q1, dp, dq);
            let b21 = b.block(q1, 0, dq, r1);
            ctx.strip_gemm(
                depth,
                1.0,
                a22,
                b21,
                1.0,
                c.reborrow().into_block(p1, 0, dp, r1),
            );
        }
    }
    if dp > 0 && dr > 0 {
        // C22 = A21·B12 + A22·B22
        let a21 = a.block(p1, 0, dp, q1);
        let b12 = b.block(0, r1, q1, dr);
        ctx.strip_gemm(
            depth,
            1.0,
            a21,
            b12,
            0.0,
            c.reborrow().into_block(p1, r1, dp, dr),
        );
        if dq > 0 {
            let a22 = a.block(p1, q1, dp, dq);
            let b22 = b.block(q1, r1, dq, dr);
            ctx.strip_gemm(
                depth,
                1.0,
                a22,
                b22,
                1.0,
                c.reborrow().into_block(p1, r1, dp, dr),
            );
        }
    }
}

/// Evaluate the CSE temporaries of one side.
fn eval_temps(plan: &SidePlan, grid: &Grid, src: &MatRef<'_>, par: bool) -> Vec<Matrix> {
    let mut temps: Vec<Matrix> = Vec::with_capacity(plan.temps.len());
    for def in &plan.temps {
        let mut out = Matrix::zeros(grid.rs, grid.cs);
        {
            let terms: Vec<(f64, MatRef<'_>)> = def
                .iter()
                .map(|&(v, coef)| match v {
                    Var::Block(bi) => (coef, grid.block(src, bi / grid.bc, bi % grid.bc)),
                    Var::Temp(t) => (coef, temps[t].as_ref()),
                })
                .collect();
            if par {
                kernels::par_lincomb(out.as_mut(), 0.0, &terms);
            } else {
                kernels::lincomb(out.as_mut(), 0.0, &terms);
            }
        }
        temps.push(out);
    }
    temps
}

/// Form one operand (`S_r` or `T_r`) with the write-once or pairwise
/// strategy.
fn form_operand<'a>(
    plan: &SidePlan,
    r: usize,
    grid: &Grid,
    src: &MatRef<'a>,
    temps: &[Matrix],
    method: AdditionMethod,
    par: bool,
) -> Operand<'a> {
    if let Some((bi, scale)) = plan.passthrough[r] {
        return Operand::View(grid.block(src, bi / grid.bc, bi % grid.bc), scale);
    }
    let chain = &plan.chains[r];
    let mut out = Matrix::zeros(grid.rs, grid.cs);
    let terms: Vec<(f64, MatRef<'_>)> = chain
        .iter()
        .map(|&(v, coef)| match v {
            Var::Block(bi) => (coef, grid.block(src, bi / grid.bc, bi % grid.bc)),
            Var::Temp(t) => (coef, temps[t].as_ref()),
        })
        .collect();
    match method {
        AdditionMethod::Pairwise => {
            // daxpy-chain: initial scaled copy then one axpy per term.
            let (c0, s0) = terms[0];
            if par {
                kernels::par_copy(out.as_mut(), s0);
                if c0 != 1.0 {
                    kernels::scale(out.as_mut(), c0);
                }
                for &(cf, sv) in &terms[1..] {
                    kernels::par_axpy(out.as_mut(), cf, sv);
                }
            } else {
                kernels::copy_scaled(out.as_mut(), c0, s0);
                for &(cf, sv) in &terms[1..] {
                    kernels::axpy(out.as_mut(), cf, sv);
                }
            }
        }
        AdditionMethod::WriteOnce | AdditionMethod::Streaming => {
            if par {
                kernels::par_lincomb(out.as_mut(), 0.0, &terms);
            } else {
                kernels::lincomb(out.as_mut(), 0.0, &terms);
            }
        }
    }
    Operand::Owned(out, 1.0)
}

/// Form all operands of one side with the streaming strategy: zero all
/// owned temporaries, then stream each source block once, updating
/// every chain that references it.
fn form_side_streaming<'a>(
    plan: &SidePlan,
    grid: &Grid,
    src: &MatRef<'a>,
    temps: &[Matrix],
    par: bool,
) -> Vec<Operand<'a>> {
    let rank = plan.chains.len();
    let mut owned: Vec<Option<Matrix>> = (0..rank)
        .map(|r| {
            if plan.passthrough[r].is_some() {
                None
            } else {
                Some(Matrix::zeros(grid.rs, grid.cs))
            }
        })
        .collect();

    // Reverse index: variable → [(chain, coef)].
    let mut by_var: std::collections::HashMap<Var, Vec<(usize, f64)>> =
        std::collections::HashMap::new();
    for (r, chain) in plan.chains.iter().enumerate() {
        if plan.passthrough[r].is_some() {
            continue;
        }
        for &(v, coef) in chain {
            by_var.entry(v).or_default().push((r, coef));
        }
    }

    for (&var, targets) in by_var.iter() {
        let srcview = match var {
            Var::Block(bi) => grid.block(src, bi / grid.bc, bi % grid.bc),
            Var::Temp(t) => temps[t].as_ref(),
        };
        // Split mutable access to the distinct destination matrices.
        let mut refs: Vec<(f64, MatMut<'_>)> = Vec::with_capacity(targets.len());
        {
            // Collect raw &mut to each target exactly once (targets are
            // distinct chain indices).
            let mut taken: Vec<usize> = Vec::new();
            for &(r, coef) in targets {
                debug_assert!(!taken.contains(&r));
                taken.push(r);
                let m = owned[r].as_mut().expect("streaming target must be owned") as *mut Matrix;
                // SAFETY: each chain index appears once in `targets`,
                // so the &mut references are disjoint.
                let m = unsafe { &mut *m };
                refs.push((coef, m.as_mut()));
            }
            if par {
                kernels::par_stream_update(&mut refs, srcview);
            } else {
                kernels::stream_update(&mut refs, srcview);
            }
        }
    }

    owned
        .into_iter()
        .enumerate()
        .map(|(r, o)| match o {
            Some(mat) => Operand::Owned(mat, 1.0),
            None => {
                let (bi, scale) = plan.passthrough[r].unwrap();
                Operand::View(grid.block(src, bi / grid.bc, bi % grid.bc), scale)
            }
        })
        .collect()
}

/// One fast recursive step on a divisible core problem.
fn fast_step(
    ctx: &Ctx<'_>,
    depth: usize,
    leaf_lo: u64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: MatMut<'_>,
) {
    let lp = &ctx.levels[depth];
    let ga = Grid::new(a.rows(), a.cols(), lp.m, lp.k);
    let gb = Grid::new(b.rows(), b.cols(), lp.k, lp.n);
    let rank = lp.rank;
    let par = ctx.par_adds(depth);
    let leaves_per_child = ctx.leaves_below(depth);

    // CSE temporaries are shared across all chains of a side.
    let utemps = eval_temps(&lp.uplan, &ga, &a, par);
    let vtemps = eval_temps(&lp.vplan, &gb, &b, par);

    // M_r storage.
    let sub_rows = a.rows() / lp.m;
    let sub_cols = b.cols() / lp.n;
    let mut ms: Vec<Matrix> = (0..rank)
        .map(|_| Matrix::zeros(sub_rows, sub_cols))
        .collect();
    ctx.count(|s| &s.temp_elements, (rank * sub_rows * sub_cols) as u64);
    // Scales piped from singleton S/T columns into the W combination.
    let mut scales = vec![1.0f64; rank];

    let sequentialish = matches!(ctx.scheme, Scheme::Sequential | Scheme::Dfs);

    match ctx.additions {
        AdditionMethod::Streaming => {
            let ss = form_side_streaming(&lp.uplan, &ga, &a, &utemps, par);
            let ts = form_side_streaming(&lp.vplan, &gb, &b, &vtemps, par);
            for r in 0..rank {
                let (_, su) = ss[r].as_view();
                let (_, tv) = ts[r].as_view();
                scales[r] = su * tv;
            }
            if sequentialish {
                for (r, m) in ms.iter_mut().enumerate() {
                    let (sv, _) = ss[r].as_view();
                    let (tv, _) = ts[r].as_view();
                    run_node(
                        ctx,
                        depth + 1,
                        leaf_lo + r as u64 * leaves_per_child,
                        sv,
                        tv,
                        m.as_mut(),
                    );
                }
            } else {
                rayon::scope(|scope| {
                    for (r, m) in ms.iter_mut().enumerate() {
                        let ssr = &ss;
                        let tsr = &ts;
                        scope.spawn(move |_| {
                            let (sv, _) = ssr[r].as_view();
                            let (tv, _) = tsr[r].as_view();
                            run_node(
                                ctx,
                                depth + 1,
                                leaf_lo + r as u64 * leaves_per_child,
                                sv,
                                tv,
                                m.as_mut(),
                            );
                        });
                    }
                });
            }
        }
        AdditionMethod::WriteOnce | AdditionMethod::Pairwise => {
            if sequentialish {
                for (r, m) in ms.iter_mut().enumerate() {
                    let s = form_operand(&lp.uplan, r, &ga, &a, &utemps, ctx.additions, par);
                    let t = form_operand(&lp.vplan, r, &gb, &b, &vtemps, ctx.additions, par);
                    let (sv, su) = s.as_view();
                    let (tv, tu) = t.as_view();
                    scales[r] = su * tu;
                    run_node(
                        ctx,
                        depth + 1,
                        leaf_lo + r as u64 * leaves_per_child,
                        sv,
                        tv,
                        m.as_mut(),
                    );
                }
            } else {
                let scale_slots: Vec<std::sync::atomic::AtomicU64> = (0..rank)
                    .map(|_| std::sync::atomic::AtomicU64::new(0))
                    .collect();
                rayon::scope(|scope| {
                    for (r, m) in ms.iter_mut().enumerate() {
                        let utemps = &utemps;
                        let vtemps = &vtemps;
                        let slots = &scale_slots;
                        scope.spawn(move |_| {
                            // S/T formation is part of the task (§4.2),
                            // hence sequential additions here.
                            let s =
                                form_operand(&lp.uplan, r, &ga, &a, utemps, ctx.additions, false);
                            let t =
                                form_operand(&lp.vplan, r, &gb, &b, vtemps, ctx.additions, false);
                            let (sv, su) = s.as_view();
                            let (tv, tu) = t.as_view();
                            slots[r]
                                .store((su * tu).to_bits(), std::sync::atomic::Ordering::Relaxed);
                            run_node(
                                ctx,
                                depth + 1,
                                leaf_lo + r as u64 * leaves_per_child,
                                sv,
                                tv,
                                m.as_mut(),
                            );
                        });
                    }
                });
                for (r, slot) in scale_slots.iter().enumerate() {
                    scales[r] = f64::from_bits(slot.load(std::sync::atomic::Ordering::Relaxed));
                }
            }
        }
    }

    // Combine: C_ij = Σ_r w_ijr · scale_r · M_r.
    combine_outputs(ctx, depth, lp, &ms, &scales, c, par);
}

/// Evaluate the W-side plan into the output blocks.
fn combine_outputs(
    ctx: &Ctx<'_>,
    _depth: usize,
    lp: &LevelPlan,
    ms: &[Matrix],
    scales: &[f64],
    c: MatMut<'_>,
    par: bool,
) {
    let gc = Grid::new(c.rows(), c.cols(), lp.m, lp.n);
    let mut cblocks = gc.blocks_mut(c);
    match ctx.additions {
        AdditionMethod::WriteOnce => {
            for (ij, cb) in cblocks.iter_mut().enumerate() {
                let terms: Vec<(f64, MatRef<'_>)> = lp.wplan[ij]
                    .iter()
                    .map(|&(r, coef)| (coef * scales[r], ms[r].as_ref()))
                    .collect();
                if par {
                    kernels::par_lincomb(cb.reborrow(), 0.0, &terms);
                } else {
                    kernels::lincomb(cb.reborrow(), 0.0, &terms);
                }
            }
        }
        AdditionMethod::Pairwise => {
            for (ij, cb) in cblocks.iter_mut().enumerate() {
                let chain = &lp.wplan[ij];
                if chain.is_empty() {
                    cb.fill(0.0);
                    continue;
                }
                let (r0, c0) = chain[0];
                if par {
                    kernels::par_copy(cb.reborrow(), ms[r0].as_ref());
                    if c0 * scales[r0] != 1.0 {
                        kernels::scale(cb.reborrow(), c0 * scales[r0]);
                    }
                    for &(r, coef) in &chain[1..] {
                        kernels::par_axpy(cb.reborrow(), coef * scales[r], ms[r].as_ref());
                    }
                } else {
                    kernels::copy_scaled(cb.reborrow(), c0 * scales[r0], ms[r0].as_ref());
                    for &(r, coef) in &chain[1..] {
                        kernels::axpy(cb.reborrow(), coef * scales[r], ms[r].as_ref());
                    }
                }
            }
        }
        AdditionMethod::Streaming => {
            for cb in cblocks.iter_mut() {
                cb.fill(0.0);
            }
            // Read each M_r once, updating every output block that uses it.
            for (r, m) in ms.iter().enumerate() {
                let mut refs: Vec<(f64, MatMut<'_>)> = Vec::new();
                for (ij, cb) in cblocks.iter_mut().enumerate() {
                    if let Some(&(_, coef)) = lp.wplan[ij].iter().find(|&&(rr, _)| rr == r) {
                        refs.push((coef * scales[r], cb.reborrow()));
                    }
                }
                if par {
                    kernels::par_stream_update(&mut refs, m.as_ref());
                } else {
                    kernels::stream_update(&mut refs, m.as_ref());
                }
            }
        }
    }
}
