//! Static plan audits: re-derive what a plan will do from its
//! recursion tree and cross-check the planner's precomputed values.
//!
//! [`PlanCertificate`] is computed by walking the level schedule the
//! same way the executor recurses — peel split per level, one classical
//! gemm per exhausted leaf, §3.5 fix-up strips per peeled node — but in
//! a *second, independent implementation* of the arithmetic: the
//! executor derives its workspace carving from `NodeLayout`, the
//! certificate re-derives every region size from the level metadata
//! alone. `Planner::plan` cross-checks the two with a `debug_assert`,
//! so a divergence between sizing and execution is caught at plan time
//! rather than as a slice-carving panic (or silent corruption) mid
//! multiply.

use crate::executor::{BorderHandling, LevelPlan, Options, Scheme};
use fmm_matrix::partition::PeelSplit;
use fmm_matrix::Scalar;

/// Statically derived facts about a [`crate::Plan`].
///
/// All counts are exact for the plan's shape and options — the
/// executor's runtime statistics ([`crate::ExecStatsSnapshot`]) must
/// match them gemm for gemm, which the integration tests assert.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanCertificate {
    /// Problem shape the plan was built for.
    pub shape: (usize, usize, usize),
    /// Recursion depth (number of fast levels).
    pub depth: usize,
    /// Product of the per-level ranks: the leaf count of an unpeeled
    /// recursion tree (Π_l R_l).
    pub composed_rank: u64,
    /// Exact number of classical base-case gemms the executor will
    /// issue. Equals `composed_rank` when every level divides evenly;
    /// smaller when empty cores collapse subtrees into single gemms.
    pub base_gemms: u64,
    /// Exact number of §3.5 dynamic-peeling fix-up gemms.
    pub peel_gemms: u64,
    /// Workspace temporaries the executor will account (M_r product
    /// buffers, plus padding copies under [`BorderHandling::Padding`]).
    pub temp_elements: u64,
    /// Exact workspace footprint in scalar elements — must equal
    /// [`crate::Plan::workspace_len`].
    pub workspace_len: usize,
    /// Multiply–add flops (`2·p·q·r` per gemm) summed over every
    /// base-case and peel gemm. Linear-combination work (the O(n²)
    /// additions) is excluded: it depends on the addition method and is
    /// asymptotically dominated.
    pub gemm_flops: u64,
}

/// Counts accumulated by one subtree walk.
#[derive(Clone, Copy, Default)]
struct Counts {
    base_gemms: u64,
    peel_gemms: u64,
    temp_elements: u64,
    gemm_flops: u64,
    workspace: usize,
}

impl Counts {
    fn leaf(p: usize, q: usize, r: usize) -> Counts {
        Counts {
            base_gemms: 1,
            gemm_flops: 2 * (p * q * r) as u64,
            ..Counts::default()
        }
    }

    fn strip(&mut self, p: usize, q: usize, r: usize) {
        self.peel_gemms += 1;
        self.gemm_flops += 2 * (p * q * r) as u64;
    }
}

/// Walk the subtree rooted at `depth` for a `p × q × r` problem.
fn walk<T: Scalar>(
    levels: &[LevelPlan<T>],
    scheme: Scheme,
    depth: usize,
    p: usize,
    q: usize,
    r: usize,
) -> Counts {
    let Some(lp) = levels.get(depth) else {
        return Counts::leaf(p, q, r);
    };
    let peel = PeelSplit::new(p, q, r, lp.m, lp.k, lp.n);
    if peel.core_is_empty() {
        return Counts::leaf(p, q, r);
    }
    let (p1, q1, r1) = (peel.p1, peel.q1, peel.r1);
    let (dp, dq, dr) = (peel.dp, peel.dq, peel.dr);
    let (cp, cq, cr) = (p1 / lp.m, q1 / lp.k, r1 / lp.n);
    let rank = lp.rank as u64;

    let child = walk(levels, scheme, depth + 1, cp, cq, cr);
    let mut acc = Counts {
        base_gemms: rank * child.base_gemms,
        peel_gemms: rank * child.peel_gemms,
        temp_elements: rank * child.temp_elements + (lp.rank * cp * cr) as u64,
        gemm_flops: rank * child.gemm_flops,
        workspace: 0,
    };

    // Fix-up strips in run_node order: C11 += A12·B21, C12, C21, C22.
    if dq > 0 {
        acc.strip(p1, dq, r1);
    }
    if dr > 0 {
        acc.strip(p1, q1, dr);
        if dq > 0 {
            acc.strip(p1, dq, dr);
        }
    }
    if dp > 0 {
        acc.strip(dp, q1, r1);
        if dq > 0 {
            acc.strip(dp, dq, r1);
        }
    }
    if dp > 0 && dr > 0 {
        acc.strip(dp, q1, dr);
        if dq > 0 {
            acc.strip(dp, dq, dr);
        }
    }

    // Workspace regions of this node, re-derived from level metadata:
    // CSE temporaries, per-multiplication S/T operands (skipping
    // passthroughs), the rank M_r products, and the child region —
    // replicated per child when children run concurrently.
    let (s_size, t_size, m_size) = (cp * cq, cq * cr, cp * cr);
    let ut_len = lp.u_temp_count() * s_size;
    let vt_len = lp.v_temp_count() * t_size;
    let st_len: usize = (0..lp.rank)
        .map(|i| {
            let (u_pass, v_pass) = lp.passthrough(i);
            (if u_pass { 0 } else { s_size }) + (if v_pass { 0 } else { t_size })
        })
        .sum();
    let children = if scheme.concurrent_children() {
        lp.rank * child.workspace
    } else {
        child.workspace
    };
    acc.workspace = ut_len + vt_len + lp.rank * m_size + st_len + children;
    acc
}

/// Padded dimensions under [`BorderHandling::Padding`]: each axis
/// rounded up to the full per-level product so no level ever peels.
fn padded_dims<T>(levels: &[LevelPlan<T>], p: usize, q: usize, r: usize) -> (usize, usize, usize) {
    let mprod: usize = levels.iter().map(|l| l.m).product();
    let kprod: usize = levels.iter().map(|l| l.k).product();
    let nprod: usize = levels.iter().map(|l| l.n).product();
    (
        p.div_ceil(mprod) * mprod,
        q.div_ceil(kprod) * kprod,
        r.div_ceil(nprod) * nprod,
    )
}

/// Compute the certificate for a level schedule on `shape` under
/// `opts`. This is the backing implementation of
/// [`crate::Plan::certificate`].
pub(crate) fn derive_certificate<T: Scalar>(
    levels: &[LevelPlan<T>],
    opts: &Options,
    shape: (usize, usize, usize),
) -> PlanCertificate {
    let (p, q, r) = shape;
    let mut pad_temps = 0u64;
    let mut pad_ws = 0usize;
    let (ep, eq, er) = if opts.border == BorderHandling::Padding && !levels.is_empty() {
        let (pp, qq, rr) = padded_dims(levels, p, q, r);
        if (pp, qq, rr) != (p, q, r) {
            pad_temps = (pp * qq + qq * rr + pp * rr) as u64;
            pad_ws = pp * qq + qq * rr + pp * rr;
            (pp, qq, rr)
        } else {
            (p, q, r)
        }
    } else {
        (p, q, r)
    };
    let counts = walk(levels, opts.scheme, 0, ep, eq, er);
    PlanCertificate {
        shape,
        depth: levels.len(),
        composed_rank: levels.iter().map(|l| l.rank as u64).product(),
        base_gemms: counts.base_gemms,
        peel_gemms: counts.peel_gemms,
        temp_elements: counts.temp_elements + pad_temps,
        workspace_len: counts.workspace + pad_ws,
        gemm_flops: counts.gemm_flops,
    }
}
