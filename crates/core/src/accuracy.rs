//! Numerical-accuracy instrumentation (§2.2.3, §6).
//!
//! Fast algorithms trade numerical stability for speed; APA algorithms
//! additionally lose roughly half the significant digits per recursive
//! step. These helpers measure forward error against the classical
//! algorithm so the harness can reproduce those observations.

use crate::executor::{FastMul, Options};
use fmm_gemm::naive_gemm;
use fmm_matrix::{relative_error, Matrix};
use fmm_tensor::Decomposition;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Relative forward error `‖C_fast − C_ref‖_F / ‖C_ref‖_F` of the fast
/// algorithm on a random `n × n × n` problem.
pub fn forward_error(dec: &Decomposition, opts: Options, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);
    let mut c_ref = Matrix::zeros(n, n);
    naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
    let c_fast = FastMul::new(dec, opts).multiply(&a, &b);
    relative_error(&c_fast.as_ref(), &c_ref.as_ref())
}

/// Max relative error over `trials` random problems — a smoother
/// statistic for comparing algorithms' stability (§6).
pub fn max_rel_error_vs_classical(
    dec: &Decomposition,
    opts: Options,
    n: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    (0..trials)
        .map(|t| forward_error(dec, opts, n, seed.wrapping_add(t as u64)))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_tensor::compose::classical;

    #[test]
    fn classical_decomposition_error_is_roundoff() {
        let c = classical(2, 2, 2);
        let e = forward_error(
            &c,
            Options {
                steps: 2,
                ..Options::default()
            },
            64,
            1,
        );
        assert!(e < 1e-13, "error {e}");
    }

    #[test]
    fn deeper_recursion_does_not_catastrophically_amplify() {
        let c = classical(2, 2, 2);
        let e = max_rel_error_vs_classical(
            &c,
            Options {
                steps: 3,
                ..Options::default()
            },
            96,
            3,
            7,
        );
        assert!(e < 1e-12, "error {e}");
    }
}
