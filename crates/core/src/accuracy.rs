//! Numerical-accuracy instrumentation (§2.2.3, §6).
//!
//! Fast algorithms trade numerical stability for speed; APA algorithms
//! additionally lose roughly half the significant digits per recursive
//! step. These helpers measure forward error against the classical
//! algorithm so the harness can reproduce those observations — in any
//! element type. The `_in` variants are generic (errors accumulate in
//! [`Scalar::Accum`], `f64` for both float types, so `f32` results are
//! measured rather than rounded away); the plain names keep their
//! historical `f64` signatures.

use crate::executor::{FastMul, Options};
use fmm_gemm::{naive_gemm, GemmScalar};
use fmm_matrix::{relative_error, DenseMatrix};
use fmm_tensor::Decomposition;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Relative forward error `‖C_fast − C_ref‖_F / ‖C_ref‖_F` of the fast
/// algorithm on a random `n × n × n` problem, computed in element type
/// `T` (operands, classical reference and fast multiply all in `T`).
pub fn forward_error_in<T: GemmScalar>(
    dec: &Decomposition,
    opts: Options,
    n: usize,
    seed: u64,
) -> T::Accum {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = DenseMatrix::<T>::random(n, n, &mut rng);
    let b = DenseMatrix::<T>::random(n, n, &mut rng);
    let mut c_ref = DenseMatrix::<T>::zeros(n, n);
    naive_gemm(T::ONE, a.as_ref(), b.as_ref(), T::ZERO, c_ref.as_mut());
    let c_fast = FastMul::<T>::new(dec, opts).multiply(&a, &b);
    relative_error(&c_fast.as_ref(), &c_ref.as_ref())
}

/// Max relative error over `trials` random problems — a smoother
/// statistic for comparing algorithms' stability (§6).
pub fn max_rel_error_vs_classical_in<T: GemmScalar>(
    dec: &Decomposition,
    opts: Options,
    n: usize,
    trials: usize,
    seed: u64,
) -> T::Accum {
    (0..trials)
        .map(|t| forward_error_in::<T>(dec, opts, n, seed.wrapping_add(t as u64)))
        .fold(<T::Accum as fmm_matrix::AccumScalar>::ZERO, |m, e| {
            if e > m {
                e
            } else {
                m
            }
        })
}

/// [`forward_error_in`] at the default element type (`f64`).
pub fn forward_error(dec: &Decomposition, opts: Options, n: usize, seed: u64) -> f64 {
    forward_error_in::<f64>(dec, opts, n, seed)
}

/// [`max_rel_error_vs_classical_in`] at the default element type.
pub fn max_rel_error_vs_classical(
    dec: &Decomposition,
    opts: Options,
    n: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    max_rel_error_vs_classical_in::<f64>(dec, opts, n, trials, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_tensor::compose::classical;

    #[test]
    fn classical_decomposition_error_is_roundoff() {
        let c = classical(2, 2, 2);
        let e = forward_error(
            &c,
            Options {
                steps: 2,
                ..Options::default()
            },
            64,
            1,
        );
        assert!(e < 1e-13, "error {e}");
    }

    #[test]
    fn deeper_recursion_does_not_catastrophically_amplify() {
        let c = classical(2, 2, 2);
        let e = max_rel_error_vs_classical(
            &c,
            Options {
                steps: 3,
                ..Options::default()
            },
            96,
            3,
            7,
        );
        assert!(e < 1e-12, "error {e}");
    }

    #[test]
    fn f32_classical_error_is_f32_roundoff() {
        // Same §6-style measurement in single precision: round-off is
        // f32-sized — orders above the f64 figure, far below 1.
        let c = classical(2, 2, 2);
        let e = forward_error_in::<f32>(
            &c,
            Options {
                steps: 2,
                ..Options::default()
            },
            64,
            1,
        );
        assert!(e > 1e-9, "f32 round-off should be visible: {e}");
        assert!(e < 1e-4, "but still small: {e}");
    }
}
