//! [`FmmEngine`]: a long-lived concurrent multiply service.
//!
//! The paper's framework pays off when setup cost is amortized across
//! many multiplies. [`crate::Planner`]/[`crate::Plan`] amortize per
//! *plan*, but every caller still hand-manages plans and workspaces,
//! and [`crate::Plan::execute_batch`] only covers same-shape batches.
//! The engine is the serve-many front door on top of them — the
//! FFTW-wisdom / runtime-dispatch shape that turns a planning library
//! into a service:
//!
//! * it owns an `fmm-runtime` thread pool, so every multiply — sync or
//!   submitted — runs at a fixed, configured width regardless of which
//!   client thread asked;
//! * a bounded **LRU plan cache** keyed by `(shape, Options, pool
//!   width)` auto-plans through [`fmm_algo::candidates_for_shape`] on a
//!   miss, so the first request for a shape pays for planning and every
//!   later one reuses the resolved [`Plan`];
//! * a **workspace pool** checks [`Workspace`] arenas in and out around
//!   each execution, so steady-state serving performs no arena
//!   allocation (asserted by [`EngineStats::workspaces_reused`]);
//! * [`FmmEngine::submit`] is the asynchronous path: operands move into
//!   a detached pool job and a [`MultiplyHandle`] joins it later —
//!   with work-stealing help from the caller when the caller is itself
//!   a pool worker ([`fmm_runtime::JobHandle`]);
//! * [`FmmEngine::submit_batch`] fans a mixed-shape stream out, one
//!   handle per product — each shape planned (or cache-hit)
//!   independently, unlike the same-shape-only
//!   [`crate::Plan::execute_batch`].
//!
//! The engine is cheap to clone (`Arc` inside) and `Send + Sync`:
//! share one per process and hit it from as many client threads as you
//! like.

use crate::cutoff::GemmProfile;
use crate::executor::{ExecStatsSnapshot, Options, Scheme};
use crate::planner::{Plan, PlanError, Planner};
use crate::workspace::Workspace;
use fmm_gemm::GemmScalar;
use fmm_matrix::DenseMatrix;
use fmm_runtime::{JobHandle, ThreadPool, ThreadPoolBuilder};
use fmm_tensor::Decomposition;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why the engine could not serve (or be built).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// `A.cols() != B.rows()`.
    InnerDimMismatch {
        /// Columns of A.
        a_cols: usize,
        /// Rows of B.
        b_rows: usize,
    },
    /// The caller-provided output has the wrong shape.
    OutputShape {
        /// Shape the product requires.
        expected: (usize, usize),
        /// Shape the caller passed.
        got: (usize, usize),
    },
    /// Planning failed for this shape/configuration.
    Plan(PlanError),
    /// The engine's thread pool could not be built.
    Pool(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InnerDimMismatch { a_cols, b_rows } => {
                write!(
                    f,
                    "inner dimension mismatch: A has {a_cols} cols, B has {b_rows} rows"
                )
            }
            EngineError::OutputShape { expected, got } => write!(
                f,
                "output shape {got:?} does not match the product shape {expected:?}"
            ),
            EngineError::Plan(e) => write!(f, "planning failed: {e}"),
            EngineError::Pool(msg) => write!(f, "engine thread pool: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

/// Where the engine's plans get their decomposition from.
enum AlgSource {
    /// Rank the exact catalog per shape ([`fmm_algo::candidates_for_shape`])
    /// and let the planner pick.
    Catalog,
    /// One fixed decomposition for every shape.
    Fixed(Decomposition),
    /// A fixed composed schedule (one decomposition per level) for
    /// every shape; the schedule length is the depth.
    Schedule(Vec<Decomposition>),
}

/// Builder for [`FmmEngine`]. All knobs optional; the defaults give a
/// hardware-width pool (honoring `FMM_THREADS`), catalog auto-planning
/// at depth chosen by the §3.4 rule, and the HYBRID scheme when the
/// pool has more than one worker.
///
/// The element-type parameter (default `f64`) fixes the dtype every
/// plan of the built engine executes in; `FmmEngine::<f32>::builder()`
/// configures a single-precision engine.
pub struct EngineBuilder<T = f64> {
    threads: Option<usize>,
    cache_capacity: usize,
    max_pooled_workspaces: Option<usize>,
    max_pooled_workspace_len: Option<usize>,
    options: Option<Options>,
    steps: Option<usize>,
    max_steps: usize,
    profile: Option<GemmProfile>,
    alg: AlgSource,
    _dtype: std::marker::PhantomData<T>,
}

impl<T: GemmScalar> Default for EngineBuilder<T> {
    fn default() -> Self {
        EngineBuilder::new()
    }
}

impl<T: GemmScalar> EngineBuilder<T> {
    /// A builder with the engine defaults.
    #[must_use]
    pub fn new() -> Self {
        EngineBuilder {
            threads: None,
            cache_capacity: 64,
            max_pooled_workspaces: None,
            max_pooled_workspace_len: None,
            options: None,
            steps: None,
            max_steps: 4,
            profile: None,
            alg: AlgSource::Catalog,
            _dtype: std::marker::PhantomData,
        }
    }

    /// Pool width; `0` (and the default) means `FMM_THREADS` or the
    /// hardware thread count ([`fmm_runtime::default_num_threads`]).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// Plan-cache bound (LRU eviction beyond it; default 64, min 1).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Cap on idle pooled workspaces (default `2 × width + 2`). Excess
    /// arenas returned at check-in are dropped instead of pooled.
    #[must_use]
    pub fn max_pooled_workspaces(mut self, max: usize) -> Self {
        self.max_pooled_workspaces = Some(max);
        self
    }

    /// Cap, in f64 elements, on the size of an arena the pool will
    /// retain (default unbounded). Arenas grow monotonically to the
    /// largest plan they ever served, so a long-lived engine that sees
    /// one burst of huge multiplies would otherwise pin
    /// `max_pooled_workspaces` maximum-sized arenas forever; with a
    /// cap, oversized arenas are dropped at check-in and recreated
    /// right-sized when needed again.
    #[must_use]
    pub fn max_pooled_workspace_len(mut self, len: usize) -> Self {
        self.max_pooled_workspace_len = Some(len);
        self
    }

    /// Executor strategy (additions, CSE, scheme, border). `steps` in
    /// the value is ignored — set depth via [`EngineBuilder::steps`] or
    /// let the profile decide. Default: write-once additions, dynamic
    /// peeling, Sequential scheme at width 1 and HYBRID otherwise.
    #[must_use]
    pub fn options(mut self, options: Options) -> Self {
        self.options = Some(options);
        self
    }

    /// Pin the recursion depth for every plan, overriding the profile
    /// rule.
    #[must_use]
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Cap on the profile-recommended depth (default 4).
    #[must_use]
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Machine profile driving the §3.4 depth rule and candidate
    /// auto-selection.
    #[must_use]
    pub fn profile(mut self, profile: GemmProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Use one fixed decomposition for every shape instead of the
    /// catalog.
    #[must_use]
    pub fn algorithm(mut self, dec: &Decomposition) -> Self {
        self.alg = AlgSource::Fixed(dec.clone());
        self
    }

    /// Use a fixed composed schedule (§5.2) for every shape; its length
    /// is the recursion depth.
    #[must_use]
    pub fn schedule(mut self, schedule: &[Decomposition]) -> Self {
        self.alg = AlgSource::Schedule(schedule.to_vec());
        self
    }

    /// Spawn the pool and assemble the engine.
    pub fn build(self) -> Result<FmmEngine<T>, EngineError> {
        let width = self
            .threads
            .unwrap_or_else(fmm_runtime::default_num_threads)
            .max(1);
        let pool = ThreadPoolBuilder::new()
            .num_threads(width)
            .build()
            .map_err(|e| EngineError::Pool(e.to_string()))?;
        let base_opts = self.options.unwrap_or(Options {
            scheme: if width == 1 {
                Scheme::Sequential
            } else {
                Scheme::Hybrid
            },
            ..Options::default()
        });
        Ok(FmmEngine {
            inner: Arc::new(EngineInner {
                pool,
                width,
                base_opts,
                steps: self.steps,
                max_steps: self.max_steps,
                profile: self.profile,
                alg: self.alg,
                cache: Mutex::new(PlanCache::new(self.cache_capacity)),
                workspaces: Mutex::new(Vec::new()),
                max_pooled_workspaces: self.max_pooled_workspaces.unwrap_or(2 * width + 2),
                max_pooled_workspace_len: self.max_pooled_workspace_len.unwrap_or(usize::MAX),
                counters: Counters::default(),
                hists: fmm_trace::HistogramSet::new(),
            }),
        })
    }
}

/// Key of one cached plan: the problem shape plus everything else that
/// determines the compiled plan (strategy options with the *requested*
/// depth — 0 when the profile rule decides — and the pool width the
/// plan will execute at).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    shape: (usize, usize, usize),
    opts: Options,
    width: usize,
}

/// Bounded LRU: a map from key to `(plan, last-use tick)`. Capacities
/// are small (tens of shapes), so eviction scans for the minimum tick
/// instead of maintaining a linked list.
struct PlanCache<T> {
    capacity: usize,
    tick: u64,
    map: HashMap<PlanKey, (Arc<Plan<T>>, u64)>,
}

impl<T: GemmScalar> PlanCache<T> {
    fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &PlanKey) -> Option<Arc<Plan<T>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.1 = tick;
            Arc::clone(&entry.0)
        })
    }

    /// Insert and evict least-recently-used entries beyond capacity,
    /// returning how many were evicted.
    fn insert(&mut self, key: PlanKey, plan: Arc<Plan<T>>) -> u64 {
        self.tick += 1;
        self.map.insert(key, (plan, self.tick));
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| *k)
                .expect("over-capacity cache is non-empty");
            self.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

/// Monotonic service counters behind [`FmmEngine::stats`].
#[derive(Default)]
struct Counters {
    multiplies: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_evictions: AtomicU64,
    workspaces_created: AtomicU64,
    workspaces_reused: AtomicU64,
    base_gemms: AtomicU64,
    peel_gemms: AtomicU64,
    tasks_stolen: AtomicU64,
}

/// Point-in-time service statistics: the engine-level counters (plan
/// cache, workspace pool) plus the [`ExecStatsSnapshot`] fields worth
/// aggregating across runs (`base_gemms`, `peel_gemms`,
/// `tasks_stolen`). All counters are monotonic since engine creation;
/// diff two snapshots to attribute activity to a region.
///
/// Serializable ([`EngineStats::to_json`]/[`EngineStats::from_json`])
/// so a serving process can report its counters over an RPC and a
/// router can aggregate them fleet-wide.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Pool width the engine executes at.
    pub threads: usize,
    /// Completed multiplies (sync and submitted).
    pub multiplies: u64,
    /// Requests served from the plan cache.
    pub plan_cache_hits: u64,
    /// Requests that had to plan (first sight of a key, or after its
    /// eviction).
    pub plan_cache_misses: u64,
    /// Plans evicted by the LRU bound.
    pub plan_cache_evictions: u64,
    /// Plans currently cached.
    pub plans_cached: usize,
    /// Workspace arenas ever allocated by the pool.
    pub workspaces_created: u64,
    /// Executions whose checked-out arena already had sufficient
    /// capacity — i.e. runs that performed **no** arena allocation.
    pub workspaces_reused: u64,
    /// Idle arenas currently pooled.
    pub workspaces_pooled: usize,
    /// Aggregate base-case gemm count across all served multiplies.
    pub base_gemms: u64,
    /// Aggregate dynamic-peeling fix-up gemm count.
    pub peel_gemms: u64,
    /// Aggregate work-stealing events observed while serving. The
    /// underlying counter is process-wide, so concurrent engines (or
    /// concurrent requests) can inflate each other's share; treat it as
    /// evidence of stealing, not an exact attribution.
    pub tasks_stolen: u64,
    /// Per-`"<shape-class>/<dtype>"` request latency histograms
    /// (nanoseconds, whole [`FmmEngine::multiply`] serve path),
    /// recorded unconditionally — independent of the `fmm-trace` span
    /// gate. Cumulative like every other counter here: diff two
    /// snapshots ([`fmm_trace::Histogram::saturating_diff`]) to get a
    /// window, merge rows ([`fmm_trace::merge_rows`]) to aggregate
    /// engines fleet-wide. Quantiles carry the
    /// [`fmm_trace::RELATIVE_ERROR_BOUND`] relative error bound.
    pub latency: Vec<fmm_trace::HistogramRow>,
}

impl EngineStats {
    /// Serialize as pretty-printed JSON — the form a shard reports over
    /// the fmm-serve stats RPC.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("stats serialization is infallible")
    }

    /// Parse a snapshot previously produced by [`EngineStats::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

struct EngineInner<T> {
    pool: ThreadPool,
    width: usize,
    base_opts: Options,
    steps: Option<usize>,
    max_steps: usize,
    profile: Option<GemmProfile>,
    alg: AlgSource,
    cache: Mutex<PlanCache<T>>,
    workspaces: Mutex<Vec<Workspace<T>>>,
    max_pooled_workspaces: usize,
    max_pooled_workspace_len: usize,
    counters: Counters,
    hists: fmm_trace::HistogramSet,
}

impl<T: GemmScalar> EngineInner<T> {
    fn key_for(&self, m: usize, k: usize, n: usize) -> PlanKey {
        PlanKey {
            shape: (m, k, n),
            opts: Options {
                steps: self.steps.unwrap_or(0),
                ..self.base_opts
            },
            width: self.width,
        }
    }

    /// Cached plan for a shape, planning on miss. Planning runs outside
    /// the cache lock, so a concurrent first request for the same shape
    /// may plan twice (both misses counted); the later insert wins.
    fn plan_for(&self, m: usize, k: usize, n: usize) -> Result<Arc<Plan<T>>, EngineError> {
        let key = self.key_for(m, k, n);
        if let Some(plan) = self.cache.lock().unwrap().get(&key) {
            self.counters
                .plan_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        self.counters
            .plan_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(self.build_plan(m, k, n)?);
        let evicted = self.cache.lock().unwrap().insert(key, Arc::clone(&plan));
        if evicted > 0 {
            self.counters
                .plan_cache_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(plan)
    }

    fn build_plan(&self, m: usize, k: usize, n: usize) -> Result<Plan<T>, EngineError> {
        let mut planner = Planner::new()
            .shape(m, k, n)
            .options(self.base_opts)
            .max_steps(self.max_steps);
        let catalog_decs: Vec<Decomposition>;
        let schedule_refs: Vec<&Decomposition>;
        match &self.alg {
            AlgSource::Fixed(dec) => planner = planner.algorithm(dec),
            AlgSource::Schedule(schedule) => {
                schedule_refs = schedule.iter().collect();
                planner = planner.schedule(&schedule_refs);
            }
            AlgSource::Catalog => {
                catalog_decs = fmm_algo::candidates_for_shape(m, k, n)
                    .into_iter()
                    .map(|a| a.dec)
                    .collect();
                planner = planner.auto_algorithm(&catalog_decs);
            }
        }
        if let Some(profile) = &self.profile {
            planner = planner.profile(profile.clone());
        }
        if let Some(steps) = self.steps {
            planner = planner.steps(steps);
        }
        Ok(planner.plan::<T>()?)
    }

    fn checkout_workspace(&self) -> Workspace<T> {
        if let Some(ws) = self.workspaces.lock().unwrap().pop() {
            return ws;
        }
        self.counters
            .workspaces_created
            .fetch_add(1, Ordering::Relaxed);
        Workspace::new()
    }

    fn checkin_workspace(&self, ws: Workspace<T>) {
        // Arenas grow monotonically, so without the length bound one
        // burst of huge multiplies would pin max-sized arenas for the
        // engine's whole lifetime; oversized arenas are dropped here
        // and recreated right-sized on a later checkout.
        if ws.len() > self.max_pooled_workspace_len {
            return;
        }
        let mut pool = self.workspaces.lock().unwrap();
        if pool.len() < self.max_pooled_workspaces {
            pool.push(ws);
        }
    }

    /// The one serving path every public multiply goes through: plan
    /// (cached), check a workspace out, execute on the engine pool,
    /// account, check the workspace back in.
    fn serve(
        &self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
        c: &mut DenseMatrix<T>,
    ) -> Result<ExecStatsSnapshot, EngineError> {
        let (m, ka) = a.shape();
        let (kb, n) = b.shape();
        if ka != kb {
            return Err(EngineError::InnerDimMismatch {
                a_cols: ka,
                b_rows: kb,
            });
        }
        if c.shape() != (m, n) {
            return Err(EngineError::OutputShape {
                expected: (m, n),
                got: c.shape(),
            });
        }
        // One clock read starts both the always-on latency histogram
        // and (when the trace gate is up) the request span.
        let t_req = fmm_trace::now_ns();
        let trace = fmm_trace::enabled();
        let t_span = fmm_trace::now_if(trace);
        let plan = self.plan_for(m, ka, n)?;
        fmm_trace::span_end(fmm_trace::SpanKind::PlanLookup, t_span, 0);
        let t_span = fmm_trace::now_if(trace);
        let mut ws = self.checkout_workspace();
        fmm_trace::span_end(fmm_trace::SpanKind::WorkspaceCheckout, t_span, 0);
        // `install` is a no-op indirection when we're already on one of
        // this pool's workers (the submit path).
        let snap = self
            .pool
            .install(|| plan.execute_with_stats(a, b, c, &mut ws));
        self.checkin_workspace(ws);
        self.hists.record(
            &format!("{}/{}", shape_class(m, ka, n), T::NAME),
            fmm_trace::now_ns().saturating_sub(t_req),
        );
        if trace {
            fmm_trace::span_end(fmm_trace::SpanKind::Request, t_req, (m * ka * n) as u64);
        }
        let cs = &self.counters;
        cs.multiplies.fetch_add(1, Ordering::Relaxed);
        if snap.workspace_reused {
            cs.workspaces_reused.fetch_add(1, Ordering::Relaxed);
        }
        cs.base_gemms.fetch_add(snap.base_gemms, Ordering::Relaxed);
        cs.peel_gemms.fetch_add(snap.peel_gemms, Ordering::Relaxed);
        cs.tasks_stolen
            .fetch_add(snap.tasks_stolen, Ordering::Relaxed);
        Ok(snap)
    }
}

/// A long-lived fast-matmul service: thread pool + plan cache +
/// workspace pool behind one clonable, `Send + Sync` front door. See
/// the [module docs](self) for the design.
///
/// ```
/// use fmm_core::FmmEngine;
/// use fmm_matrix::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let engine = FmmEngine::builder().threads(2).build().unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = Matrix::random(64, 64, &mut rng);
/// let b = Matrix::random(64, 64, &mut rng);
///
/// // Synchronous: plan on first sight of the shape, cached after.
/// let c1 = engine.multiply(&a, &b).unwrap();
///
/// // Asynchronous: operands move into a pool job; join later.
/// let handle = engine.submit(a.clone(), b.clone());
/// let c2 = handle.wait().unwrap();
/// assert_eq!(c1, c2);
///
/// let stats = engine.stats();
/// assert_eq!(stats.multiplies, 2);
/// assert_eq!(stats.plan_cache_hits, 1); // second multiply reused the plan
/// ```
pub struct FmmEngine<T = f64> {
    inner: Arc<EngineInner<T>>,
}

impl<T> Clone for FmmEngine<T> {
    fn clone(&self) -> Self {
        FmmEngine {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: GemmScalar> std::fmt::Debug for FmmEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FmmEngine")
            .field("dtype", &T::NAME)
            .field("threads", &self.inner.width)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T: GemmScalar> FmmEngine<T> {
    /// Start configuring an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder<T> {
        EngineBuilder::new()
    }

    /// An engine with all defaults (hardware-width pool, catalog
    /// auto-planning).
    pub fn new() -> Result<FmmEngine<T>, EngineError> {
        EngineBuilder::new().build()
    }

    /// Pool width this engine executes at.
    pub fn threads(&self) -> usize {
        self.inner.width
    }

    /// `A · B` into a fresh output matrix (synchronous).
    pub fn multiply(
        &self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
    ) -> Result<DenseMatrix<T>, EngineError> {
        let mut c = DenseMatrix::zeros(a.rows(), b.cols());
        self.inner.serve(a, b, &mut c)?;
        Ok(c)
    }

    /// `C = A · B` into a caller-provided output: with the plan cached
    /// and the workspace pool warm, this path allocates nothing.
    pub fn multiply_into(
        &self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
        c: &mut DenseMatrix<T>,
    ) -> Result<(), EngineError> {
        self.inner.serve(a, b, c).map(|_| ())
    }

    /// As [`FmmEngine::multiply_into`], returning this run's
    /// [`ExecStatsSnapshot`] (workspace footprint, leaf counts,
    /// steals).
    pub fn multiply_with_stats(
        &self,
        a: &DenseMatrix<T>,
        b: &DenseMatrix<T>,
        c: &mut DenseMatrix<T>,
    ) -> Result<ExecStatsSnapshot, EngineError> {
        self.inner.serve(a, b, c)
    }

    /// Asynchronous submit: move the operands into a detached job on
    /// the engine pool and return at once. Shape errors surface from
    /// [`MultiplyHandle::wait`], not here.
    pub fn submit(&self, a: DenseMatrix<T>, b: DenseMatrix<T>) -> MultiplyHandle<T> {
        let inner = Arc::clone(&self.inner);
        let handle = self.inner.pool.spawn(move || {
            let mut c = DenseMatrix::zeros(a.rows(), b.cols());
            inner.serve(&a, &b, &mut c).map(|_| c)
        });
        MultiplyHandle { handle }
    }

    /// Submit a mixed-shape stream: one detached job and one handle per
    /// `(Aᵢ, Bᵢ)` product. Each shape is planned (or served from the
    /// cache) independently, so unlike
    /// [`crate::Plan::execute_batch`] the batch need not be uniform.
    pub fn submit_batch(
        &self,
        batch: impl IntoIterator<Item = (DenseMatrix<T>, DenseMatrix<T>)>,
    ) -> Vec<MultiplyHandle<T>> {
        batch.into_iter().map(|(a, b)| self.submit(a, b)).collect()
    }

    /// The cached (planning on miss) [`Plan`] the engine would execute
    /// for a `m × k × n` problem — for callers that want to inspect it
    /// or run [`Plan::execute`] themselves against the same compiled
    /// plan.
    pub fn plan_for(&self, m: usize, k: usize, n: usize) -> Result<Arc<Plan<T>>, EngineError> {
        self.inner.plan_for(m, k, n)
    }

    /// Point-in-time service statistics.
    pub fn stats(&self) -> EngineStats {
        let cs = &self.inner.counters;
        EngineStats {
            threads: self.inner.width,
            multiplies: cs.multiplies.load(Ordering::Relaxed),
            plan_cache_hits: cs.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: cs.plan_cache_misses.load(Ordering::Relaxed),
            plan_cache_evictions: cs.plan_cache_evictions.load(Ordering::Relaxed),
            plans_cached: self.inner.cache.lock().unwrap().map.len(),
            workspaces_created: cs.workspaces_created.load(Ordering::Relaxed),
            workspaces_reused: cs.workspaces_reused.load(Ordering::Relaxed),
            workspaces_pooled: self.inner.workspaces.lock().unwrap().len(),
            base_gemms: cs.base_gemms.load(Ordering::Relaxed),
            peel_gemms: cs.peel_gemms.load(Ordering::Relaxed),
            tasks_stolen: cs.tasks_stolen.load(Ordering::Relaxed),
            latency: self.inner.hists.snapshot(),
        }
    }
}

/// Coarse shape class a request is histogrammed under: the power-of-two
/// band of the largest dimension. Shapes in one class share a plan
/// family and a latency regime, so per-class histograms separate the
/// fleet's small-product tail from its large-product tail without
/// per-shape cardinality.
pub fn shape_class(m: usize, k: usize, n: usize) -> &'static str {
    match m.max(k).max(n) {
        0..=64 => "p0-64",
        65..=128 => "p65-128",
        129..=256 => "p129-256",
        257..=512 => "p257-512",
        513..=1024 => "p513-1024",
        _ => "p1025+",
    }
}

/// Join handle of one submitted multiply. [`MultiplyHandle::wait`]
/// blocks until the product is ready; a waiting engine-pool worker
/// helps execute pool work instead of blocking (see
/// [`fmm_runtime::JobHandle`]).
pub struct MultiplyHandle<T = f64> {
    handle: JobHandle<Result<DenseMatrix<T>, EngineError>>,
}

impl<T: GemmScalar> MultiplyHandle<T> {
    /// Has the multiply finished?
    pub fn is_done(&self) -> bool {
        self.handle.is_done()
    }

    /// Join: block until the product is ready and return it (or the
    /// shape/planning error the job hit).
    pub fn wait(self) -> Result<DenseMatrix<T>, EngineError> {
        self.handle.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_gemm::naive_gemm;
    use fmm_matrix::{max_abs_diff, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        naive_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        c
    }

    fn random_problem(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Matrix::random(m, k, &mut rng),
            Matrix::random(k, n, &mut rng),
        )
    }

    #[test]
    fn multiply_matches_reference_and_caches_the_plan() {
        let engine = FmmEngine::builder().threads(1).build().unwrap();
        let (a, b) = random_problem(48, 48, 48, 1);
        let c1 = engine.multiply(&a, &b).unwrap();
        let c2 = engine.multiply(&a, &b).unwrap();
        assert_eq!(c1, c2, "repeat serve must be deterministic");
        let want = reference(&a, &b);
        let d = max_abs_diff(&want.as_ref(), &c1.as_ref()).unwrap();
        assert!(d < 1e-9, "diff {d}");
        let s = engine.stats();
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.plan_cache_hits, 1);
        assert_eq!(s.plans_cached, 1);
        assert_eq!(s.multiplies, 2);
    }

    #[test]
    fn workspace_pool_reuses_after_warmup() {
        let engine = FmmEngine::builder().threads(1).build().unwrap();
        let (a, b) = random_problem(40, 40, 40, 2);
        let mut c = Matrix::zeros(40, 40);
        engine.multiply_into(&a, &b, &mut c).unwrap(); // warm-up sizes the arena
        for _ in 0..5 {
            engine.multiply_into(&a, &b, &mut c).unwrap();
        }
        let s = engine.stats();
        assert_eq!(s.workspaces_created, 1, "one arena serves a serial client");
        assert_eq!(s.workspaces_reused, 5, "every post-warm-up run reuses it");
        assert_eq!(s.workspaces_pooled, 1);
    }

    #[test]
    fn oversized_arenas_are_dropped_at_checkin() {
        let engine = FmmEngine::builder()
            .threads(1)
            .max_pooled_workspace_len(10)
            .build()
            .unwrap();
        let (a, b) = random_problem(48, 48, 48, 3);
        engine.multiply(&a, &b).unwrap();
        let s = engine.stats();
        assert_eq!(
            s.workspaces_pooled, 0,
            "an arena beyond the retention cap must not be pooled"
        );
        // The next serve has to create a fresh arena.
        engine.multiply(&a, &b).unwrap();
        assert_eq!(engine.stats().workspaces_created, 2);
    }

    #[test]
    fn lru_cache_evicts_the_least_recently_used_plan() {
        let engine = FmmEngine::builder()
            .threads(1)
            .cache_capacity(2)
            .build()
            .unwrap();
        let serve = |n: usize, seed: u64| {
            let (a, b) = random_problem(n, n, n, seed);
            engine.multiply(&a, &b).unwrap();
        };
        serve(16, 1); // miss: cache {16}
        serve(20, 2); // miss: cache {16, 20}
        serve(16, 3); // hit: 16 becomes most recent
        serve(24, 4); // miss: evicts 20 (LRU), cache {16, 24}
        serve(16, 5); // hit: still cached
        serve(20, 6); // miss again: was evicted
        let s = engine.stats();
        assert_eq!(s.plan_cache_misses, 4);
        assert_eq!(s.plan_cache_hits, 2);
        assert!(s.plan_cache_evictions >= 2, "20 evicted, then 16 or 24");
        assert_eq!(s.plans_cached, 2);
    }

    #[test]
    fn shape_errors_are_reported_not_panicked() {
        let engine = FmmEngine::builder().threads(1).build().unwrap();
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(6, 3);
        assert_eq!(
            engine.multiply(&a, &b).unwrap_err(),
            EngineError::InnerDimMismatch {
                a_cols: 5,
                b_rows: 6
            }
        );
        let b_ok = Matrix::zeros(5, 3);
        let mut c_bad = Matrix::zeros(4, 4);
        assert_eq!(
            engine.multiply_into(&a, &b_ok, &mut c_bad).unwrap_err(),
            EngineError::OutputShape {
                expected: (4, 3),
                got: (4, 4)
            }
        );
        // The async path reports through the handle.
        let err = engine.submit(a, b).wait().unwrap_err();
        assert!(matches!(err, EngineError::InnerDimMismatch { .. }));
    }

    #[test]
    fn fixed_schedule_engine_plans_the_schedule_depth() {
        let engine = FmmEngine::builder()
            .threads(1)
            .schedule(&[crate::codegen_fixture(), crate::codegen_fixture()])
            .build()
            .unwrap();
        let plan = engine.plan_for(32, 32, 32).unwrap();
        assert_eq!(plan.depth(), 2);
        let (a, b) = random_problem(32, 32, 32, 7);
        let want = reference(&a, &b);
        let got = engine.multiply(&a, &b).unwrap();
        let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
        assert!(d < 1e-9, "diff {d}");
    }

    #[test]
    fn engine_stats_json_roundtrip() {
        let engine = FmmEngine::builder().threads(2).build().unwrap();
        let (a, b) = random_problem(32, 32, 32, 11);
        engine.multiply(&a, &b).unwrap();
        engine.multiply(&a, &b).unwrap();
        let stats = engine.stats();
        let text = stats.to_json();
        let back = EngineStats::from_json(&text).expect("round-trip");
        assert_eq!(stats, back);
        // Malformed and field-dropped inputs are rejected, not
        // zero-filled: a router must never aggregate a half-parsed
        // shard report.
        assert!(EngineStats::from_json("not json").is_err());
        assert!(EngineStats::from_json("{\"threads\": 2}").is_err());
        let truncated = text.replace("\"multiplies\"", "\"multiplies_renamed\"");
        assert!(EngineStats::from_json(&truncated).is_err());
    }

    #[test]
    fn submit_batch_serves_mixed_shapes() {
        let engine = FmmEngine::builder().threads(2).build().unwrap();
        let shapes = [(24, 32, 16), (40, 40, 40), (16, 48, 24)];
        let problems: Vec<(Matrix, Matrix)> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, k, n))| random_problem(m, k, n, 10 + i as u64))
            .collect();
        let handles = engine.submit_batch(problems.clone());
        for ((a, b), handle) in problems.iter().zip(handles) {
            let got = handle.wait().unwrap();
            let want = reference(a, b);
            let d = max_abs_diff(&want.as_ref(), &got.as_ref()).unwrap();
            assert!(d < 1e-9, "diff {d}");
        }
        assert_eq!(engine.stats().multiplies, 3);
    }
}
