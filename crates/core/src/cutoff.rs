//! The recursion-cutoff rule of §3.4.
//!
//! The paper's principle: *take a recursive step only if the resulting
//! subproblems still land on the flat part of the gemm performance
//! curve* — if gemm performance drops by a larger ratio than the
//! algorithm's multiplication speedup per step (Table 2), recursion
//! cannot pay. This module measures a small gemm profile at runtime and
//! applies that test level by level.

use fmm_gemm::{classical_flops, gemm};
use fmm_matrix::Matrix;
use fmm_tensor::Decomposition;
use std::time::Instant;

/// A measured gemm performance profile: (problem size, GFLOPS) samples
/// for square problems, monotone in size on the ramp-up.
#[derive(Debug, Clone)]
pub struct GemmProfile {
    samples: Vec<(usize, f64)>,
}

impl GemmProfile {
    /// Measure the sequential gemm at the given square sizes with one
    /// untimed warmup per size and best-of-3 timing (see
    /// [`GemmProfile::measure_with_reps`]).
    pub fn measure(sizes: &[usize]) -> Self {
        Self::measure_with_reps(sizes, 3)
    }

    /// Measure the sequential gemm at the given square sizes.
    ///
    /// For each size, one untimed warmup multiplication absorbs
    /// page-fault and cache-warmup noise, then the best (highest
    /// GFLOPS) of `reps` timed runs is kept — a cold single-shot
    /// measurement would systematically understate the flat part of
    /// the curve and bias the §3.4 cutoff rule against recursion.
    /// Repeated sizes keep the overall max.
    pub fn measure_with_reps(sizes: &[usize], reps: usize) -> Self {
        let mut samples: Vec<(usize, f64)> = Vec::new();
        for &n in sizes {
            let a = Matrix::filled(n, n, 1.0);
            let b = Matrix::filled(n, n, 0.5);
            let mut c = Matrix::zeros(n, n);
            // Warmup: touches every page of a, b and c.
            gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
            let mut gflops = 0.0f64;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
                let secs = t0.elapsed().as_secs_f64().max(1e-9);
                gflops = gflops.max(classical_flops(n, n, n) / secs * 1e-9);
            }
            match samples.iter_mut().find(|(sz, _)| *sz == n) {
                Some((_, g)) => *g = g.max(gflops),
                None => samples.push((n, gflops)),
            }
        }
        samples.sort_by_key(|&(n, _)| n);
        GemmProfile { samples }
    }

    /// Build a profile from precomputed samples (for tests and for
    /// replaying saved measurements).
    pub fn from_samples(mut samples: Vec<(usize, f64)>) -> Self {
        samples.sort_by_key(|&(n, _)| n);
        GemmProfile { samples }
    }

    /// Interpolated GFLOPS estimate at size `n` (linear between
    /// samples, clamped at the ends).
    pub fn gflops_at(&self, n: usize) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        if n <= self.samples[0].0 {
            return self.samples[0].1;
        }
        for w in self.samples.windows(2) {
            let ((n0, g0), (n1, g1)) = (w[0], w[1]);
            if n <= n1 {
                let t = (n - n0) as f64 / (n1 - n0).max(1) as f64;
                return g0 + t * (g1 - g0);
            }
        }
        self.samples.last().unwrap().1
    }

    /// §3.4 test: does one recursive step of `dec` pay at problem size
    /// `n` (square)? True when the gemm performance drop from `n` to the
    /// subproblem size is smaller than the algorithm's multiplication
    /// speedup per step.
    pub fn step_pays(&self, dec: &Decomposition, n: usize) -> bool {
        let (m, k, _) = dec.base();
        let sub = n / m.max(k).max(dec.n);
        if sub == 0 {
            return false;
        }
        let drop_ratio = self.gflops_at(n) / self.gflops_at(sub).max(1e-12);
        1.0 + dec.speedup_per_step() > drop_ratio
    }

    /// Recommended recursion depth for an `n × n × n` problem: keep
    /// stepping while the rule of §3.4 approves, up to `max_steps`.
    pub fn recommended_steps(&self, dec: &Decomposition, n: usize, max_steps: usize) -> usize {
        let mut steps = 0;
        let mut cur = n;
        let shrink = dec.m.max(dec.k).max(dec.n);
        while steps < max_steps && self.step_pays(dec, cur) {
            steps += 1;
            cur /= shrink;
        }
        steps
    }

    /// Serialize the profile as pretty-printed JSON
    /// (`{"samples": [{"n": .., "gflops": ..}, ..]}`) so a measured
    /// machine profile can be saved and replayed by
    /// [`crate::Planner::profile`] instead of re-measuring.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialization is infallible")
    }

    /// Parse a profile previously produced by [`GemmProfile::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl serde::Serialize for GemmProfile {
    fn serialize_value(&self) -> serde::Value {
        let samples = self
            .samples
            .iter()
            .map(|&(n, gflops)| {
                serde::Value::Object(vec![
                    ("n".to_string(), serde::Value::Num(n as f64)),
                    ("gflops".to_string(), serde::Value::Num(gflops)),
                ])
            })
            .collect();
        serde::Value::Object(vec![("samples".to_string(), serde::Value::Array(samples))])
    }
}

impl serde::Deserialize for GemmProfile {
    fn deserialize_value(value: &serde::Value) -> Result<Self, String> {
        let serde::Value::Object(fields) = value else {
            return Err("expected a profile object".into());
        };
        let samples_value = fields
            .iter()
            .find(|(k, _)| k == "samples")
            .map(|(_, v)| v)
            .ok_or("missing `samples` field")?;
        let serde::Value::Array(items) = samples_value else {
            return Err("`samples` must be an array".into());
        };
        if items.is_empty() {
            // An empty profile would interpolate to a constant and
            // silently approve max-depth recursion everywhere — treat a
            // truncated save file as an error, not a flat machine.
            return Err("`samples` is empty; refusing to plan from a vacuous profile".into());
        }
        let mut samples = Vec::with_capacity(items.len());
        for item in items {
            let serde::Value::Object(entry) = item else {
                return Err("each sample must be an object".into());
            };
            let num = |key: &str| -> Result<f64, String> {
                match entry.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    Some(serde::Value::Num(x)) => Ok(*x),
                    _ => Err(format!("sample missing numeric `{key}`")),
                }
            };
            samples.push((num("n")? as usize, num("gflops")?));
        }
        Ok(GemmProfile::from_samples(samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_tensor::compose::classical;

    fn strassen_like() -> Decomposition {
        // only base dims and rank matter for the rule; classical ⟨2,2,2⟩
        // has speedup 0, so craft ratios with the real Strassen instead.
        crate::codegen_fixture()
    }

    #[test]
    fn flat_profile_always_recurses() {
        let p = GemmProfile::from_samples(vec![(64, 4.0), (4096, 4.0)]);
        let s = strassen_like();
        assert!(p.step_pays(&s, 2048));
        assert_eq!(p.recommended_steps(&s, 2048, 3), 3);
    }

    #[test]
    fn steep_rampup_blocks_recursion() {
        // halving the size halves performance: a 2x drop > 14% speedup.
        let p = GemmProfile::from_samples(vec![(64, 1.0), (128, 2.0), (256, 4.0)]);
        let s = strassen_like();
        assert!(!p.step_pays(&s, 256));
        assert_eq!(p.recommended_steps(&s, 256, 3), 0);
    }

    #[test]
    fn classical_never_pays() {
        let p = GemmProfile::from_samples(vec![(64, 4.0), (4096, 4.0)]);
        let c = classical(2, 2, 2); // speedup 0%
        assert!(!p.step_pays(&c, 1024));
    }

    #[test]
    fn interpolation_is_monotone_between_samples() {
        let p = GemmProfile::from_samples(vec![(100, 1.0), (200, 3.0)]);
        assert_eq!(p.gflops_at(50), 1.0);
        assert_eq!(p.gflops_at(300), 3.0);
        let mid = p.gflops_at(150);
        assert!(mid > 1.0 && mid < 3.0);
    }

    #[test]
    fn measured_profile_has_positive_entries() {
        let p = GemmProfile::measure(&[32, 64]);
        assert!(p.gflops_at(32) > 0.0);
        assert!(p.gflops_at(64) > 0.0);
    }

    #[test]
    fn json_round_trip_preserves_samples() {
        let p = GemmProfile::from_samples(vec![(64, 1.25), (256, 4.5), (1024, 6.0)]);
        let text = p.to_json();
        let q = GemmProfile::from_json(&text).unwrap();
        for n in [32, 64, 160, 256, 700, 1024, 4096] {
            assert!(
                (p.gflops_at(n) - q.gflops_at(n)).abs() < 1e-12,
                "mismatch at {n}"
            );
        }
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(GemmProfile::from_json("not json").is_err());
        assert!(GemmProfile::from_json("{\"wrong\": []}").is_err());
        assert!(GemmProfile::from_json("{\"samples\": [{\"n\": 64}]}").is_err());
        // An empty sample list would plan as if the machine were flat.
        assert!(GemmProfile::from_json("{\"samples\": []}").is_err());
    }
}
