//! The recursion-cutoff rule of §3.4.
//!
//! The paper's principle: *take a recursive step only if the resulting
//! subproblems still land on the flat part of the gemm performance
//! curve* — if gemm performance drops by a larger ratio than the
//! algorithm's multiplication speedup per step (Table 2), recursion
//! cannot pay. This module measures a small gemm profile at runtime and
//! applies that test level by level.

use fmm_gemm::{classical_flops, gemm};
use fmm_matrix::Matrix;
use fmm_tensor::Decomposition;
use std::time::Instant;

/// A measured gemm performance profile: (problem size, GFLOPS) samples
/// for square problems, monotone in size on the ramp-up.
#[derive(Debug, Clone)]
pub struct GemmProfile {
    samples: Vec<(usize, f64)>,
}

impl GemmProfile {
    /// Measure the sequential gemm at the given square sizes.
    ///
    /// Each sample multiplies freshly-allocated random-free matrices
    /// (contents irrelevant for timing) once; callers wanting tighter
    /// estimates can pass repeated sizes and the profile keeps the max.
    pub fn measure(sizes: &[usize]) -> Self {
        let mut samples: Vec<(usize, f64)> = Vec::new();
        for &n in sizes {
            let a = Matrix::filled(n, n, 1.0);
            let b = Matrix::filled(n, n, 0.5);
            let mut c = Matrix::zeros(n, n);
            let t0 = Instant::now();
            gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            let gflops = classical_flops(n, n, n) / secs * 1e-9;
            match samples.iter_mut().find(|(sz, _)| *sz == n) {
                Some((_, g)) => *g = g.max(gflops),
                None => samples.push((n, gflops)),
            }
        }
        samples.sort_by_key(|&(n, _)| n);
        GemmProfile { samples }
    }

    /// Build a profile from precomputed samples (for tests and for
    /// replaying saved measurements).
    pub fn from_samples(mut samples: Vec<(usize, f64)>) -> Self {
        samples.sort_by_key(|&(n, _)| n);
        GemmProfile { samples }
    }

    /// Interpolated GFLOPS estimate at size `n` (linear between
    /// samples, clamped at the ends).
    pub fn gflops_at(&self, n: usize) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        if n <= self.samples[0].0 {
            return self.samples[0].1;
        }
        for w in self.samples.windows(2) {
            let ((n0, g0), (n1, g1)) = (w[0], w[1]);
            if n <= n1 {
                let t = (n - n0) as f64 / (n1 - n0).max(1) as f64;
                return g0 + t * (g1 - g0);
            }
        }
        self.samples.last().unwrap().1
    }

    /// §3.4 test: does one recursive step of `dec` pay at problem size
    /// `n` (square)? True when the gemm performance drop from `n` to the
    /// subproblem size is smaller than the algorithm's multiplication
    /// speedup per step.
    pub fn step_pays(&self, dec: &Decomposition, n: usize) -> bool {
        let (m, k, _) = dec.base();
        let sub = n / m.max(k).max(dec.n);
        if sub == 0 {
            return false;
        }
        let drop_ratio = self.gflops_at(n) / self.gflops_at(sub).max(1e-12);
        1.0 + dec.speedup_per_step() > drop_ratio
    }

    /// Recommended recursion depth for an `n × n × n` problem: keep
    /// stepping while the rule of §3.4 approves, up to `max_steps`.
    pub fn recommended_steps(&self, dec: &Decomposition, n: usize, max_steps: usize) -> usize {
        let mut steps = 0;
        let mut cur = n;
        let shrink = dec.m.max(dec.k).max(dec.n);
        while steps < max_steps && self.step_pays(dec, cur) {
            steps += 1;
            cur /= shrink;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_tensor::compose::classical;

    fn strassen_like() -> Decomposition {
        // only base dims and rank matter for the rule; classical ⟨2,2,2⟩
        // has speedup 0, so craft ratios with the real Strassen instead.
        crate::codegen_fixture()
    }

    #[test]
    fn flat_profile_always_recurses() {
        let p = GemmProfile::from_samples(vec![(64, 4.0), (4096, 4.0)]);
        let s = strassen_like();
        assert!(p.step_pays(&s, 2048));
        assert_eq!(p.recommended_steps(&s, 2048, 3), 3);
    }

    #[test]
    fn steep_rampup_blocks_recursion() {
        // halving the size halves performance: a 2x drop > 14% speedup.
        let p = GemmProfile::from_samples(vec![(64, 1.0), (128, 2.0), (256, 4.0)]);
        let s = strassen_like();
        assert!(!p.step_pays(&s, 256));
        assert_eq!(p.recommended_steps(&s, 256, 3), 0);
    }

    #[test]
    fn classical_never_pays() {
        let p = GemmProfile::from_samples(vec![(64, 4.0), (4096, 4.0)]);
        let c = classical(2, 2, 2); // speedup 0%
        assert!(!p.step_pays(&c, 1024));
    }

    #[test]
    fn interpolation_is_monotone_between_samples() {
        let p = GemmProfile::from_samples(vec![(100, 1.0), (200, 3.0)]);
        assert_eq!(p.gflops_at(50), 1.0);
        assert_eq!(p.gflops_at(300), 3.0);
        let mid = p.gflops_at(150);
        assert!(mid > 1.0 && mid < 3.0);
    }

    #[test]
    fn measured_profile_has_positive_entries() {
        let p = GemmProfile::measure(&[32, 64]);
        assert!(p.gflops_at(32) > 0.0);
        assert!(p.gflops_at(64) > 0.0);
    }
}
