//! Polynomials in the border-rank indeterminate ε over exact rationals.
//!
//! An APA (arbitrary-precision approximate) scheme is a decomposition
//! whose factor entries live in ℚ\[ε\]; it certifies a *border rank*
//! bound when the reconstruction equals `ε^d · T + O(ε^{d+1})` for the
//! target tensor `T`. Degrees stay tiny (entries are affine or
//! quadratic in ε, so triple products have degree ≤ 6), so a dense
//! `Vec<Rat>` coefficient vector is exact and cheap — no truncation is
//! ever needed below the degree bound the certifier reports.

use crate::rational::{Rat, RatError};
use std::fmt;

/// A polynomial `c0 + c1·ε + c2·ε² + …` with exact rational
/// coefficients. The coefficient vector carries no trailing zeros.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpsPoly {
    coeffs: Vec<Rat>,
}

impl EpsPoly {
    /// The zero polynomial.
    pub fn zero() -> EpsPoly {
        EpsPoly { coeffs: Vec::new() }
    }

    /// A constant polynomial.
    pub fn constant(c: Rat) -> EpsPoly {
        EpsPoly::from_coeffs(vec![c])
    }

    /// `c · ε^k`.
    pub fn monomial(c: Rat, k: usize) -> EpsPoly {
        let mut coeffs = vec![Rat::ZERO; k + 1];
        coeffs[k] = c;
        EpsPoly::from_coeffs(coeffs)
    }

    /// Build from an ascending coefficient vector (`coeffs[i]` is the
    /// ε^i coefficient); trailing zeros are trimmed.
    pub fn from_coeffs(mut coeffs: Vec<Rat>) -> EpsPoly {
        while coeffs.last().is_some_and(Rat::is_zero) {
            coeffs.pop();
        }
        EpsPoly { coeffs }
    }

    /// Coefficient of ε^k (zero beyond the stored degree).
    pub fn coeff(&self, k: usize) -> Rat {
        self.coeffs.get(k).copied().unwrap_or(Rat::ZERO)
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// True iff identically zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Order of the lowest nonzero term, or `None` if zero.
    pub fn valuation(&self) -> Option<usize> {
        self.coeffs.iter().position(|c| !c.is_zero())
    }

    /// Exact addition.
    pub fn add(&self, rhs: &EpsPoly) -> Result<EpsPoly, RatError> {
        let len = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(len);
        for k in 0..len {
            out.push(self.coeff(k).add(&rhs.coeff(k))?);
        }
        Ok(EpsPoly::from_coeffs(out))
    }

    /// Exact subtraction.
    pub fn sub(&self, rhs: &EpsPoly) -> Result<EpsPoly, RatError> {
        self.add(&rhs.neg())
    }

    /// Exact negation.
    pub fn neg(&self) -> EpsPoly {
        EpsPoly {
            coeffs: self.coeffs.iter().map(Rat::neg).collect(),
        }
    }

    /// Exact full multiplication (no truncation).
    pub fn mul(&self, rhs: &EpsPoly) -> Result<EpsPoly, RatError> {
        if self.is_zero() || rhs.is_zero() {
            return Ok(EpsPoly::zero());
        }
        let mut out = vec![Rat::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in rhs.coeffs.iter().enumerate() {
                out[i + j] = out[i + j].add(&a.mul(b)?)?;
            }
        }
        Ok(EpsPoly::from_coeffs(out))
    }

    /// Scale by a rational.
    pub fn scale(&self, s: &Rat) -> Result<EpsPoly, RatError> {
        let mut out = Vec::with_capacity(self.coeffs.len());
        for c in &self.coeffs {
            out.push(c.mul(s)?);
        }
        Ok(EpsPoly::from_coeffs(out))
    }

    /// Exact evaluation at a rational ε (Horner).
    pub fn eval(&self, eps: &Rat) -> Result<Rat, RatError> {
        let mut acc = Rat::ZERO;
        for c in self.coeffs.iter().rev() {
            acc = acc.mul(eps)?.add(c)?;
        }
        Ok(acc)
    }

    /// Divide by ε^k exactly; fails if any coefficient below ε^k is
    /// nonzero (the quotient would leave ℚ\[ε\]).
    pub fn div_eps_pow(&self, k: usize) -> Option<EpsPoly> {
        if self.coeffs.iter().take(k).any(|c| !c.is_zero()) {
            return None;
        }
        Some(EpsPoly::from_coeffs(
            self.coeffs.iter().skip(k).copied().collect(),
        ))
    }
}

impl fmt::Display for EpsPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match k {
                0 => write!(f, "{c}")?,
                1 => write!(f, "({c})ε")?,
                _ => write!(f, "({c})ε^{k}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coeffs: &[i64]) -> EpsPoly {
        EpsPoly::from_coeffs(coeffs.iter().map(|&c| Rat::int(c)).collect())
    }

    #[test]
    fn trim_and_degree() {
        assert!(p(&[0, 0]).is_zero());
        assert_eq!(p(&[1, 0, 2]).degree(), Some(2));
        assert_eq!(p(&[0, 3]).valuation(), Some(1));
        assert_eq!(EpsPoly::zero().valuation(), None);
    }

    #[test]
    fn ring_ops() {
        // (1 + ε)(1 − ε) = 1 − ε²
        let got = p(&[1, 1]).mul(&p(&[1, -1])).unwrap();
        assert_eq!(got, p(&[1, 0, -1]));
        assert_eq!(p(&[1, 2]).add(&p(&[3, -2, 5])).unwrap(), p(&[4, 0, 5]));
        assert_eq!(p(&[1, 2]).sub(&p(&[1, 2])).unwrap(), EpsPoly::zero());
    }

    #[test]
    fn eval_and_div() {
        let q = p(&[0, 0, 3, 1]); // 3ε² + ε³
        let half = Rat::new(1, 2).unwrap();
        assert_eq!(q.eval(&half).unwrap(), Rat::new(7, 8).unwrap());
        assert_eq!(q.div_eps_pow(2).unwrap(), p(&[3, 1]));
        assert!(q.div_eps_pow(3).is_none());
        assert_eq!(
            EpsPoly::monomial(Rat::ONE, 2).div_eps_pow(2).unwrap(),
            p(&[1])
        );
    }
}
