//! Border-rank certification in ℚ\[ε\].
//!
//! An APA scheme in Bini's sense is a decomposition whose factor
//! entries are polynomials in ε. It certifies `R_b(T) ≤ R` when the
//! exact reconstruction satisfies
//!
//! ```text
//! Σ_r u_r(ε) ∘ v_r(ε) ∘ w_r(ε)  =  ε^d · T  +  O(ε^{d+1})
//! ```
//!
//! for some degeneration order `d` — every power below `d` cancels
//! *identically*, and the ε^d coefficient is exactly `T`. This module
//! proves that statement over ℚ\[ε\] with no floating point anywhere,
//! and reports the explicit error-term degree, replacing "the float
//! residual looked small" with an actual border-rank certificate.

use crate::exact::CertifyError;
use crate::poly::EpsPoly;
use crate::rational::{Rat, RatError};
use fmm_matrix::Matrix;
use fmm_tensor::Decomposition;
use std::fmt;

/// A dense order-3 tensor with exact rational entries — the
/// certification target (`⟨m,k,n⟩`, a direct sum, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RatTensor {
    dims: [usize; 3],
    data: Vec<Rat>,
}

impl RatTensor {
    /// All-zero tensor.
    pub fn zeros(d0: usize, d1: usize, d2: usize) -> RatTensor {
        RatTensor {
            dims: [d0, d1, d2],
            data: vec![Rat::ZERO; d0 * d1 * d2],
        }
    }

    /// Dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    fn idx(&self, a: usize, b: usize, c: usize) -> usize {
        (a * self.dims[1] + b) * self.dims[2] + c
    }

    /// Entry accessor.
    pub fn get(&self, a: usize, b: usize, c: usize) -> Rat {
        self.data[self.idx(a, b, c)]
    }

    /// Entry mutator.
    pub fn set(&mut self, a: usize, b: usize, c: usize, v: Rat) {
        let i = self.idx(a, b, c);
        self.data[i] = v;
    }

    /// The exact matmul tensor `T_{⟨m,k,n⟩}` (same index convention as
    /// `fmm_tensor::matmul_tensor`: row-major vec(A), vec(B), vec(C)).
    pub fn matmul(m: usize, k: usize, n: usize) -> RatTensor {
        let mut t = RatTensor::zeros(m * k, k * n, m * n);
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    t.set(i * k + p, p * n + j, i * n + j, Rat::ONE);
                }
            }
        }
        t
    }
}

/// A rank-R decomposition over ℚ\[ε\]: `u`/`v`/`w` are `rows × R`
/// matrices of polynomials (same layout as [`Decomposition`], with
/// f64 entries replaced by [`EpsPoly`]).
#[derive(Clone, Debug)]
pub struct PolyDecomposition {
    /// `rows_u × R` A-side factor.
    pub u: Vec<Vec<EpsPoly>>,
    /// `rows_v × R` B-side factor.
    pub v: Vec<Vec<EpsPoly>>,
    /// `rows_w × R` output factor.
    pub w: Vec<Vec<EpsPoly>>,
}

/// Proof record for a border-rank bound. Only [`certify_border`]
/// constructs one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BorderCertificate {
    /// Target tensor dimensions.
    pub dims: [usize; 3],
    /// Certified border-rank bound (number of ε-products).
    pub rank: usize,
    /// Degeneration order `d`: reconstruction is `ε^d·T + O(ε^{d+1})`.
    pub degeneration_order: usize,
    /// Lowest power of ε carrying a nonzero error term, or `None` when
    /// the reconstruction is *exactly* `ε^d·T` (an exact algorithm).
    pub error_degree: Option<usize>,
    /// Highest ε power appearing anywhere in the reconstruction.
    pub max_degree: usize,
}

impl fmt::Display for BorderCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "border rank ≤ {} for {}×{}×{} target: reconstruction = ε^{}·T",
            self.rank, self.dims[0], self.dims[1], self.dims[2], self.degeneration_order
        )?;
        match self.error_degree {
            Some(e) => write!(f, " + O(ε^{e}) (max degree {})", self.max_degree),
            None => write!(f, " exactly"),
        }
    }
}

impl PolyDecomposition {
    /// Rank (number of products).
    pub fn rank(&self) -> usize {
        self.u.first().map_or(0, Vec::len)
    }

    fn shape_check(&self, target: &RatTensor) -> Result<(), CertifyError> {
        let [a, b, c] = target.dims();
        let r = self.rank();
        let ok = self.u.len() == a
            && self.v.len() == b
            && self.w.len() == c
            && self.u.iter().all(|row| row.len() == r)
            && self.v.iter().all(|row| row.len() == r)
            && self.w.iter().all(|row| row.len() == r);
        if ok {
            Ok(())
        } else {
            Err(CertifyError::BorderMismatch {
                power: 0,
                detail: format!(
                    "factor shapes ({}, {}, {}) rank {} do not match target {a}×{b}×{c}",
                    self.u.len(),
                    self.v.len(),
                    self.w.len(),
                    r
                ),
            })
        }
    }

    /// Exact reconstruction `Σ_r u_r ∘ v_r ∘ w_r` as a tensor of
    /// polynomials (flattened row-major over the target dims).
    fn reconstruct(&self, dims: [usize; 3]) -> Result<Vec<EpsPoly>, RatError> {
        let mut out = vec![EpsPoly::zero(); dims[0] * dims[1] * dims[2]];
        for r in 0..self.rank() {
            for (a, urow) in self.u.iter().enumerate() {
                if urow[r].is_zero() {
                    continue;
                }
                for (b, vrow) in self.v.iter().enumerate() {
                    if vrow[r].is_zero() {
                        continue;
                    }
                    let uv = urow[r].mul(&vrow[r])?;
                    for (c, wrow) in self.w.iter().enumerate() {
                        if wrow[r].is_zero() {
                            continue;
                        }
                        let term = uv.mul(&wrow[r])?;
                        let i = (a * dims[1] + b) * dims[2] + c;
                        out[i] = out[i].add(&term)?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Instantiate at a concrete rational `ε ≠ 0`: evaluate U and V,
    /// evaluate W and divide it by ε^d. For an order-`d` certificate
    /// against `⟨m,k,n⟩` this yields a float [`Decomposition`] whose
    /// Brent residual is O(ε) — the practical APA algorithm.
    pub fn instantiate(
        &self,
        m: usize,
        k: usize,
        n: usize,
        eps: Rat,
        degeneration_order: usize,
    ) -> Result<Decomposition, CertifyError> {
        if eps.is_zero() {
            return Err(CertifyError::Arithmetic(RatError::DivisionByZero));
        }
        let mut scale = Rat::ONE;
        for _ in 0..degeneration_order {
            scale = scale.mul(&eps)?;
        }
        let eval = |rows: &[Vec<EpsPoly>], div: bool| -> Result<Matrix, CertifyError> {
            let r = self.rank();
            let mut mat = Matrix::zeros(rows.len(), r);
            for (i, row) in rows.iter().enumerate() {
                for (c, p) in row.iter().enumerate() {
                    let mut val = p.eval(&eps)?;
                    if div {
                        val = val.div(&scale)?;
                    }
                    mat[(i, c)] = val.to_f64();
                }
            }
            Ok(mat)
        };
        let u = eval(&self.u, false)?;
        let v = eval(&self.v, false)?;
        let w = eval(&self.w, true)?;
        Ok(Decomposition::new(m, k, n, u, v, w))
    }
}

/// Prove `Σ_r u_r(ε)∘v_r(ε)∘w_r(ε) = ε^d·target + O(ε^{d+1})` exactly.
///
/// `expected_order`, when given, pins `d`: any nonzero term strictly
/// below it is reported as [`CertifyError::LowOrderContamination`].
/// When `None`, `d` is discovered as the valuation of the
/// reconstruction. Either way the ε^d coefficient tensor must equal
/// `target` entry-for-entry in ℚ.
pub fn certify_border(
    dec: &PolyDecomposition,
    target: &RatTensor,
    expected_order: Option<usize>,
) -> Result<BorderCertificate, CertifyError> {
    dec.shape_check(target)?;
    let dims = target.dims();
    let recon = dec.reconstruct(dims).map_err(CertifyError::Arithmetic)?;

    let valuation = recon.iter().filter_map(EpsPoly::valuation).min();
    let Some(valuation) = valuation else {
        return Err(CertifyError::BorderMismatch {
            power: expected_order.unwrap_or(0),
            detail: "reconstruction is identically zero".into(),
        });
    };
    let d = expected_order.unwrap_or(valuation);
    if valuation < d {
        let mag = recon
            .iter()
            .map(|p| p.coeff(valuation).abs())
            .max()
            .unwrap_or(Rat::ZERO);
        return Err(CertifyError::LowOrderContamination {
            power: valuation,
            magnitude: mag.to_string(),
        });
    }

    let mut error_degree = None;
    let mut max_degree = 0usize;
    for (i, poly) in recon.iter().enumerate() {
        let c = i % dims[2];
        let b = (i / dims[2]) % dims[1];
        let a = i / (dims[1] * dims[2]);
        let want = target.get(a, b, c);
        if poly.coeff(d) != want {
            return Err(CertifyError::BorderMismatch {
                power: d,
                detail: format!(
                    "entry ({a},{b},{c}): ε^{d} coefficient is {}, target is {want}",
                    poly.coeff(d)
                ),
            });
        }
        if let Some(deg) = poly.degree() {
            max_degree = max_degree.max(deg);
            for q in (d + 1)..=deg {
                if !poly.coeff(q).is_zero() {
                    error_degree = Some(error_degree.map_or(q, |e: usize| e.min(q)));
                    break;
                }
            }
        }
    }

    Ok(BorderCertificate {
        dims,
        rank: dec.rank(),
        degeneration_order: d,
        error_degree,
        max_degree,
    })
}

/// Lift an exact float decomposition into ℚ\[ε\] (constant polynomials).
/// Certifying it against `⟨m,k,n⟩` yields `d = 0` with no error term —
/// exact algorithms are the degenerate case of border ones.
pub fn lift_exact(dec: &Decomposition) -> Result<PolyDecomposition, CertifyError> {
    let lift = |mat: &Matrix| -> Result<Vec<Vec<EpsPoly>>, CertifyError> {
        (0..mat.rows())
            .map(|i| {
                (0..mat.cols())
                    .map(|c| Ok(EpsPoly::constant(Rat::from_f64(mat[(i, c)])?)))
                    .collect()
            })
            .collect()
    };
    Ok(PolyDecomposition {
        u: lift(&dec.u)?,
        v: lift(&dec.v)?,
        w: lift(&dec.w)?,
    })
}

/// Schönhage's τ-theorem tensor `⟨k,1,n⟩ ⊕ ⟨1,(k−1)(n−1),1⟩`: a k×n
/// outer product plus a disjoint (k−1)(n−1)-term inner product.
/// Variable order: x = [x_1..x_k, u_11..], y = [y_1..y_n, v_11..],
/// z = [z_11..z_kn row-major, w].
pub fn schonhage_tau_target(k: usize, n: usize) -> RatTensor {
    let m = (k - 1) * (n - 1);
    let mut t = RatTensor::zeros(k + m, n + m, k * n + 1);
    for i in 0..k {
        for j in 0..n {
            t.set(i, j, i * n + j, Rat::ONE);
        }
    }
    for s in 0..m {
        t.set(k + s, n + s, k * n, Rat::ONE);
    }
    t
}

/// Schönhage's border scheme proving
/// `R_b(⟨k,1,n⟩ ⊕ ⟨1,(k−1)(n−1),1⟩) ≤ kn + 1`, a genuine saving over
/// the classical `kn + (k−1)(n−1)` separate products whenever
/// `(k−1)(n−1) > 1`. Products: `p_ij = (x_i + ε·a_ij)(y_j + ε·b_ij)`
/// for all (i,j), plus the correction `p_0 = (Σx_i)(Σy_j)`; the
/// ε-perturbations are arranged so all columns/rows telescope:
/// `Σ_ij p_ij − p_0 = ε²·Σ_s u_s v_s + O(ε³)`.
pub fn schonhage_tau_scheme(k: usize, n: usize) -> PolyDecomposition {
    assert!(k >= 2 && n >= 2, "the τ construction needs k,n ≥ 2");
    let m = (k - 1) * (n - 1);
    let rank = k * n + 1;
    let zero_row = || vec![EpsPoly::zero(); rank];
    let mut u = vec![zero_row(); k + m];
    let mut v = vec![zero_row(); n + m];
    let mut w = vec![zero_row(); k * n + 1];
    let uidx = |i: usize, j: usize| k + i * (n - 1) + j; // u_ij, i<k−1, j<n−1
    let vidx = |i: usize, j: usize| n + i * (n - 1) + j;
    let one = EpsPoly::constant(Rat::ONE);
    let eps = |c: i64| EpsPoly::monomial(Rat::int(c), 1);

    for i in 0..k {
        for j in 0..n {
            let col = i * n + j;
            // A side: x_i + ε·a_ij with a_ij = u_ij (interior),
            // a_{k−1,j} = −Σ_{i<k−1} u_ij (last row), a_{i,n−1} = 0.
            u[i][col] = one.clone();
            if j < n - 1 {
                if i < k - 1 {
                    u[uidx(i, j)][col] = eps(1);
                } else {
                    for i2 in 0..k - 1 {
                        u[uidx(i2, j)][col] = eps(-1);
                    }
                }
            }
            // B side: y_j + ε·b_ij with b_ij = v_ij (interior),
            // b_{i,n−1} = −Σ_{j<n−1} v_ij (last column), b_{k−1,j} = 0.
            v[j][col] = one.clone();
            if i < k - 1 {
                if j < n - 1 {
                    v[vidx(i, j)][col] = eps(1);
                } else {
                    for j2 in 0..n - 1 {
                        v[vidx(i, j2)][col] = eps(-1);
                    }
                }
            }
            // Outer-product outputs surface at the degeneration order:
            // z_ij ← ε²·p_ij.
            w[i * n + j][col] = EpsPoly::monomial(Rat::ONE, 2);
            // Inner-product output: w ← Σ p_ij − p_0.
            w[k * n][col] = one.clone();
        }
    }
    // p_0 = (Σ_i x_i)(Σ_j y_j), subtracted from the w row.
    let col0 = k * n;
    for u_row in u.iter_mut().take(k) {
        u_row[col0] = one.clone();
    }
    for v_row in v.iter_mut().take(n) {
        v_row[col0] = one.clone();
    }
    w[k * n][col0] = EpsPoly::constant(Rat::int(-1));

    PolyDecomposition { u, v, w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::strassen;

    #[test]
    fn exact_strassen_lifts_to_an_order_zero_border_certificate() {
        let poly = lift_exact(&strassen()).unwrap();
        let cert = certify_border(&poly, &RatTensor::matmul(2, 2, 2), None).unwrap();
        assert_eq!(cert.degeneration_order, 0);
        assert_eq!(cert.error_degree, None);
        assert_eq!(cert.rank, 7);
        assert!(cert.to_string().ends_with("exactly"));
    }

    #[test]
    fn schonhage_tau_2_2_certifies_at_order_two() {
        let dec = schonhage_tau_scheme(2, 2);
        let target = schonhage_tau_target(2, 2);
        let cert = certify_border(&dec, &target, Some(2)).unwrap();
        assert_eq!(cert.rank, 5);
        assert_eq!(cert.degeneration_order, 2);
        assert_eq!(cert.error_degree, Some(3));
    }

    #[test]
    fn schonhage_tau_3_3_beats_the_classical_rank() {
        // ⟨3,1,3⟩⊕⟨1,4,1⟩: classical rank 9 + 4 = 13, border ≤ 10.
        let dec = schonhage_tau_scheme(3, 3);
        let target = schonhage_tau_target(3, 3);
        let cert = certify_border(&dec, &target, None).unwrap();
        assert_eq!(cert.rank, 10);
        assert_eq!(cert.degeneration_order, 2);
        assert_eq!(cert.error_degree, Some(3));
    }

    #[test]
    fn contaminated_scheme_is_rejected_below_the_declared_order() {
        let mut dec = schonhage_tau_scheme(2, 2);
        // Sneak a constant into an output row that should carry ε².
        dec.w[0][1] = EpsPoly::constant(Rat::ONE);
        let target = schonhage_tau_target(2, 2);
        match certify_border(&dec, &target, Some(2)) {
            Err(CertifyError::LowOrderContamination { power, .. }) => assert!(power < 2),
            other => panic!("expected contamination, got {other:?}"),
        }
    }

    #[test]
    fn wrong_coefficient_is_a_border_mismatch() {
        let mut dec = schonhage_tau_scheme(2, 2);
        // z_11 ← 2ε²·p_11: still order 2, but the ε² coefficient is 2·T
        // on that slice.
        dec.w[0][0] = EpsPoly::monomial(Rat::int(2), 2);
        let target = schonhage_tau_target(2, 2);
        assert!(matches!(
            certify_border(&dec, &target, Some(2)),
            Err(CertifyError::BorderMismatch { .. })
        ));
    }

    #[test]
    fn instantiation_residual_shrinks_linearly_with_eps() {
        // Certify first, then instantiate the exact-lift of Strassen at
        // any ε (d = 0): the float residual must be exactly zero.
        let poly = lift_exact(&strassen()).unwrap();
        let inst = poly
            .instantiate(2, 2, 2, Rat::new(1, 8).unwrap(), 0)
            .unwrap();
        assert_eq!(inst.residual(), 0.0);
    }

    #[test]
    fn zero_scheme_is_rejected() {
        let dec = PolyDecomposition {
            u: vec![vec![EpsPoly::zero(); 2]; 4],
            v: vec![vec![EpsPoly::zero(); 2]; 4],
            w: vec![vec![EpsPoly::zero(); 2]; 4],
        };
        let target = RatTensor::matmul(2, 2, 1);
        assert!(certify_border(&dec, &target, None).is_err());
    }
}
