//! # fmm-verify — exact certification for fast-multiplication schemes
//!
//! Static analysis for the scheme catalog: everything here proves
//! properties *identically* over ℚ (or ℚ\[ε\]) instead of eyeballing a
//! floating-point residual.
//!
//! The paper's framework (Benson & Ballard, PPoPP 2015) composes
//! `⟦U,V,W⟧` decompositions recursively; a single wrong coefficient in
//! a `.alg` file silently corrupts every product computed with it. The
//! ROADMAP's flip-graph search will mint *new* schemes mechanically,
//! which raises the bar from "spot-checked" to "certified":
//!
//! - [`certify_exact`] / [`Certify::certify`] — prove all
//!   `(mk)·(kn)·(mn)` Brent equations hold identically in ℚ. Factor
//!   entries are lifted from f64 *exactly* (every finite double is a
//!   dyadic rational); arithmetic is i128 and overflow-checked, so a
//!   certificate can never be produced by rounding or wrapping.
//! - [`certify_border`] — border-rank certification in ℚ\[ε\]: proves a
//!   polynomial scheme reconstructs `ε^d·T + O(ε^{d+1})` with an
//!   explicit degeneration order `d` and error-term degree.
//!   [`schonhage_tau_scheme`] ships a certified literature example, and
//!   [`lift_exact`] embeds exact schemes as the `d = 0` special case.
//! - [`check_apa_fit`] — principled acceptance for *numerical* APA
//!   instantiations (rank deficit, unique-rounding residual `< 1/2`,
//!   header/recomputation agreement), replacing the old `0.25`
//!   heuristic in the catalog loader.
//!
//! `fmm-algo` routes catalog loading through these checks, and the
//! `xtask` lint gate re-validates every `.alg` data file in CI.
//!
//! ```
//! use fmm_verify::Certify;
//! # use fmm_matrix::Matrix;
//! # use fmm_tensor::Decomposition;
//! # let identity = Decomposition::new(1, 1, 1,
//! #     Matrix::from_rows(&[&[1.0]]),
//! #     Matrix::from_rows(&[&[1.0]]),
//! #     Matrix::from_rows(&[&[1.0]]));
//! let certificate = identity.certify().expect("⟨1,1,1⟩ is exact");
//! assert_eq!(certificate.equations, 1);
//! ```

#![warn(missing_docs)]

pub mod apa;
pub mod border;
pub mod exact;
pub mod poly;
pub mod rational;

pub use apa::{check_apa_fit, ApaError, ApaReport, UNIQUE_ROUNDING_BOUND};
pub use border::{
    certify_border, lift_exact, schonhage_tau_scheme, schonhage_tau_target, BorderCertificate,
    PolyDecomposition, RatTensor,
};
pub use exact::{certify_exact, Certify, CertifyError, ExactCertificate};
pub use poly::EpsPoly;
pub use rational::{Rat, RatError};

/// Strassen's rank-7 scheme in this workspace's row-major convention —
/// shared by the unit tests of several modules.
#[cfg(test)]
pub(crate) mod test_fixtures {
    use fmm_matrix::Matrix;
    use fmm_tensor::Decomposition;

    pub fn strassen() -> Decomposition {
        let u = Matrix::from_rows(&[
            &[1., 0., 1., 0., 1., -1., 0.],
            &[0., 0., 0., 0., 1., 0., 1.],
            &[0., 1., 0., 0., 0., 1., 0.],
            &[1., 1., 0., 1., 0., 0., -1.],
        ]);
        let v = Matrix::from_rows(&[
            &[1., 1., 0., -1., 0., 1., 0.],
            &[0., 0., 1., 0., 0., 1., 0.],
            &[0., 0., 0., 1., 0., 0., 1.],
            &[1., 0., -1., 0., 1., 0., 1.],
        ]);
        let w = Matrix::from_rows(&[
            &[1., 0., 0., 1., -1., 0., 1.],
            &[0., 0., 1., 0., 1., 0., 0.],
            &[0., 1., 0., 1., 0., 0., 0.],
            &[1., -1., 1., 0., 0., 1., 0.],
        ]);
        Decomposition::new(2, 2, 2, u, v, w)
    }
}
