//! Exact rational arithmetic on `i128` numerator/denominator pairs.
//!
//! The certifier never wants "close enough": a Brent equation either
//! holds identically in ℚ or the scheme is wrong. Every operation is
//! overflow-checked and surfaces [`RatError::Overflow`] instead of
//! wrapping, so a certificate is trustworthy even on adversarial input.
//! There are deliberately no external big-integer dependencies; i128
//! headroom (~1.7e38) comfortably covers the dyadic coefficients fast
//! multiplication schemes use in practice.

use std::cmp::Ordering;
use std::fmt;

/// Errors from exact arithmetic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RatError {
    /// An intermediate value exceeded i128 range. The input is not
    /// certifiable with this fixed-width representation (it is *not*
    /// evidence the scheme is wrong).
    Overflow,
    /// A float input was NaN/∞ and has no rational value.
    NonFinite(u64),
    /// Division by an exact zero.
    DivisionByZero,
}

impl fmt::Display for RatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatError::Overflow => write!(f, "i128 rational overflow"),
            RatError::NonFinite(bits) => {
                write!(f, "non-finite float (bits {bits:#x}) has no rational value")
            }
            RatError::DivisionByZero => write!(f, "exact division by zero"),
        }
    }
}

/// An exact rational `num/den`, always normalized: `den > 0`,
/// `gcd(|num|, den) == 1`, and zero is `0/1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rat {
    /// The exact zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The exact one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Build `num/den`, normalizing sign and common factors.
    pub fn new(num: i128, den: i128) -> Result<Rat, RatError> {
        if den == 0 {
            return Err(RatError::DivisionByZero);
        }
        // i128::MIN has no positive negation; it can only show up here
        // from adversarial input, so reject it rather than widen.
        if num == i128::MIN || den == i128::MIN {
            return Err(RatError::Overflow);
        }
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let (mut n, d) = (num.abs(), den.abs());
        let g = gcd(n, d);
        n /= g;
        Ok(Rat {
            num: sign * n,
            den: d / g,
        })
    }

    /// An exact integer.
    pub fn int(n: i64) -> Rat {
        Rat {
            num: n as i128,
            den: 1,
        }
    }

    /// Exact conversion from a finite f64: every finite double is a
    /// dyadic rational `±mant·2^(exp)`. Fails with `Overflow` when the
    /// exponent pushes numerator or denominator past i128 (|exp| ≳ 74),
    /// and `NonFinite` for NaN/∞.
    pub fn from_f64(x: f64) -> Result<Rat, RatError> {
        if !x.is_finite() {
            return Err(RatError::NonFinite(x.to_bits()));
        }
        if x == 0.0 {
            return Ok(Rat::ZERO);
        }
        let bits = x.to_bits();
        let sign: i128 = if bits >> 63 == 1 { -1 } else { 1 };
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = (bits & ((1u64 << 52) - 1)) as i128;
        // value = sign · mant · 2^shift
        let (mant, shift): (i128, i64) = if biased == 0 {
            (frac, -1074) // subnormal
        } else {
            (frac | (1 << 52), biased - 1075)
        };
        if shift >= 0 {
            if shift >= 74 {
                return Err(RatError::Overflow);
            }
            let num = mant.checked_shl(shift as u32).ok_or(RatError::Overflow)?;
            Rat::new(sign * num, 1)
        } else {
            let down = (-shift) as u32;
            // Strip factors of two from the mantissa first so e.g.
            // 0.5 = (1<<52)·2^-53 normalizes without a huge denominator.
            let tz = mant.trailing_zeros().min(down);
            let mant = mant >> tz;
            let down = down - tz;
            if down >= 127 {
                return Err(RatError::Overflow);
            }
            Rat::new(sign * mant, 1i128 << down)
        }
    }

    /// Numerator (normalized; carries the sign).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (normalized; always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True iff exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff exactly an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Checked addition.
    pub fn add(&self, rhs: &Rat) -> Result<Rat, RatError> {
        let g = gcd(self.den, rhs.den);
        let (da, db) = (self.den / g, rhs.den / g);
        let lhs = self.num.checked_mul(db).ok_or(RatError::Overflow)?;
        let rhsn = rhs.num.checked_mul(da).ok_or(RatError::Overflow)?;
        let num = lhs.checked_add(rhsn).ok_or(RatError::Overflow)?;
        let den = da.checked_mul(rhs.den).ok_or(RatError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked subtraction.
    pub fn sub(&self, rhs: &Rat) -> Result<Rat, RatError> {
        self.add(&rhs.neg())
    }

    /// Checked multiplication.
    pub fn mul(&self, rhs: &Rat) -> Result<Rat, RatError> {
        // Cross-reduce before multiplying to keep intermediates small:
        // (a/b)·(c/d) with g1=gcd(a,d), g2=gcd(c,b).
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .ok_or(RatError::Overflow)?;
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .ok_or(RatError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked division.
    pub fn div(&self, rhs: &Rat) -> Result<Rat, RatError> {
        if rhs.is_zero() {
            return Err(RatError::DivisionByZero);
        }
        self.mul(
            &Rat {
                num: rhs.den,
                den: rhs.num,
            }
            .normalized_sign(),
        )
    }

    /// Exact negation (never overflows: num is never i128::MIN).
    pub fn neg(&self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn normalized_sign(self) -> Rat {
        if self.den < 0 {
            Rat {
                num: -self.num,
                den: -self.den,
            }
        } else {
            self
        }
    }

    /// Lossy conversion back to f64 (for reporting only — certification
    /// never rounds).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Compare via i256-free widening: num·den' vs num'·den can
        // overflow i128, so fall back to exact f64-free comparison by
        // subtracting — overflow here is practically unreachable for
        // comparison operands but keep a graceful total order anyway.
        match self.sub(other) {
            Ok(d) => d.num.cmp(&0),
            Err(_) => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Sum an iterator of rationals exactly.
pub fn rat_sum<'a>(iter: impl IntoIterator<Item = &'a Rat>) -> Result<Rat, RatError> {
    let mut acc = Rat::ZERO;
    for r in iter {
        acc = acc.add(r)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(Rat::new(-2, -4).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(Rat::new(2, -4).unwrap(), Rat::new(-1, 2).unwrap());
        assert_eq!(Rat::new(0, -7).unwrap(), Rat::ZERO);
        assert!(Rat::new(1, 0).is_err());
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Rat::new(1, 3).unwrap();
        let b = Rat::new(1, 6).unwrap();
        assert_eq!(a.add(&b).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(a.sub(&b).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(a.mul(&b).unwrap(), Rat::new(1, 18).unwrap());
        assert_eq!(a.div(&b).unwrap(), Rat::int(2));
        assert_eq!(a.neg().add(&a).unwrap(), Rat::ZERO);
    }

    #[test]
    fn from_f64_exact_dyadics() {
        for (x, n, d) in [
            (1.0, 1, 1),
            (-1.0, -1, 1),
            (0.5, 1, 2),
            (-0.25, -1, 4),
            (0.125, 1, 8),
            (3.0, 3, 1),
            (-8.0, -8, 1),
            (0.0, 0, 1),
        ] {
            let r = Rat::from_f64(x).unwrap();
            assert_eq!((r.numer(), r.denom()), (n, d), "for {x}");
        }
    }

    #[test]
    fn from_f64_round_trips_every_finite_double_bit_pattern_class() {
        for x in [1.0 / 3.0, 0.1, 1e17, -7.25e-9] {
            let r = Rat::from_f64(x).unwrap();
            assert_eq!(r.to_f64(), x, "for {x}");
        }
        assert!(Rat::from_f64(f64::NAN).is_err());
        assert!(Rat::from_f64(f64::INFINITY).is_err());
        // Exponents past i128 range (huge or subnormal) are a clean
        // Overflow, never a wrong value.
        assert!(matches!(Rat::from_f64(1e300), Err(RatError::Overflow)));
        assert!(matches!(
            Rat::from_f64(f64::MIN_POSITIVE),
            Err(RatError::Overflow)
        ));
        assert!(matches!(Rat::from_f64(5e-324), Err(RatError::Overflow)));
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        // i128::MAX/2 is already odd and coprime to 2, so no
        // cross-reduction can rescue these.
        let big = Rat::new(i128::MAX, 2).unwrap();
        assert_eq!(big.mul(&Rat::int(3)), Err(RatError::Overflow));
        assert_eq!(big.add(&big), Err(RatError::Overflow));
    }

    #[test]
    fn ordering_and_display() {
        let a = Rat::new(1, 3).unwrap();
        let b = Rat::new(1, 2).unwrap();
        assert!(a < b);
        assert_eq!(format!("{}", Rat::new(-3, 6).unwrap()), "-1/2");
        assert_eq!(format!("{}", Rat::int(4)), "4");
    }
}
