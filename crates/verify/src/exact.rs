//! Exact certification of the Brent equations over ℚ.
//!
//! A decomposition `⟦U,V,W⟧` is a correct `⟨m,k,n⟩` algorithm iff all
//! `m·k · k·n · m·n` Brent equations hold:
//!
//! ```text
//! Σ_r u_{(i,p),r} · v_{(p',j),r} · w_{(i',j'),r} = δ_{p p'} δ_{i i'} δ_{j j'}
//! ```
//!
//! The float `Decomposition::verify(tol)` checks this up to a
//! tolerance; [`certify_exact`] lifts every entry to an exact rational
//! ([`Rat`]) and proves each equation *identically*, so a passing
//! scheme is correct — not merely plausible — and a certificate can
//! accompany machine-generated schemes (e.g. future flip-graph output).

use crate::rational::{Rat, RatError};
use fmm_tensor::Decomposition;
use std::fmt;

/// Why certification failed.
#[derive(Clone, Debug, PartialEq)]
pub enum CertifyError {
    /// Arithmetic left the certifiable domain (i128 overflow or a
    /// non-finite float entry). Not a correctness verdict.
    Arithmetic(RatError),
    /// A Brent equation is violated: the (u_row, v_row, w_row)
    /// coordinate, the exact left-hand side, and the required value.
    BrentViolation {
        /// Row of U: `i·k + p`.
        u_row: usize,
        /// Row of V: `p'·n + j`.
        v_row: usize,
        /// Row of W: `i'·n + j'`.
        w_row: usize,
        /// Exact LHS `Σ_r u·v·w` as a display string (e.g. `"3/4"`).
        got: String,
        /// Required δ value, 0 or 1.
        want: i64,
    },
    /// A border-rank certificate was requested but the reconstruction
    /// has nonzero terms *below* the degeneration order.
    LowOrderContamination {
        /// The offending power of ε.
        power: usize,
        /// Max |coefficient| at that power, for the report.
        magnitude: String,
    },
    /// The ε-power that should carry the target tensor does not.
    BorderMismatch {
        /// The degeneration order that was checked.
        power: usize,
        /// Human-readable first discrepancy.
        detail: String,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Arithmetic(e) => write!(f, "certification arithmetic failed: {e}"),
            CertifyError::BrentViolation { u_row, v_row, w_row, got, want } => write!(
                f,
                "Brent equation ({u_row},{v_row},{w_row}) violated: Σ u·v·w = {got}, expected {want}"
            ),
            CertifyError::LowOrderContamination { power, magnitude } => write!(
                f,
                "border scheme has nonzero ε^{power} term (max |coeff| {magnitude}) below the degeneration order"
            ),
            CertifyError::BorderMismatch { power, detail } => {
                write!(f, "ε^{power} coefficient does not equal the target tensor: {detail}")
            }
        }
    }
}

impl From<RatError> for CertifyError {
    fn from(e: RatError) -> Self {
        CertifyError::Arithmetic(e)
    }
}

/// Proof record for an exact scheme. Construction only succeeds through
/// [`certify_exact`], so holding one means every Brent equation was
/// checked identically in ℚ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactCertificate {
    /// Certified base case.
    pub m: usize,
    /// Certified base case.
    pub k: usize,
    /// Certified base case.
    pub n: usize,
    /// Rank of the certified decomposition.
    pub rank: usize,
    /// Number of Brent equations proven (`(mk)·(kn)·(mn)`).
    pub equations: usize,
    /// Largest denominator among the factor entries — a proxy for how
    /// "simple" the scheme's coefficients are (§2.3 prefers dyadics).
    pub max_denominator: i128,
}

impl fmt::Display for ExactCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{},{},{}⟩ rank-{}: {} Brent equations hold identically in ℚ (max denominator {})",
            self.m, self.k, self.n, self.rank, self.equations, self.max_denominator
        )
    }
}

/// Lift a factor matrix to exact rationals, column-major by rank so the
/// inner certification loop walks contiguous columns.
fn lift(mat: &fmm_matrix::Matrix) -> Result<(Vec<Vec<Rat>>, i128), CertifyError> {
    let mut cols = Vec::with_capacity(mat.cols());
    let mut max_den = 1i128;
    for r in 0..mat.cols() {
        let mut col = Vec::with_capacity(mat.rows());
        for i in 0..mat.rows() {
            let q = Rat::from_f64(mat[(i, r)])?;
            max_den = max_den.max(q.denom());
            col.push(q);
        }
        cols.push(col);
    }
    Ok((cols, max_den))
}

/// Prove all Brent equations for `dec` identically in ℚ.
///
/// Every f64 entry is converted *exactly* (each finite double is a
/// dyadic rational), so there is no rounding anywhere in the check.
/// Returns the first violated equation, or an [`CertifyError::Arithmetic`]
/// if an i128 intermediate overflows (possible only for schemes with
/// enormous mantissas — not for catalog-style dyadic coefficients).
pub fn certify_exact(dec: &Decomposition) -> Result<ExactCertificate, CertifyError> {
    let (m, k, n) = dec.base();
    let rank = dec.rank();
    let (u, du) = lift(&dec.u)?;
    let (v, dv) = lift(&dec.v)?;
    let (w, dw) = lift(&dec.w)?;

    for i in 0..m {
        for p in 0..k {
            let u_row = i * k + p;
            for p2 in 0..k {
                for j in 0..n {
                    let v_row = p2 * n + j;
                    for i2 in 0..m {
                        for j2 in 0..n {
                            let w_row = i2 * n + j2;
                            let mut lhs = Rat::ZERO;
                            for r in 0..rank {
                                let term = u[r][u_row].mul(&v[r][v_row])?.mul(&w[r][w_row])?;
                                lhs = lhs.add(&term)?;
                            }
                            let want = i64::from(p == p2 && i == i2 && j == j2);
                            if lhs != Rat::int(want) {
                                return Err(CertifyError::BrentViolation {
                                    u_row,
                                    v_row,
                                    w_row,
                                    got: lhs.to_string(),
                                    want,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    Ok(ExactCertificate {
        m,
        k,
        n,
        rank,
        equations: (m * k) * (k * n) * (m * n),
        max_denominator: du.max(dv).max(dw),
    })
}

/// Method-syntax access to [`certify_exact`] (and the border checks) on
/// foreign types: `use fmm_verify::Certify; dec.certify()?;`.
pub trait Certify {
    /// Prove this scheme exact in ℚ; see [`certify_exact`].
    fn certify(&self) -> Result<ExactCertificate, CertifyError>;
}

impl Certify for Decomposition {
    fn certify(&self) -> Result<ExactCertificate, CertifyError> {
        certify_exact(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::strassen;

    #[test]
    fn strassen_certifies_exactly() {
        let cert = certify_exact(&strassen()).unwrap();
        assert_eq!((cert.m, cert.k, cert.n, cert.rank), (2, 2, 2, 7));
        assert_eq!(cert.equations, 64);
        assert_eq!(cert.max_denominator, 1);
        assert!(cert.to_string().contains("64 Brent equations"));
    }

    #[test]
    fn certify_trait_is_usable_on_decomposition() {
        strassen().certify().unwrap();
    }

    #[test]
    fn single_sign_flip_is_rejected_with_coordinates() {
        let mut s = strassen();
        s.w[(0, 6)] = -1.0; // C11 += -M7 instead of +M7
        match s.certify() {
            Err(CertifyError::BrentViolation { want, .. }) => assert!(want == 0 || want == 1),
            other => panic!("expected BrentViolation, got {other:?}"),
        }
    }

    #[test]
    fn tolerance_scale_noise_passes_float_verify_but_fails_certify() {
        let mut s = strassen();
        s.u[(0, 0)] += 1e-13;
        // The float path happily accepts this at its default tolerance…
        s.verify(1e-9).unwrap();
        // …the exact path does not.
        assert!(matches!(
            s.certify(),
            Err(CertifyError::BrentViolation { .. })
        ));
    }

    #[test]
    fn nan_entries_are_an_arithmetic_error_not_a_pass() {
        let mut s = strassen();
        s.v[(1, 1)] = f64::NAN;
        assert!(matches!(s.certify(), Err(CertifyError::Arithmetic(_))));
    }

    #[test]
    fn dyadic_rescaling_still_certifies() {
        // u ↦ u/2, w ↦ 2w leaves every Brent LHS unchanged.
        let mut s = strassen();
        for c in 0..7 {
            for row in 0..4 {
                s.u[(row, c)] *= 0.5;
                s.w[(row, c)] *= 2.0;
            }
        }
        let cert = s.certify().unwrap();
        assert_eq!(cert.max_denominator, 2);
    }
}
