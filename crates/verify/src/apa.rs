//! Acceptance checking for *numerical* APA instantiations.
//!
//! The catalog's `.alg` APA entries (`bini_322_10`, `schonhage_333_21`)
//! are floating-point instantiations of border schemes at a fixed small
//! ε, produced by numerical search — they carry no ε structure, so the
//! full ℚ\[ε\] proof of [`crate::border`] does not apply to them
//! directly. What *can* be machine-checked, and what this module
//! enforces, replaces the old `residual > 0.25` magic number:
//!
//! 1. **Rank deficit** — `R < m·k·n`, otherwise the scheme claims no
//!    border saving and classical multiplication dominates it.
//! 2. **Unique rounding** — the recomputed Brent residual must be
//!    `< 1/2`. The matmul tensor has 0/1 entries, so a residual below
//!    one half proves `T_{⟨m,k,n⟩}` is the *unique* nearest integer
//!    tensor to the reconstruction: the fit approximates this product
//!    and no other.
//! 3. **Declared = recomputed** — the residual recorded in the `.alg`
//!    header must agree with the recomputation to the header's printed
//!    precision, so a stale comment (or a silently edited data file)
//!    is an error, not a footnote.
//!
//! Border schemes that *do* carry polynomial coefficients (e.g.
//! [`crate::border::schonhage_tau_scheme`], future flip-graph output)
//! should be certified with [`crate::border::certify_border`] and
//! shipped with that certificate instead.

use fmm_tensor::Decomposition;
use std::fmt;

/// Maximum admissible Brent residual for a numerical APA fit: below
/// one half, the 0/1 matmul tensor is the unique nearest integer
/// tensor to the reconstruction.
pub const UNIQUE_ROUNDING_BOUND: f64 = 0.5;

/// Relative slack when matching a recomputed residual against the
/// header-declared value (headers print 4 significant digits).
pub const DECLARED_MATCH_RTOL: f64 = 1e-3;

/// Why an APA fit was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum ApaError {
    /// `R ≥ m·k·n`: no border saving is claimed, reject.
    NoRankDeficit {
        /// Rank of the fit.
        rank: usize,
        /// Classical multiplication count `m·k·n`.
        classical: usize,
    },
    /// Residual ≥ 1/2: the fit is not uniquely attributable to
    /// `⟨m,k,n⟩`.
    AmbiguousRounding {
        /// Recomputed residual.
        residual: f64,
    },
    /// Header comment disagrees with the recomputed residual.
    StaleDeclaredResidual {
        /// Residual stated in the `.alg` header.
        declared: f64,
        /// Residual recomputed from the coefficients.
        recomputed: f64,
    },
    /// A factor entry is NaN/∞.
    NonFinite,
}

impl fmt::Display for ApaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApaError::NoRankDeficit { rank, classical } => {
                write!(f, "APA fit has rank {rank} ≥ classical {classical}: no border saving")
            }
            ApaError::AmbiguousRounding { residual } => write!(
                f,
                "APA residual {residual:.3e} ≥ {UNIQUE_ROUNDING_BOUND}: nearest integer tensor is ambiguous"
            ),
            ApaError::StaleDeclaredResidual { declared, recomputed } => write!(
                f,
                "declared residual {declared:.3e} is stale: recomputation gives {recomputed:.3e}"
            ),
            ApaError::NonFinite => write!(f, "APA fit contains non-finite coefficients"),
        }
    }
}

/// Acceptance report for a numerical APA fit.
#[derive(Clone, Debug, PartialEq)]
pub struct ApaReport {
    /// Base case of the fit.
    pub base: (usize, usize, usize),
    /// Rank of the fit.
    pub rank: usize,
    /// Classical multiplication count.
    pub classical_rank: usize,
    /// Recomputed (deterministic) Brent residual.
    pub residual: f64,
}

/// Check a numerical APA fit against the declared header residual.
/// See the module docs for the three criteria.
pub fn check_apa_fit(dec: &Decomposition, declared: f64) -> Result<ApaReport, ApaError> {
    let finite = |m: &fmm_matrix::Matrix| m.as_slice().iter().all(|x| x.is_finite());
    if !(finite(&dec.u) && finite(&dec.v) && finite(&dec.w)) {
        return Err(ApaError::NonFinite);
    }
    let (rank, classical) = (dec.rank(), dec.classical_rank());
    if rank >= classical {
        return Err(ApaError::NoRankDeficit { rank, classical });
    }
    let residual = dec.residual();
    if residual.is_nan() || residual >= UNIQUE_ROUNDING_BOUND {
        return Err(ApaError::AmbiguousRounding { residual });
    }
    let tol = DECLARED_MATCH_RTOL * declared.abs().max(f64::MIN_POSITIVE);
    if (residual - declared).abs() > tol {
        return Err(ApaError::StaleDeclaredResidual {
            declared,
            recomputed: residual,
        });
    }
    Ok(ApaReport {
        base: dec.base(),
        rank,
        classical_rank: classical,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::strassen;
    use fmm_matrix::Matrix;

    fn fake_apa() -> (Decomposition, f64) {
        // Strassen with a small perturbation stands in for a numerical
        // border fit: rank 7 < 8, small nonzero residual.
        let mut s = strassen();
        s.u[(0, 0)] += 1e-3;
        let declared = s.residual();
        (s, declared)
    }

    #[test]
    fn honest_fit_passes() {
        let (dec, declared) = fake_apa();
        let report = check_apa_fit(&dec, declared).unwrap();
        assert_eq!(report.rank, 7);
        assert_eq!(report.classical_rank, 8);
        assert!(report.residual > 0.0 && report.residual < 0.5);
    }

    #[test]
    fn stale_header_is_rejected() {
        let (dec, declared) = fake_apa();
        let err = check_apa_fit(&dec, declared * 10.0).unwrap_err();
        assert!(matches!(err, ApaError::StaleDeclaredResidual { .. }));
        assert!(err.to_string().contains("stale"));
    }

    #[test]
    fn ambiguous_fit_is_rejected() {
        let mut s = strassen();
        s.u[(0, 0)] = 2.0; // residual jumps past 1/2
        let declared = s.residual();
        assert!(matches!(
            check_apa_fit(&s, declared),
            Err(ApaError::AmbiguousRounding { .. })
        ));
    }

    #[test]
    fn no_rank_deficit_is_rejected() {
        // A rank-8 classical-style decomposition claims no saving.
        let dec = Decomposition::new(
            2,
            2,
            2,
            Matrix::zeros(4, 8),
            Matrix::zeros(4, 8),
            Matrix::zeros(4, 8),
        );
        assert!(matches!(
            check_apa_fit(&dec, 0.0),
            Err(ApaError::NoRankDeficit {
                rank: 8,
                classical: 8
            })
        ));
    }

    #[test]
    fn non_finite_is_rejected() {
        let mut s = strassen();
        s.w[(0, 0)] = f64::INFINITY;
        assert_eq!(check_apa_fit(&s, 0.0), Err(ApaError::NonFinite));
    }
}
