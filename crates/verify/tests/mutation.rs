//! Mutation testing for the exact certifier: every single-site
//! corruption of a known-good scheme must be rejected.
//!
//! The certifier's value is that it cannot be fooled — a sign flip, a
//! perturbed coefficient, or a dropped rank-one term each violates some
//! Brent equation, and `certify()` must find it. (The catalog-wide
//! sweep over every shipped scheme lives in `crates/algo/tests`, which
//! can see the catalog; this suite drills the certifier itself.)

use fmm_matrix::Matrix;
use fmm_tensor::Decomposition;
use fmm_verify::{certify_exact, Certify, CertifyError};
use proptest::prelude::*;

fn strassen() -> Decomposition {
    let u = Matrix::from_rows(&[
        &[1., 0., 1., 0., 1., -1., 0.],
        &[0., 0., 0., 0., 1., 0., 1.],
        &[0., 1., 0., 0., 0., 1., 0.],
        &[1., 1., 0., 1., 0., 0., -1.],
    ]);
    let v = Matrix::from_rows(&[
        &[1., 1., 0., -1., 0., 1., 0.],
        &[0., 0., 1., 0., 0., 1., 0.],
        &[0., 0., 0., 1., 0., 0., 1.],
        &[1., 0., -1., 0., 1., 0., 1.],
    ]);
    let w = Matrix::from_rows(&[
        &[1., 0., 0., 1., -1., 0., 1.],
        &[0., 0., 1., 0., 1., 0., 0.],
        &[0., 1., 0., 1., 0., 0., 0.],
        &[1., -1., 1., 0., 0., 1., 0.],
    ]);
    Decomposition::new(2, 2, 2, u, v, w)
}

/// Apply a mutation to one factor picked by `which`.
fn factor_mut(dec: &mut Decomposition, which: usize) -> &mut Matrix {
    match which % 3 {
        0 => &mut dec.u,
        1 => &mut dec.v,
        _ => &mut dec.w,
    }
}

/// Drop rank-term column `r`: zero it in U (kills the whole product).
fn drop_column(dec: &mut Decomposition, r: usize) {
    for row in 0..dec.u.rows() {
        dec.u[(row, r)] = 0.0;
    }
}

#[test]
fn pristine_strassen_certifies() {
    strassen().certify().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sign_flip_is_rejected(which in 0usize..3, row in 0usize..4, col in 0usize..7) {
        let mut dec = strassen();
        let f = factor_mut(&mut dec, which);
        if f[(row, col)] == 0.0 {
            // Flipping a structural zero is a no-op; flip to −1 instead
            // so the mutant is always distinct from the original.
            f[(row, col)] = -1.0;
        } else {
            f[(row, col)] = -f[(row, col)];
        }
        prop_assert!(matches!(
            certify_exact(&dec),
            Err(CertifyError::BrentViolation { .. })
        ));
    }

    #[test]
    fn coefficient_perturbation_is_rejected(
        which in 0usize..3,
        row in 0usize..4,
        col in 0usize..7,
        delta in 0.0f64..1.0,
    ) {
        let mut dec = strassen();
        // Any exactly-representable nonzero offset must be caught —
        // including ones far below the float path's tolerance.
        let delta = (delta + 1e-3) * 2.0f64.powi(-20);
        factor_mut(&mut dec, which)[(row, col)] += delta;
        prop_assert!(matches!(
            certify_exact(&dec),
            Err(CertifyError::BrentViolation { .. })
        ));
    }

    #[test]
    fn dropped_rank_term_is_rejected(r in 0usize..7) {
        let mut dec = strassen();
        drop_column(&mut dec, r);
        prop_assert!(matches!(
            certify_exact(&dec),
            Err(CertifyError::BrentViolation { .. })
        ));
    }
}
