//! [`Gf2Matrix`]: a boolean matrix packed 64 entries per `u64`.
//!
//! Layout: row-major words, LSB-first within a word — bit `j` of row `i`
//! lives in word `i * stride + j / 64` at bit position `j % 64`, where
//! `stride = ceil(cols / 64)`. Padding bits past `cols` in the last word
//! of each row are **always zero**; every mutating method maintains that
//! invariant, which is what lets `PartialEq` on the raw words be logical
//! equality and lets row-wise XOR/OR kernels skip per-bit masking.

use crate::Gf2;
use fmm_matrix::DenseMatrix;
use rand::Rng;

/// Number of matrix entries packed into one machine word.
pub const WORD_BITS: usize = 64;

/// A dense matrix over GF(2), bit-packed 64 entries per `u64`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gf2Matrix {
    rows: usize,
    cols: usize,
    /// Words per row (`ceil(cols / 64)`).
    stride: usize,
    /// `rows * stride` words, row-major.
    data: Vec<u64>,
}

/// Mask selecting the valid bits of a row's final word.
#[inline]
pub(crate) fn tail_mask(cols: usize) -> u64 {
    match cols % WORD_BITS {
        0 => !0,
        r => (1u64 << r) - 1,
    }
}

impl Gf2Matrix {
    /// The all-zeros `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let stride = cols.div_ceil(WORD_BITS);
        Gf2Matrix {
            rows,
            cols,
            stride,
            data: vec![0; rows * stride],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Gf2Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Build from a generator on `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Gf2Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// I.i.d. fair-coin entries.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        Gf2Matrix::from_fn(rows, cols, |_, _| rng.gen_bool(0.5))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The packed words, row-major.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.data
    }

    /// Mutable packed words. Crate-internal: callers must preserve the
    /// zero-tail-bits invariant.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Read entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.rows && j < self.cols);
        (self.data[i * self.stride + j / WORD_BITS] >> (j % WORD_BITS)) & 1 == 1
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        debug_assert!(i < self.rows && j < self.cols);
        let w = &mut self.data[i * self.stride + j / WORD_BITS];
        let bit = 1u64 << (j % WORD_BITS);
        if v {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// The packed words of row `i`.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    #[inline]
    pub(crate) fn row_words_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Number of set entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self ^= rhs` (entrywise GF(2) addition — also subtraction).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn xor_assign(&mut self, rhs: &Gf2Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "xor_assign: shape mismatch"
        );
        for (d, s) in self.data.iter_mut().zip(&rhs.data) {
            *d ^= s;
        }
    }

    /// `self |= rhs` (entrywise boolean OR — the OR–AND semiring add).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn or_assign(&mut self, rhs: &Gf2Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "or_assign: shape mismatch"
        );
        for (d, s) in self.data.iter_mut().zip(&rhs.data) {
            *d |= s;
        }
    }

    /// Unpack into a one-element-per-entry [`DenseMatrix<Gf2>`].
    pub fn to_dense(&self) -> DenseMatrix<Gf2> {
        DenseMatrix::from_fn(self.rows, self.cols, |i, j| Gf2::new(self.get(i, j)))
    }

    /// Pack a [`DenseMatrix<Gf2>`].
    pub fn from_dense(m: &DenseMatrix<Gf2>) -> Self {
        Gf2Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)].bit())
    }

    /// Naive word-parallel GF(2) product `A·B` — the row-broadcast
    /// O(m·k·n/64) baseline: for every set `A[i,l]`, XOR row `l` of `B`
    /// into row `i` of `C`. Correct for all shapes; the performance
    /// comparison target for [`Gf2Matrix::mul_m4rm`].
    ///
    /// # Panics
    /// Panics when `self.cols != rhs.rows`.
    pub fn mul_naive(&self, rhs: &Gf2Matrix) -> Gf2Matrix {
        self.mul_broadcast(rhs, false)
    }

    /// Naive word-parallel boolean (OR–AND semiring) product.
    ///
    /// # Panics
    /// Panics when `self.cols != rhs.rows`.
    pub fn or_mul_naive(&self, rhs: &Gf2Matrix) -> Gf2Matrix {
        self.mul_broadcast(rhs, true)
    }

    fn mul_broadcast(&self, rhs: &Gf2Matrix, or_mode: bool) -> Gf2Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "mul: inner dimension mismatch ({}x{} · {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut c = Gf2Matrix::zeros(self.rows, rhs.cols);
        let nw = c.stride;
        for i in 0..self.rows {
            let arow = self.row_words(i);
            let crow = &mut c.data[i * nw..(i + 1) * nw];
            for (wi, &aw) in arow.iter().enumerate() {
                let mut bits = aw;
                while bits != 0 {
                    let l = wi * WORD_BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let brow = rhs.row_words(l);
                    if or_mode {
                        for (cd, &bs) in crow.iter_mut().zip(brow) {
                            *cd |= bs;
                        }
                    } else {
                        for (cd, &bs) in crow.iter_mut().zip(brow) {
                            *cd ^= bs;
                        }
                    }
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Bit-at-a-time reference product, the oracle for everything else.
    pub(crate) fn bitwise_mul(a: &Gf2Matrix, b: &Gf2Matrix, or_mode: bool) -> Gf2Matrix {
        Gf2Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            let mut acc = false;
            for l in 0..a.cols() {
                let term = a.get(i, l) && b.get(l, j);
                acc = if or_mode { acc || term } else { acc ^ term };
            }
            acc
        })
    }

    #[test]
    fn packing_round_trip_and_tail_invariant() {
        let mut rng = StdRng::seed_from_u64(1);
        for (r, c) in [(1, 1), (3, 64), (5, 65), (7, 130), (2, 63)] {
            let m = Gf2Matrix::random(r, c, &mut rng);
            let dense = m.to_dense();
            assert_eq!(Gf2Matrix::from_dense(&dense), m);
            // Tail bits beyond `cols` stay zero in every row.
            let mask = tail_mask(c);
            for i in 0..r {
                assert_eq!(m.row_words(i)[m.stride() - 1] & !mask, 0);
            }
        }
    }

    #[test]
    fn get_set_and_counts() {
        let mut m = Gf2Matrix::zeros(4, 100);
        assert_eq!(m.count_ones(), 0);
        m.set(2, 99, true);
        m.set(0, 0, true);
        m.set(3, 64, true);
        assert!(m.get(2, 99) && m.get(0, 0) && m.get(3, 64));
        assert!(!m.get(2, 98));
        assert_eq!(m.count_ones(), 3);
        m.set(2, 99, false);
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn xor_is_self_inverse_and_or_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Gf2Matrix::random(6, 150, &mut rng);
        let b = Gf2Matrix::random(6, 150, &mut rng);
        let mut x = a.clone();
        x.xor_assign(&b);
        x.xor_assign(&b);
        assert_eq!(x, a);
        let mut y = a.clone();
        y.or_assign(&b);
        let snapshot = y.clone();
        y.or_assign(&b);
        assert_eq!(y, snapshot);
    }

    #[test]
    fn naive_mul_matches_bitwise_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        for (m, k, n) in [(1, 1, 1), (4, 7, 9), (17, 65, 33), (10, 128, 70)] {
            let a = Gf2Matrix::random(m, k, &mut rng);
            let b = Gf2Matrix::random(k, n, &mut rng);
            assert_eq!(a.mul_naive(&b), bitwise_mul(&a, &b, false), "{m}x{k}x{n}");
            assert_eq!(
                a.or_mul_naive(&b),
                bitwise_mul(&a, &b, true),
                "or {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Gf2Matrix::random(20, 20, &mut rng);
        let id = Gf2Matrix::identity(20);
        assert_eq!(a.mul_naive(&id), a);
        assert_eq!(id.mul_naive(&a), a);
        assert_eq!(a.or_mul_naive(&id), a);
    }

    #[test]
    fn xor_vs_or_differ_on_even_fanin() {
        // Two paths from row 0 to col 0: parity cancels, OR keeps it.
        let a = Gf2Matrix::from_fn(1, 2, |_, _| true);
        let b = Gf2Matrix::from_fn(2, 1, |_, _| true);
        assert!(!a.mul_naive(&b).get(0, 0));
        assert!(a.or_mul_naive(&b).get(0, 0));
    }
}
