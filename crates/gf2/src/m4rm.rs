//! M4RM — the Method of Four Russians for matrix multiplication.
//!
//! The classical word-parallel product costs `m·k` row-XORs (one per set
//! bit of `A`). M4RM instead processes `A`'s columns in groups of `kb`
//! bits: for each group it precomputes all `2^kb` XOR-combinations of
//! the corresponding `kb` rows of `B` (a *combination table*), then each
//! row of `A` contributes one table lookup + one row-XOR per group —
//! `m·k/kb` row-ops plus `2^kb·k/kb` table-build row-ops, an asymptotic
//! `kb ≈ log₂ m` speedup over the broadcast baseline.
//!
//! Two table constructions share the code path:
//!
//! * **XOR mode** (GF(2)): tables are filled in Gray-code order — entry
//!   `g = idx ^ (idx >> 1)` differs from its predecessor in exactly one
//!   bit, so each entry is one row-XOR from the previous.
//! * **OR mode** (boolean OR–AND semiring, used by transitive closure):
//!   Gray stepping is impossible (OR cannot *remove* a bit), so entries
//!   build by clearing the lowest set bit: `table[idx] =
//!   table[idx & (idx−1)] | B.row(lsb(idx))` — still one row-op each.
//!
//! Several tables are built per pass ([`TABLES_PER_PASS`]) so each
//! sweep over `A`'s rows retires `TABLES_PER_PASS · kb` columns of `k`,
//! amortizing the traffic on `C`'s rows.
//!
//! The kernel is *accumulating* (`C ⊕= A·B` or `C |= A·B`) and works on
//! raw word slices with explicit strides, so the Strassen recursion in
//! [`crate::Gf2Plan`] can point it at word-aligned blocks of arena
//! buffers with zero copies. Scratch for the tables is caller-provided
//! for the same reason.

use crate::matrix::{Gf2Matrix, WORD_BITS};

/// Combination tables built per pass over `A`'s rows.
pub(crate) const TABLES_PER_PASS: usize = 4;

/// Upper bound on the group width `kb` (table size `2^kb` rows).
pub(crate) const MAX_KB: usize = 8;

/// Group width for an `m × k` multiply: `≈ log₂ m − 2`, clamped to
/// `[1, MAX_KB]` and to `k`. The `−2` biases toward smaller tables —
/// table build cost `2^kb` must stay well under `m` lookups per group.
pub(crate) fn choose_kb(m: usize, k: usize) -> usize {
    let log2m = (usize::BITS - m.max(1).leading_zeros()) as usize;
    log2m.saturating_sub(2).clamp(1, MAX_KB).min(k.max(1))
}

/// Scratch words needed by [`m4rm_acc`] for a `kb`-bit kernel writing
/// `nw`-word rows.
pub(crate) fn scratch_words(kb: usize, nw: usize) -> usize {
    TABLES_PER_PASS * (1usize << kb) * nw
}

/// Extract `nbits ≤ 64` bits of `row` starting at bit `start`
/// (LSB-first packing; may straddle one word boundary).
#[inline]
fn extract_bits(row: &[u64], start: usize, nbits: usize) -> usize {
    let w = start / WORD_BITS;
    let o = start % WORD_BITS;
    let mut v = row[w] >> o;
    if o + nbits > WORD_BITS {
        // Straddle: o ≥ 57 here (nbits ≤ 8), so 64 − o is a valid shift.
        v |= row[w + 1] << (WORD_BITS - o);
    }
    (v & ((1u64 << nbits) - 1)) as usize
}

/// Accumulating M4RM product over packed words.
///
/// Computes `C ⊕= A·B` (`or_mode = false`, GF(2)) or `C |= A·B`
/// (`or_mode = true`, boolean semiring), where `A` is `m` rows × `k`
/// bits at `a_stride` words/row, `B` is `k` rows × `nw` words at
/// `b_stride`, and `C` is `m` rows × `nw` words at `c_stride`. Rows of
/// `B` and `C` must be exactly `nw` valid words (callers keep padding
/// bits zero). `scratch` must hold at least
/// [`scratch_words`]`(kb, nw)` words; its contents on entry are
/// irrelevant.
#[allow(clippy::too_many_arguments)]
pub(crate) fn m4rm_acc(
    c: &mut [u64],
    c_stride: usize,
    a: &[u64],
    a_stride: usize,
    b: &[u64],
    b_stride: usize,
    m: usize,
    k: usize,
    nw: usize,
    kb: usize,
    scratch: &mut [u64],
    or_mode: bool,
) {
    if m == 0 || k == 0 || nw == 0 {
        return;
    }
    debug_assert!((1..=MAX_KB).contains(&kb));
    debug_assert!(scratch.len() >= scratch_words(kb, nw));
    let tbl_rows = 1usize << kb;
    let tbl_words = tbl_rows * nw;

    let mut k0 = 0;
    while k0 < k {
        // This pass covers bits k0 .. k0 + Σ bits_t of the k dimension,
        // one table per kb-bit group (the last group may be narrower).
        let mut widths = [0usize; TABLES_PER_PASS];
        let mut ntab = 0;
        let mut covered = 0;
        while ntab < TABLES_PER_PASS && k0 + covered < k {
            widths[ntab] = kb.min(k - k0 - covered);
            covered += widths[ntab];
            ntab += 1;
        }

        // Build the tables for this pass.
        let mut s = k0;
        for (t, &bits) in widths.iter().enumerate().take(ntab) {
            let tbl = &mut scratch[t * tbl_words..(t + 1) * tbl_words];
            tbl[..nw].fill(0);
            for idx in 1..(1usize << bits) {
                let low = idx.trailing_zeros() as usize;
                let brow = &b[(s + low) * b_stride..(s + low) * b_stride + nw];
                if or_mode {
                    // Clear-lowest-bit recurrence: idx & (idx − 1) is
                    // already filled (it is smaller than idx).
                    let prev = idx & (idx - 1);
                    for w in 0..nw {
                        tbl[idx * nw + w] = tbl[prev * nw + w] | brow[w];
                    }
                } else {
                    // Gray-code walk: entry g(idx) toggles exactly bit
                    // `low` relative to g(idx − 1).
                    let g = idx ^ (idx >> 1);
                    let prev = (idx - 1) ^ ((idx - 1) >> 1);
                    for w in 0..nw {
                        tbl[g * nw + w] = tbl[prev * nw + w] ^ brow[w];
                    }
                }
            }
            s += bits;
        }

        // Sweep A's rows once, retiring all `covered` columns.
        for i in 0..m {
            let arow = &a[i * a_stride..i * a_stride + a_stride];
            let crow = &mut c[i * c_stride..i * c_stride + nw];
            let mut s = k0;
            for (t, &bits) in widths.iter().enumerate().take(ntab) {
                let idx = extract_bits(arow, s, bits);
                if idx != 0 {
                    let trow = &scratch[t * tbl_words + idx * nw..t * tbl_words + (idx + 1) * nw];
                    if or_mode {
                        for (cd, &tv) in crow.iter_mut().zip(trow) {
                            *cd |= tv;
                        }
                    } else {
                        for (cd, &tv) in crow.iter_mut().zip(trow) {
                            *cd ^= tv;
                        }
                    }
                }
                s += bits;
            }
        }

        k0 += covered;
    }
}

impl Gf2Matrix {
    /// GF(2) product `A·B` via the M4RM kernel (fresh scratch; the
    /// zero-alloc path is [`crate::Gf2Plan::execute`]).
    ///
    /// # Panics
    /// Panics when `self.cols() != rhs.rows()`.
    pub fn mul_m4rm(&self, rhs: &Gf2Matrix) -> Gf2Matrix {
        self.m4rm_convenience(rhs, false)
    }

    /// Boolean OR–AND semiring product `A·B` via M4RM — the transitive-
    /// closure kernel (XOR would cancel even path counts).
    ///
    /// # Panics
    /// Panics when `self.cols() != rhs.rows()`.
    pub fn or_mul(&self, rhs: &Gf2Matrix) -> Gf2Matrix {
        self.m4rm_convenience(rhs, true)
    }

    fn m4rm_convenience(&self, rhs: &Gf2Matrix, or_mode: bool) -> Gf2Matrix {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "mul: inner dimension mismatch ({}x{} · {}x{})",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let mut c = Gf2Matrix::zeros(self.rows(), rhs.cols());
        let kb = choose_kb(self.rows(), self.cols());
        let nw = c.stride();
        let mut scratch = vec![0u64; scratch_words(kb, nw)];
        let (m, k) = (self.rows(), self.cols());
        let (a_stride, b_stride, c_stride) = (self.stride(), rhs.stride(), c.stride());
        m4rm_acc(
            c.words_mut(),
            c_stride,
            self.words(),
            a_stride,
            rhs.words(),
            b_stride,
            m,
            k,
            nw,
            kb,
            &mut scratch,
            or_mode,
        );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kb_heuristic_bounds() {
        assert_eq!(choose_kb(1, 1), 1);
        assert_eq!(choose_kb(0, 0), 1);
        assert!(choose_kb(64, 64) >= 3);
        assert_eq!(choose_kb(1 << 20, 1 << 20), MAX_KB);
        // Never wider than k.
        assert_eq!(choose_kb(1 << 20, 3), 3);
    }

    #[test]
    fn extract_bits_straddles_words() {
        let row = [0xF000_0000_0000_0000u64, 0b1011];
        // Bits 60..68 = high nibble of word 0 (all ones) then 0b1011.
        assert_eq!(extract_bits(&row, 60, 8), 0b1011_1111);
        assert_eq!(extract_bits(&row, 0, 4), 0);
        assert_eq!(extract_bits(&row, 64, 4), 0b1011);
    }

    #[test]
    fn m4rm_matches_naive_across_shapes_and_kb() {
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [
            (1, 1, 1),
            (5, 9, 3),
            (33, 65, 129),
            (40, 200, 70),
            (64, 64, 64),
        ] {
            let a = Gf2Matrix::random(m, k, &mut rng);
            let b = Gf2Matrix::random(k, n, &mut rng);
            assert_eq!(a.mul_m4rm(&b), a.mul_naive(&b), "xor {m}x{k}x{n}");
            assert_eq!(a.or_mul(&b), a.or_mul_naive(&b), "or {m}x{k}x{n}");
        }
    }

    #[test]
    fn m4rm_every_kb_width() {
        // Force each group width 1..=8 through the raw kernel.
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (13, 47, 90);
        let a = Gf2Matrix::random(m, k, &mut rng);
        let b = Gf2Matrix::random(k, n, &mut rng);
        let want = a.mul_naive(&b);
        let or_want = a.or_mul_naive(&b);
        for kb in 1..=MAX_KB {
            for &or_mode in &[false, true] {
                let mut c = Gf2Matrix::zeros(m, n);
                let mut scratch = vec![0u64; scratch_words(kb, c.stride())];
                let (cs, nw) = (c.stride(), c.stride());
                m4rm_acc(
                    c.words_mut(),
                    cs,
                    a.words(),
                    a.stride(),
                    b.words(),
                    b.stride(),
                    m,
                    k,
                    nw,
                    kb,
                    &mut scratch,
                    or_mode,
                );
                let want = if or_mode { &or_want } else { &want };
                assert_eq!(&c, want, "kb={kb} or={or_mode}");
            }
        }
    }

    #[test]
    fn accumulation_contract() {
        // C starts nonzero: XOR mode must fold into it, not overwrite.
        let mut rng = StdRng::seed_from_u64(9);
        let (m, k, n) = (10, 30, 20);
        let a = Gf2Matrix::random(m, k, &mut rng);
        let b = Gf2Matrix::random(k, n, &mut rng);
        let mut c = Gf2Matrix::random(m, n, &mut rng);
        let mut want = c.clone();
        want.xor_assign(&a.mul_naive(&b));
        let kb = 3;
        let mut scratch = vec![0u64; scratch_words(kb, c.stride())];
        let (cs, nw) = (c.stride(), c.stride());
        m4rm_acc(
            c.words_mut(),
            cs,
            a.words(),
            a.stride(),
            b.words(),
            b.stride(),
            m,
            k,
            nw,
            kb,
            &mut scratch,
            false,
        );
        assert_eq!(c, want);
    }
}
