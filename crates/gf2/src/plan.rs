//! Strassen recursion over the packed M4RM kernel: [`Gf2Planner`] →
//! [`Gf2Plan`] → [`Gf2Plan::execute`] against a [`Gf2Workspace`].
//!
//! This mirrors the float stack's plan/execute discipline on the packed
//! representation (bit-packing cannot flow through `DenseMatrix<T>` —
//! 64 entries share a word), while **reusing** the existing machinery
//! rather than duplicating it:
//!
//! * the `.alg` catalog supplies the schemes, lifted mod 2 per rank
//!   column (odd → include the block, even → drop it, fractional →
//!   [`PlanError::UnrepresentableCoefficient`] — the same rule as
//!   [`Gf2::from_coeff`], applied through it);
//! * depth selection reuses [`fmm_core::GemmProfile`]'s §3.4 cutoff
//!   rule via [`Gf2Planner::profile`] (feed it M4RM word-op rates from
//!   [`measure_m4rm_profile`]), with a fixed bit-size cutoff fallback;
//! * recursive products fan out over the `fmm-runtime` work-stealing
//!   pool (`scope` + per-rank tasks, like the executor's BFS scheme);
//! * every temporary is carved from a [`Gf2Workspace`] arena whose
//!   exact word footprint is computed at plan time, so steady-state
//!   multiplies are zero-alloc;
//! * leaves and block ops emit `fmm-trace` spans (`Additions`,
//!   `BaseGemm`, `Combine` — the same kinds the float executor uses, so
//!   `timeshare`/`trace-check` tooling applies unchanged) and per
//!   shape-class latency histograms ([`latency_histograms`]).
//!
//! Padding: operands are copied once into arena buffers rounded up so
//! that every recursive split is word-aligned (`k` and `n` to
//! `64·Π(level k/n)`, `m` to `Π(level m)`); all recursion below that
//! runs on word-aligned views with zero copies, and depth-0 plans skip
//! the copy entirely.

use crate::m4rm::{choose_kb, m4rm_acc, scratch_words};
use crate::matrix::{tail_mask, Gf2Matrix, WORD_BITS};
use crate::Gf2;
use fmm_core::{GemmProfile, PlanError};
use fmm_gemm::classical_flops;
use fmm_matrix::Scalar;
use fmm_tensor::Decomposition;
use fmm_trace::{now_if, span_end, HistogramRow, HistogramSet, SpanKind};
use std::sync::OnceLock;
use std::time::Instant;

/// Fallback recursion cutoff (bits): without a measured profile, take a
/// Strassen step only while the *smallest* problem dimension stays at
/// or above this after the split. Below ~1k bits the O(n²) block XORs
/// rival the saved eighth of the M4RM word-ops.
pub const GF2_CUTOFF_BITS: usize = 1024;

/// One recursion level of a scheme, lifted mod 2: per rank column `r`,
/// the block indices whose coefficient is odd. `S_r` is the XOR of the
/// listed A blocks, `T_r` of the listed B blocks, and `M_r` feeds the
/// listed C blocks — coefficients vanish entirely, which is what makes
/// GF(2) execution pure word ops.
#[derive(Debug, Clone)]
struct Gf2Level {
    m: usize,
    k: usize,
    n: usize,
    rank: usize,
    u: Vec<Vec<usize>>,
    v: Vec<Vec<usize>>,
    w: Vec<Vec<usize>>,
}

impl Gf2Level {
    /// Lift a decomposition mod 2. `Err` carries the first coefficient
    /// [`Gf2::from_coeff`] rejects (fractional or non-finite).
    fn lift(dec: &Decomposition) -> Result<Self, f64> {
        let lift_factor = |mat: &fmm_matrix::Matrix| -> Result<Vec<Vec<usize>>, f64> {
            (0..dec.rank())
                .map(|r| {
                    let mut rows = Vec::new();
                    for row in 0..mat.rows() {
                        let c = mat[(row, r)];
                        match Gf2::from_coeff(c) {
                            None => return Err(c),
                            Some(g) if g == Gf2::ONE => rows.push(row),
                            Some(_) => {}
                        }
                    }
                    Ok(rows)
                })
                .collect()
        };
        Ok(Gf2Level {
            m: dec.m,
            k: dec.k,
            n: dec.n,
            rank: dec.rank(),
            u: lift_factor(&dec.u)?,
            v: lift_factor(&dec.v)?,
            w: lift_factor(&dec.w)?,
        })
    }
}

/// Builder for [`Gf2Plan`] — the packed-representation sibling of
/// [`fmm_core::Planner`].
pub struct Gf2Planner {
    shape: Option<(usize, usize, usize)>,
    algorithm: Option<Decomposition>,
    steps: Option<usize>,
    max_steps: usize,
    profile: Option<GemmProfile>,
}

impl Default for Gf2Planner {
    fn default() -> Self {
        Self::new()
    }
}

impl Gf2Planner {
    /// A planner with no shape; [`Gf2Planner::shape`] is mandatory.
    pub fn new() -> Self {
        Gf2Planner {
            shape: None,
            algorithm: None,
            steps: None,
            max_steps: 3,
            profile: None,
        }
    }

    /// Problem shape in **bits**: `C (m×n) = A (m×k) · B (k×n)`.
    pub fn shape(mut self, m: usize, k: usize, n: usize) -> Self {
        self.shape = Some((m, k, n));
        self
    }

    /// The scheme to recurse with (default: `fmm_algo::strassen()`).
    /// Must lift mod 2 — APA schemes with fractional coefficients fail
    /// at [`Gf2Planner::plan`] time with a named-scheme error.
    pub fn algorithm(mut self, dec: &Decomposition) -> Self {
        self.algorithm = Some(dec.clone());
        self
    }

    /// Force an exact recursion depth (0 = plain M4RM, no recursion).
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Depth ceiling for automatic selection (default 3).
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Pick the depth with the §3.4 cutoff rule against a measured
    /// M4RM rate profile (see [`measure_m4rm_profile`]) instead of the
    /// fixed [`GF2_CUTOFF_BITS`] heuristic.
    pub fn profile(mut self, profile: GemmProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Build the immutable plan: lift the scheme mod 2, choose the
    /// depth, and precompute padded dims and the exact arena footprint.
    pub fn plan(self) -> Result<Gf2Plan, PlanError> {
        let (m, k, n) = self.shape.ok_or(PlanError::MissingShape)?;
        let dec = self.algorithm.unwrap_or_else(fmm_algo::strassen);
        let scheme = format!("<{},{},{}> rank {}", dec.m, dec.k, dec.n, dec.rank());
        let level =
            Gf2Level::lift(&dec).map_err(|value| PlanError::UnrepresentableCoefficient {
                value,
                scheme: scheme.clone(),
                dtype: Gf2::NAME,
            })?;

        let min_dim = m.min(k).min(n);
        let shrink = dec.m.max(dec.k).max(dec.n).max(1);
        let depth = match (self.steps, &self.profile) {
            (Some(s), _) => s,
            (None, Some(p)) => p.recommended_steps(&dec, min_dim, self.max_steps),
            (None, None) => {
                let mut steps = 0;
                let mut cur = min_dim;
                while steps < self.max_steps && cur / shrink >= GF2_CUTOFF_BITS {
                    cur /= shrink;
                    steps += 1;
                }
                steps
            }
        };

        let levels = vec![level; depth];
        // Padded dims: every split word-aligned in k and n, exact in m.
        let (mut mm, mut kk, mut nn) = (1usize, WORD_BITS, WORD_BITS);
        for lv in &levels {
            mm *= lv.m;
            kk *= lv.k;
            nn *= lv.n;
        }
        let round_up = |x: usize, q: usize| x.div_ceil(q.max(1)) * q.max(1);
        let (pm, pk, pn) = if depth == 0 {
            (m, k, n)
        } else {
            (round_up(m, mm), round_up(k, kk), round_up(n, nn))
        };

        // Parallel fan-out depth from the pool width at plan time: one
        // level of rank-way tasks saturates up to rank workers, two
        // levels up to rank².
        let width = fmm_runtime::current_num_threads();
        let rank = levels.first().map_or(1, |l| l.rank);
        let par_levels = if width <= 1 {
            0
        } else if width <= rank {
            1.min(depth)
        } else {
            2.min(depth)
        };

        let mut workspace_words = rec_words(&levels, 0, par_levels, pm, pk, pn);
        if depth > 0 {
            workspace_words += pm * (pk / WORD_BITS) // padded A
                + pk * (pn / WORD_BITS) // padded B
                + pm * (pn / WORD_BITS); // padded C
        }

        Ok(Gf2Plan {
            m,
            k,
            n,
            pm,
            pk,
            pn,
            levels,
            par_levels,
            workspace_words,
            scheme,
        })
    }
}

/// An immutable GF(2) multiply plan: lifted levels, padded geometry,
/// parallel fan-out depth, and the exact arena footprint.
#[derive(Debug)]
pub struct Gf2Plan {
    m: usize,
    k: usize,
    n: usize,
    pm: usize,
    pk: usize,
    pn: usize,
    levels: Vec<Gf2Level>,
    par_levels: usize,
    workspace_words: usize,
    scheme: String,
}

impl Gf2Plan {
    /// Recursion depth (0 = plain M4RM).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Exact arena footprint in words.
    pub fn workspace_words(&self) -> usize {
        self.workspace_words
    }

    /// Levels executed as rank-way parallel fan-outs (the rest run
    /// sequentially inside their task).
    pub fn parallel_levels(&self) -> usize {
        self.par_levels
    }

    /// The scheme label, e.g. `"<2,2,2> rank 7"`.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// `C = A·B` into a fresh matrix.
    ///
    /// # Panics
    /// Panics when the operand shapes disagree with the planned shape.
    pub fn execute(&self, a: &Gf2Matrix, b: &Gf2Matrix, ws: &mut Gf2Workspace) -> Gf2Matrix {
        let mut c = Gf2Matrix::zeros(self.m, self.n);
        self.execute_into(a, b, &mut c, ws);
        c
    }

    /// `C = A·B` into a caller-provided matrix (contents overwritten).
    ///
    /// # Panics
    /// Panics when the operand shapes disagree with the planned shape.
    pub fn execute_into(
        &self,
        a: &Gf2Matrix,
        b: &Gf2Matrix,
        c: &mut Gf2Matrix,
        ws: &mut Gf2Workspace,
    ) {
        assert_eq!(
            (a.rows(), a.cols()),
            (self.m, self.k),
            "A shape disagrees with plan"
        );
        assert_eq!(
            (b.rows(), b.cols()),
            (self.k, self.n),
            "B shape disagrees with plan"
        );
        assert_eq!(
            (c.rows(), c.cols()),
            (self.m, self.n),
            "C shape disagrees with plan"
        );
        let t_req = fmm_trace::now_ns();
        let tracing = fmm_trace::enabled();
        let buf = ws.checkout(self.workspace_words);

        if self.m == 0 || self.n == 0 {
            return;
        }
        if self.depth() == 0 || self.k == 0 {
            // Direct M4RM on the operands; no padding, no copies.
            c.words_mut().fill(0);
            let (m, k) = (self.m, self.k);
            let (asw, bsw, csw) = (a.stride(), b.stride(), c.stride());
            let nw = c.stride();
            if k > 0 {
                let t0 = now_if(tracing);
                let kb = choose_kb(m, k);
                m4rm_acc(
                    c.words_mut(),
                    csw,
                    a.words(),
                    asw,
                    b.words(),
                    bsw,
                    m,
                    k,
                    nw,
                    kb,
                    &mut buf[..scratch_words(kb, nw)],
                    false,
                );
                span_end(SpanKind::BaseGemm, t0, (m * k * nw) as u64);
            }
        } else {
            let (pkw, pnw) = (self.pk / WORD_BITS, self.pn / WORD_BITS);
            let (a_words, b_words, c_words) = (self.pm * pkw, self.pk * pnw, self.pm * pnw);
            let (abuf, rest) = buf.split_at_mut(a_words);
            let (bbuf, rest) = rest.split_at_mut(b_words);
            let (cbuf, arena) = rest.split_at_mut(c_words);
            copy_in(abuf, pkw, a);
            copy_in(bbuf, pnw, b);
            cbuf.fill(0);
            rec(
                &self.levels,
                0,
                self.par_levels,
                self.pm,
                self.pk,
                self.pn,
                abuf,
                pkw,
                bbuf,
                pnw,
                cbuf,
                pnw,
                arena,
                tracing,
            );
            copy_out(c, cbuf, pnw);
        }

        hists().record(
            &format!(
                "{}/{}",
                fmm_core::shape_class(self.m, self.k, self.n),
                Gf2::NAME
            ),
            fmm_trace::now_ns().saturating_sub(t_req),
        );
    }
}

/// Reusable word arena for [`Gf2Plan::execute`]: grows monotonically,
/// so a workspace sized once (e.g. via [`Gf2Workspace::for_plan`])
/// makes every subsequent execute allocation-free.
#[derive(Default)]
pub struct Gf2Workspace {
    buf: Vec<u64>,
}

impl Gf2Workspace {
    /// An empty workspace (grows on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for `plan`.
    pub fn for_plan(plan: &Gf2Plan) -> Self {
        Gf2Workspace {
            buf: vec![0; plan.workspace_words()],
        }
    }

    /// Current capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.buf.len()
    }

    fn checkout(&mut self, words: usize) -> &mut [u64] {
        if self.buf.len() < words {
            self.buf.resize(words, 0);
        }
        &mut self.buf[..words]
    }
}

/// Exact arena words for the recursion at `depth` on a (padded)
/// `mbits × kbits × nbits` problem. Parallel levels hold all `rank`
/// task chunks live at once; sequential levels reuse one chunk.
fn rec_words(
    levels: &[Gf2Level],
    depth: usize,
    par_levels: usize,
    mbits: usize,
    kbits: usize,
    nbits: usize,
) -> usize {
    if depth == levels.len() {
        let kb = choose_kb(mbits, kbits.max(1));
        return scratch_words(kb, nbits.div_ceil(WORD_BITS));
    }
    let lv = &levels[depth];
    let (sm, sk, sn) = (mbits / lv.m, kbits / lv.k, nbits / lv.n);
    let (skw, snw) = (sk / WORD_BITS, sn / WORD_BITS);
    let chunk =
        sm * skw + sk * snw + sm * snw + rec_words(levels, depth + 1, par_levels, sm, sk, sn);
    if depth < par_levels {
        lv.rank * chunk
    } else {
        chunk
    }
}

/// Copy a packed matrix into a zeroed padded buffer (`stride_w` words
/// per row); padding rows/words stay zero, preserving the zero-tail
/// invariant blockwise.
fn copy_in(dst: &mut [u64], stride_w: usize, src: &Gf2Matrix) {
    dst.fill(0);
    let sw = src.stride();
    for i in 0..src.rows() {
        dst[i * stride_w..i * stride_w + sw].copy_from_slice(src.row_words(i));
    }
}

/// Copy the top-left `dst.rows() × dst.cols()` corner of the padded
/// result out, masking the final word of each row.
fn copy_out(dst: &mut Gf2Matrix, src: &[u64], stride_w: usize) {
    let dw = dst.stride();
    let mask = tail_mask(dst.cols());
    for i in 0..dst.rows() {
        let row = dst.row_words_mut(i);
        row.copy_from_slice(&src[i * stride_w..i * stride_w + dw]);
        row[dw - 1] &= mask;
    }
}

/// XOR-gather the listed blocks of `src` into a contiguous
/// `sub_rows × sub_w` buffer (the S/T operand formation — the paper's
/// "additions", which over GF(2) are pure word XORs).
fn gather_xor(
    dst: &mut [u64],
    src: &[u64],
    src_stride: usize,
    blocks: &[usize],
    block_cols: usize,
    sub_rows: usize,
    sub_w: usize,
) {
    let mut first = true;
    for &bidx in blocks {
        let (bi, bj) = (bidx / block_cols, bidx % block_cols);
        for i in 0..sub_rows {
            let off = (bi * sub_rows + i) * src_stride + bj * sub_w;
            let srow = &src[off..off + sub_w];
            let drow = &mut dst[i * sub_w..(i + 1) * sub_w];
            if first {
                drow.copy_from_slice(srow);
            } else {
                for (d, &s) in drow.iter_mut().zip(srow) {
                    *d ^= s;
                }
            }
        }
        first = false;
    }
}

/// XOR a contiguous `rows × w` buffer into block `(bi, bj)` of `dst`.
fn scatter_xor(
    dst: &mut [u64],
    dst_stride: usize,
    bi: usize,
    bj: usize,
    src: &[u64],
    rows: usize,
    w: usize,
) {
    for i in 0..rows {
        let off = (bi * rows + i) * dst_stride + bj * w;
        for (d, &s) in dst[off..off + w].iter_mut().zip(&src[i * w..(i + 1) * w]) {
            *d ^= s;
        }
    }
}

/// The recursion: `C ^= A·B` on word-aligned views.
#[allow(clippy::too_many_arguments)]
fn rec(
    levels: &[Gf2Level],
    depth: usize,
    par_levels: usize,
    mbits: usize,
    kbits: usize,
    nbits: usize,
    a: &[u64],
    asw: usize,
    b: &[u64],
    bsw: usize,
    c: &mut [u64],
    csw: usize,
    arena: &mut [u64],
    tracing: bool,
) {
    let nw = nbits.div_ceil(WORD_BITS);
    if depth == levels.len() {
        let t0 = now_if(tracing);
        let kb = choose_kb(mbits, kbits);
        m4rm_acc(
            c,
            csw,
            a,
            asw,
            b,
            bsw,
            mbits,
            kbits,
            nw,
            kb,
            &mut arena[..scratch_words(kb, nw)],
            false,
        );
        span_end(SpanKind::BaseGemm, t0, (mbits * kbits * nw) as u64);
        return;
    }

    let lv = &levels[depth];
    let (sm, sk, sn) = (mbits / lv.m, kbits / lv.k, nbits / lv.n);
    let (skw, snw) = (sk / WORD_BITS, sn / WORD_BITS);
    let (s_w, t_w, m_w) = (sm * skw, sk * snw, sm * snw);
    let chunk_words = s_w + t_w + m_w + rec_words(levels, depth + 1, par_levels, sm, sk, sn);

    // One rank product into its chunk: S_r = ⊕ A-blocks, T_r = ⊕
    // B-blocks, M_r = S_r·T_r (recursive). A rank with an empty operand
    // side contributes nothing; its M buffer is zeroed so the combine
    // stays uniform.
    let run_rank = |r: usize, chunk: &mut [u64]| {
        let (sbuf, rest) = chunk.split_at_mut(s_w);
        let (tbuf, rest) = rest.split_at_mut(t_w);
        let (mbuf, child) = rest.split_at_mut(m_w);
        mbuf.fill(0);
        if lv.u[r].is_empty() || lv.v[r].is_empty() {
            return;
        }
        let t0 = now_if(tracing);
        gather_xor(sbuf, a, asw, &lv.u[r], lv.k, sm, skw);
        gather_xor(tbuf, b, bsw, &lv.v[r], lv.n, sk, snw);
        span_end(
            SpanKind::Additions,
            t0,
            ((lv.u[r].len() * s_w) + (lv.v[r].len() * t_w)) as u64,
        );
        rec(
            levels,
            depth + 1,
            par_levels,
            sm,
            sk,
            sn,
            sbuf,
            skw,
            tbuf,
            snw,
            mbuf,
            snw,
            child,
            tracing,
        );
    };

    if depth < par_levels {
        // BFS fan-out: all rank chunks live at once, one task each on
        // the work-stealing pool.
        {
            let mut rest = &mut arena[..lv.rank * chunk_words];
            let mut tasks: Vec<(usize, &mut [u64])> = Vec::with_capacity(lv.rank);
            for r in 0..lv.rank {
                let (chunk, tail) = rest.split_at_mut(chunk_words);
                rest = tail;
                tasks.push((r, chunk));
            }
            let run_rank = &run_rank;
            fmm_runtime::scope(|s| {
                for (r, chunk) in tasks {
                    s.spawn(move |_| run_rank(r, chunk));
                }
            });
        }
        // Combine: M_r feeds every odd-coefficient output block.
        let t0 = now_if(tracing);
        for r in 0..lv.rank {
            let moff = r * chunk_words + s_w + t_w;
            let mbuf = &arena[moff..moff + m_w];
            for &out in &lv.w[r] {
                scatter_xor(c, csw, out / lv.n, out % lv.n, mbuf, sm, snw);
            }
        }
        span_end(SpanKind::Combine, t0, (lv.rank * m_w) as u64);
    } else {
        // Sequential: one chunk reused across ranks, combine as we go.
        let chunk = &mut arena[..chunk_words];
        for r in 0..lv.rank {
            run_rank(r, chunk);
            let t0 = now_if(tracing);
            let mbuf = &chunk[s_w + t_w..s_w + t_w + m_w];
            for &out in &lv.w[r] {
                scatter_xor(c, csw, out / lv.n, out % lv.n, mbuf, sm, snw);
            }
            span_end(SpanKind::Combine, t0, (lv.w[r].len() * m_w) as u64);
        }
    }
}

/// Measure the M4RM kernel's effective classical-word-op rate at the
/// given square sizes (same inverse-time scale as
/// [`fmm_gemm::effective_gflops`], with "flop" read as "bit op"), for
/// feeding [`Gf2Planner::profile`] — the GF(2) analogue of
/// [`GemmProfile::measure`].
pub fn measure_m4rm_profile(sizes: &[usize]) -> GemmProfile {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0x6f2);
    let mut samples = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let a = Gf2Matrix::random(n, n, &mut rng);
        let b = Gf2Matrix::random(n, n, &mut rng);
        let _warm = a.mul_m4rm(&b);
        let mut best = 0.0f64;
        for _ in 0..3 {
            let t0 = Instant::now();
            let _ = a.mul_m4rm(&b);
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            best = best.max(classical_flops(n, n, n) / secs * 1e-9);
        }
        samples.push((n, best));
    }
    GemmProfile::from_samples(samples)
}

static HISTS: OnceLock<HistogramSet> = OnceLock::new();

fn hists() -> &'static HistogramSet {
    HISTS.get_or_init(HistogramSet::new)
}

/// Snapshot of the per shape-class GF(2) execute-latency histograms
/// (labels `"<shape-class>/gf2"`, values in nanoseconds) — the same
/// log-bucketed rows `FmmEngine` records for the float dtypes.
pub fn latency_histograms() -> Vec<HistogramRow> {
    hists().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_plan(m: usize, k: usize, n: usize, steps: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Gf2Matrix::random(m, k, &mut rng);
        let b = Gf2Matrix::random(k, n, &mut rng);
        let plan = Gf2Planner::new()
            .shape(m, k, n)
            .steps(steps)
            .plan()
            .unwrap();
        let mut ws = Gf2Workspace::for_plan(&plan);
        let c = plan.execute(&a, &b, &mut ws);
        assert_eq!(c, a.mul_naive(&b), "{m}x{k}x{n} steps={steps}");
    }

    #[test]
    fn depth_zero_is_m4rm() {
        check_plan(33, 70, 129, 0, 1);
        check_plan(64, 64, 64, 0, 2);
    }

    #[test]
    fn strassen_one_and_two_steps_match_naive() {
        for steps in [1, 2] {
            check_plan(64, 64, 64, steps, 3);
            check_plan(130, 190, 70, steps, 4); // ragged: padding path
            check_plan(256, 256, 256, steps, 5);
        }
    }

    #[test]
    fn ragged_odd_shapes() {
        check_plan(1, 1, 1, 1, 6);
        check_plan(65, 3, 127, 2, 7);
        check_plan(7, 300, 5, 1, 8);
    }

    #[test]
    fn workspace_is_reused_not_regrown() {
        let plan = Gf2Planner::new()
            .shape(128, 128, 128)
            .steps(1)
            .plan()
            .unwrap();
        let mut ws = Gf2Workspace::for_plan(&plan);
        let cap = ws.capacity_words();
        assert_eq!(cap, plan.workspace_words());
        let mut rng = StdRng::seed_from_u64(11);
        let a = Gf2Matrix::random(128, 128, &mut rng);
        let b = Gf2Matrix::random(128, 128, &mut rng);
        for _ in 0..3 {
            let _ = plan.execute(&a, &b, &mut ws);
            assert_eq!(ws.capacity_words(), cap, "steady state must not grow");
        }
    }

    #[test]
    fn default_depth_uses_bit_cutoff() {
        let small = Gf2Planner::new().shape(256, 256, 256).plan().unwrap();
        assert_eq!(small.depth(), 0, "256 bits is below the cutoff");
        let big = Gf2Planner::new().shape(4096, 4096, 4096).plan().unwrap();
        assert!(big.depth() >= 1, "4096 bits should recurse");
        assert!(big.depth() <= 3);
    }

    #[test]
    fn profile_drives_depth_via_cutoff_rule() {
        // A flat word-op profile approves recursion (the §3.4 rule);
        // a steep ramp blocks it. Reuses GemmProfile verbatim.
        let flat = GemmProfile::from_samples(vec![(64, 4.0), (8192, 4.0)]);
        let plan = Gf2Planner::new()
            .shape(4096, 4096, 4096)
            .profile(flat)
            .plan()
            .unwrap();
        assert_eq!(plan.depth(), 3);
        let steep = GemmProfile::from_samples(vec![(64, 1.0), (128, 2.0), (8192, 64.0)]);
        let plan = Gf2Planner::new()
            .shape(4096, 4096, 4096)
            .profile(steep)
            .plan()
            .unwrap();
        assert_eq!(plan.depth(), 0);
    }

    #[test]
    fn apa_scheme_fails_with_named_scheme_and_coefficient() {
        // Satellite: planning an APA scheme over GF(2) must name the
        // offending coefficient and the scheme in the Display output.
        let bini = fmm_algo::by_name("bini").expect("bini is in the catalog");
        let err = Gf2Planner::new()
            .shape(512, 512, 512)
            .algorithm(&bini.dec)
            .steps(1)
            .plan()
            .unwrap_err();
        let PlanError::UnrepresentableCoefficient {
            value,
            ref scheme,
            dtype,
        } = err
        else {
            panic!("expected UnrepresentableCoefficient, got {err:?}");
        };
        assert!(
            value.fract() != 0.0,
            "offender should be fractional: {value}"
        );
        assert_eq!(dtype, "gf2");
        assert!(scheme.contains("<3,2,2>"), "scheme label: {scheme}");
        let msg = err.to_string();
        assert!(msg.contains("<3,2,2>"), "message names the scheme: {msg}");
        assert!(msg.contains("gf2"), "message names the dtype: {msg}");
    }

    #[test]
    fn float_planner_error_matches_over_gf2_elementwise_path() {
        // The generic DenseMatrix<Gf2> path through fmm_core::Planner
        // hits the same seam (Scalar::from_coeff) and now names the
        // scheme too.
        let bini = fmm_algo::by_name("bini").expect("bini is in the catalog");
        let result = fmm_core::Planner::new()
            .shape(12, 8, 8)
            .algorithm(&bini.dec)
            .steps(1)
            .plan::<Gf2>();
        let err = match result {
            Err(e) => e,
            Ok(_) => panic!("expected an APA scheme to fail planning over gf2"),
        };
        let msg = err.to_string();
        assert!(msg.contains("<3,2,2>"), "{msg}");
        assert!(msg.contains("gf2"), "{msg}");
    }

    #[test]
    fn strassen_lift_drops_even_and_keeps_odd() {
        let lv = Gf2Level::lift(&fmm_algo::strassen()).unwrap();
        assert_eq!((lv.m, lv.k, lv.n, lv.rank), (2, 2, 2, 7));
        // Strassen's U/V/W are ±1/0: every nonzero survives the lift.
        let dec = fmm_algo::strassen();
        for r in 0..7 {
            let nnz_u = (0..4).filter(|&i| dec.u[(i, r)] != 0.0).count();
            assert_eq!(lv.u[r].len(), nnz_u);
        }
        // A doubled coefficient would drop: check via a crafted scheme.
        let mut dec2 = fmm_algo::strassen();
        dec2.u[(0, 0)] = 2.0;
        let lv2 = Gf2Level::lift(&dec2).unwrap();
        assert!(!lv2.u[0].contains(&0), "even coefficient must drop");
    }

    #[test]
    fn histograms_accumulate_per_shape_class() {
        let plan = Gf2Planner::new().shape(96, 96, 96).steps(0).plan().unwrap();
        let mut ws = Gf2Workspace::for_plan(&plan);
        let a = Gf2Matrix::identity(96);
        let b = Gf2Matrix::identity(96);
        let _ = plan.execute(&a, &b, &mut ws);
        let rows = latency_histograms();
        assert!(
            rows.iter().any(|r| r.label.ends_with("/gf2")),
            "expected a /gf2 histogram row, got {:?}",
            rows.iter().map(|r| r.label.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn spans_are_emitted_when_tracing() {
        fmm_trace::set_enabled(true);
        let plan = Gf2Planner::new()
            .shape(128, 128, 128)
            .steps(1)
            .plan()
            .unwrap();
        let mut ws = Gf2Workspace::for_plan(&plan);
        let mut rng = StdRng::seed_from_u64(12);
        let a = Gf2Matrix::random(128, 128, &mut rng);
        let b = Gf2Matrix::random(128, 128, &mut rng);
        let _ = plan.execute(&a, &b, &mut ws);
        fmm_trace::set_enabled(false);
        let kinds: Vec<_> = fmm_trace::TraceSink::collect()
            .tracks
            .into_iter()
            .flat_map(|t| t.records.into_iter().map(|r| r.kind))
            .collect();
        for want in [SpanKind::BaseGemm, SpanKind::Additions, SpanKind::Combine] {
            assert!(kinds.contains(&want), "missing {want:?} in {kinds:?}");
        }
    }
}
