//! # fmm-gf2 — the bit-packed GF(2) backend
//!
//! The Benson–Ballard framework is element-type agnostic: the recursion
//! only needs a ring whose elements scale by the decomposition
//! coefficients. This crate instantiates it over **GF(2)**, where the
//! payoff is structural, not incremental — 64 matrix entries pack into
//! one `u64` (~64× memory density), addition and subtraction collapse
//! into XOR (characteristic 2: every element is its own negative), and
//! the base case becomes the **Method of Four Russians** (M4RM), which
//! replaces per-bit inner products with Gray-code combination-table
//! lookups for an extra `≈ log₂ m` over word-parallel broadcast.
//!
//! Two integration paths, both exercised by the test suite:
//!
//! * **Generic seam** — [`Gf2`] implements [`fmm_matrix::Scalar`] and
//!   [`fmm_gemm::GemmScalar`], so `DenseMatrix<Gf2>`,
//!   `fmm_core::Planner::plan::<Gf2>()` and the whole float stack work
//!   unchanged (one element per byte; correctness and plan-time
//!   coefficient checking, not speed).
//! * **Packed path** — [`Gf2Matrix`] + [`Gf2Planner`]/[`Gf2Plan`]:
//!   word-packed storage, the M4RM kernel, Strassen recursion over the
//!   `.alg` catalog, parallel rank fan-out on the `fmm-runtime` pool,
//!   zero-alloc steady state via [`Gf2Workspace`], and `fmm-trace`
//!   spans/histograms. This is the performance path.
//!
//! ## The coefficient-lift rule
//!
//! `.alg` files store scheme coefficients as `f64`. GF(2) can only
//! represent their images mod 2, so [`Gf2`]'s `Scalar::from_coeff` (and the level
//! lift in [`Gf2Planner`]) applies: **odd → 1, even → 0, fractional →
//! error**. Exact integer schemes (Strassen's ±1/0) lift cleanly; APA
//! border schemes (Bini ⟨3,2,2⟩, Schönhage ⟨3,3,3⟩) carry fractional
//! fit coefficients and are rejected at *plan* time with
//! [`fmm_core::PlanError::UnrepresentableCoefficient`] naming the
//! scheme and the offending value — never a silently wrong answer.
//!
//! ## XOR vs OR: two semirings
//!
//! GF(2) multiply counts paths **mod 2** — for boolean reachability
//! that is the wrong algebra (two distinct paths would cancel). The
//! packed type therefore ships both products: [`Gf2Matrix::mul_m4rm`]
//! (XOR accumulation, a ring — Strassen applies) and
//! [`Gf2Matrix::or_mul`] (OR accumulation, the OR–AND semiring —
//! no subtraction, so no Strassen, but M4RM still applies with a
//! clear-lowest-bit table construction). `examples/reachability.rs`
//! builds transitive closures on the OR path.

#![forbid(unsafe_code)]

mod elem;
mod m4rm;
mod matrix;
mod plan;

pub use elem::Gf2;
pub use matrix::{Gf2Matrix, WORD_BITS};
pub use plan::{
    latency_histograms, measure_m4rm_profile, Gf2Plan, Gf2Planner, Gf2Workspace, GF2_CUTOFF_BITS,
};
