//! [`Gf2`]: the two-element field as a workspace [`Scalar`].
//!
//! One bit in a `u8` (invariant: always `0` or `1`). Addition and
//! subtraction are both XOR — GF(2) is characteristic 2, so every
//! element is its own additive inverse and `Neg` is the identity.
//! Multiplication is AND.
//!
//! The interesting method is [`Scalar::from_coeff`]: `.alg` files store
//! decomposition coefficients as `f64`, and GF(2) can only represent
//! their images mod 2 — **odd → 1, even → 0, fractional → `None`**.
//! `None` is what makes APA schemes (Bini, Schönhage) plan-time errors
//! for this dtype instead of silently wrong answers; integer schemes
//! such as Strassen lift cleanly.
//!
//! `Gf2` exists so the *generic* stack (`DenseMatrix<Gf2>`, `Planner`,
//! the executor) works over GF(2) unchanged — one bit per byte, no
//! packing. The packed 64-bits-per-word representation lives in
//! [`crate::Gf2Matrix`] and carries the performance story.

use fmm_matrix::Scalar;
use rand::Rng;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of GF(2). Stored as `0u8` or `1u8`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Gf2(u8);

impl Gf2 {
    /// The zero element.
    pub const ZERO: Gf2 = Gf2(0);
    /// The one element.
    pub const ONE: Gf2 = Gf2(1);

    /// Build from a boolean.
    #[inline]
    pub fn new(bit: bool) -> Self {
        Gf2(bit as u8)
    }

    /// The element as a boolean.
    #[inline]
    pub fn bit(self) -> bool {
        self.0 != 0
    }

    /// Reduce an integer mod 2.
    #[inline]
    pub fn from_int(v: i64) -> Self {
        Gf2((v & 1) as u8)
    }
}

impl fmt::Display for Gf2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

// In GF(2) the ring operations *are* the bit operations: + is XOR,
// × is AND — the "suspicious arithmetic" shapes are the definition.
impl Add for Gf2 {
    type Output = Gf2;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf2) -> Gf2 {
        Gf2(self.0 ^ rhs.0)
    }
}

impl Sub for Gf2 {
    type Output = Gf2;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf2) -> Gf2 {
        // Characteristic 2: subtraction *is* addition.
        Gf2(self.0 ^ rhs.0)
    }
}

impl Mul for Gf2 {
    type Output = Gf2;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, rhs: Gf2) -> Gf2 {
        Gf2(self.0 & rhs.0)
    }
}

impl Neg for Gf2 {
    type Output = Gf2;
    #[inline]
    fn neg(self) -> Gf2 {
        // −x = x in characteristic 2.
        self
    }
}

impl AddAssign for Gf2 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf2) {
        self.0 ^= rhs.0;
    }
}

impl SubAssign for Gf2 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)]
    fn sub_assign(&mut self, rhs: Gf2) {
        self.0 ^= rhs.0;
    }
}

impl MulAssign for Gf2 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)]
    fn mul_assign(&mut self, rhs: Gf2) {
        self.0 &= rhs.0;
    }
}

impl Scalar for Gf2 {
    const ZERO: Self = Gf2::ZERO;
    const ONE: Self = Gf2::ONE;
    const NAME: &'static str = "gf2";
    // Exact arithmetic: any nonzero residual is a real mismatch.
    const EPSILON: f64 = 0.0;

    type Accum = f64;

    /// The mod-2 coefficient lift: odd → 1, even → 0, anything
    /// fractional (or non-finite) → `None`. This is the seam that turns
    /// APA schemes into [`fmm_core::PlanError::UnrepresentableCoefficient`]
    /// for this dtype.
    #[inline]
    fn from_coeff(c: f64) -> Option<Self> {
        if !c.is_finite() || c.fract() != 0.0 || c.abs() >= 2f64.powi(53) {
            return None;
        }
        Some(Gf2::from_int(c as i64))
    }

    #[inline]
    fn to_accum(self) -> f64 {
        self.0 as f64
    }

    #[inline]
    fn abs(self) -> Self {
        self
    }

    /// Accumulator norms count set bits; anything below ½ is exactly
    /// zero, so ½ is the natural noise floor.
    #[inline]
    fn tiny_norm() -> f64 {
        0.5
    }

    #[inline]
    fn sample_unit<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Gf2::new(rng.gen_bool(0.5))
    }
}

/// GF(2) gets the generic [`fmm_gemm::GemmScalar`] fall-back kernel:
/// the packed word-parallel kernels live in [`crate::Gf2Matrix`] /
/// [`crate::Gf2Plan`], not behind `packed_gemm` (one bit per byte
/// through the float microkernel tiling would waste the 64× density).
impl fmm_gemm::GemmScalar for Gf2 {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_axioms_on_all_four_pairs() {
        let elems = [Gf2::ZERO, Gf2::ONE];
        for &a in &elems {
            for &b in &elems {
                // add == sub (characteristic 2), both are XOR.
                assert_eq!(a + b, a - b);
                assert_eq!((a + b).bit(), a.bit() ^ b.bit());
                assert_eq!((a * b).bit(), a.bit() & b.bit());
                // Self-inverse: (a + b) + b == a.
                assert_eq!(a + b + b, a);
            }
        }
        assert_eq!(-Gf2::ONE, Gf2::ONE);
        assert_eq!(-Gf2::ZERO, Gf2::ZERO);
    }

    #[test]
    fn coeff_lift_odd_even_fractional() {
        assert_eq!(Gf2::from_coeff(0.0), Some(Gf2::ZERO));
        assert_eq!(Gf2::from_coeff(1.0), Some(Gf2::ONE));
        assert_eq!(Gf2::from_coeff(-1.0), Some(Gf2::ONE));
        assert_eq!(Gf2::from_coeff(2.0), Some(Gf2::ZERO));
        assert_eq!(Gf2::from_coeff(-4.0), Some(Gf2::ZERO));
        assert_eq!(Gf2::from_coeff(7.0), Some(Gf2::ONE));
        // Fractional APA coefficients are rejected, not rounded.
        assert_eq!(Gf2::from_coeff(0.5), None);
        assert_eq!(Gf2::from_coeff(-1.0e-3), None);
        assert_eq!(Gf2::from_coeff(f64::NAN), None);
        assert_eq!(Gf2::from_coeff(f64::INFINITY), None);
        // Magnitudes past 2^53 have no exact integer meaning in f64.
        assert_eq!(Gf2::from_coeff(1.0e300), None);
    }

    #[test]
    fn scalar_plumbing() {
        assert_eq!(<Gf2 as Scalar>::NAME, "gf2");
        assert_eq!(Gf2::ONE.to_accum(), 1.0);
        assert_eq!(Gf2::ZERO.to_accum(), 0.0);
        assert!(<Gf2 as Scalar>::tiny_norm() < 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[Gf2::sample_unit(&mut rng).bit() as usize] = true;
        }
        assert!(seen[0] && seen[1], "sampler should hit both elements");
    }

    #[test]
    fn dense_matrix_naive_gemm_works_over_gf2() {
        use fmm_matrix::DenseMatrix;
        // 2×2 over GF(2): A = [[1,1],[0,1]], B = [[1,0],[1,1]].
        let (o, i) = (Gf2::ZERO, Gf2::ONE);
        let a = DenseMatrix::from_rows(&[&[i, i], &[o, i]]);
        let b = DenseMatrix::from_rows(&[&[i, o], &[i, i]]);
        let c = fmm_gemm::matmul(&a, &b);
        // A·B = [[1+1, 0+1],[0+1, 0+1]] = [[0,1],[1,1]] over GF(2).
        assert_eq!(c[(0, 0)], o);
        assert_eq!(c[(0, 1)], i);
        assert_eq!(c[(1, 0)], i);
        assert_eq!(c[(1, 1)], i);
    }
}
