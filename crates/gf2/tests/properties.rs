//! Property tests of the GF(2) backend: every multiply path — naive
//! broadcast, M4RM, and Strassen recursion at depths 1 and 2 — is
//! bitwise-equal to a scalar O(n³) boolean reference across ragged
//! shapes and rayon pool widths 1/2/4, and the packed representation
//! round-trips losslessly.

use fmm_gf2::{Gf2, Gf2Matrix, Gf2Planner, Gf2Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Scalar triple-loop reference over individual bits: XOR-accumulate
/// of AND products, the GF(2) ground truth.
fn reference(a: &Gf2Matrix, b: &Gf2Matrix) -> Gf2Matrix {
    assert_eq!(a.cols(), b.rows());
    Gf2Matrix::from_fn(a.rows(), b.cols(), |i, j| {
        let mut acc = false;
        for p in 0..a.cols() {
            acc ^= a.get(i, p) && b.get(p, j);
        }
        acc
    })
}

/// One long-lived pool per width for the whole test binary — spinning
/// a pool up per proptest case would dominate the runtime.
fn pool(width: usize) -> &'static rayon::ThreadPool {
    static POOLS: OnceLock<Mutex<HashMap<usize, &'static rayon::ThreadPool>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut by_width = pools.lock().unwrap();
    by_width.entry(width).or_insert_with(|| {
        Box::leak(Box::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("thread pool"),
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_multiply_paths_match_scalar_reference(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1000,
        width_idx in 0usize..3,
        steps in 1usize..3,
    ) {
        let width = [1, 2, 4][width_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Gf2Matrix::random(m, k, &mut rng);
        let b = Gf2Matrix::random(k, n, &mut rng);
        let expect = reference(&a, &b);

        prop_assert_eq!(&a.mul_naive(&b), &expect);
        prop_assert_eq!(&a.mul_m4rm(&b), &expect);

        let plan = Gf2Planner::new()
            .shape(m, k, n)
            .steps(steps)
            .plan()
            .expect("strassen lifts mod 2 at any shape");
        let mut ws = Gf2Workspace::for_plan(&plan);
        let got = pool(width).install(|| plan.execute(&a, &b, &mut ws));
        prop_assert_eq!(&got, &expect);
    }

    /// Every integer-coefficient `.alg` in the embedded catalog — which
    /// automatically includes newly landed flip-graph search output —
    /// lifts mod 2 and executes bitwise-equal to the scalar reference.
    /// No hardcoded scheme list: the filter mirrors the xtask lint's
    /// integer/fractional classification.
    #[test]
    fn integer_catalog_schemes_execute_under_the_mod_2_lift(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
        pick in 0usize..64,
    ) {
        let integer: Vec<_> = fmm_algo::embedded_files()
            .iter()
            .filter_map(|(_, text)| fmm_algo::parse(text).ok())
            .filter(|dec| {
                [&dec.u, &dec.v, &dec.w].iter().all(|mat| {
                    mat.as_slice()
                        .iter()
                        .all(|c| c.fract() == 0.0 && c.is_finite())
                })
            })
            .collect();
        prop_assert!(!integer.is_empty(), "catalog lost all integer schemes");
        let dec = &integer[pick % integer.len()];

        let mut rng = StdRng::seed_from_u64(seed);
        let a = Gf2Matrix::random(m, k, &mut rng);
        let b = Gf2Matrix::random(k, n, &mut rng);
        let expect = reference(&a, &b);

        let plan = Gf2Planner::new()
            .shape(m, k, n)
            .algorithm(dec)
            .steps(1)
            .plan()
            .expect("integer scheme must lift mod 2");
        let mut ws = Gf2Workspace::for_plan(&plan);
        let got = plan.execute(&a, &b, &mut ws);
        prop_assert_eq!(&got, &expect);
    }

    #[test]
    fn xor_is_self_inverse_and_or_is_idempotent(
        rows in 1usize..80,
        cols in 1usize..150,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Gf2Matrix::random(rows, cols, &mut rng);
        let b = Gf2Matrix::random(rows, cols, &mut rng);
        let mut x = a.clone();
        x.xor_assign(&b);
        x.xor_assign(&b);
        prop_assert_eq!(&x, &a);
        let mut y = a.clone();
        y.or_assign(&b);
        let once = y.clone();
        y.or_assign(&b);
        prop_assert_eq!(&y, &once);
    }

    #[test]
    fn packing_roundtrips_bitwise(
        rows in 0usize..40,
        cols in 0usize..200,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Gf2Matrix::random(rows, cols, &mut rng);
        // Packed → element-typed dense → packed is the identity.
        let dense = m.to_dense();
        prop_assert_eq!(&Gf2Matrix::from_dense(&dense), &m);
        // Every addressable bit agrees with the dense view.
        for i in 0..rows {
            for j in 0..cols {
                prop_assert_eq!(m.get(i, j), dense[(i, j)] == Gf2::ONE);
            }
        }
    }
}
