//! Catalog of fast matrix multiplication algorithms (paper Table 2).
//!
//! Every entry is a verified [`fmm_tensor::Decomposition`] wrapped with
//! a name and provenance. Entries come from three sources, in order of
//! preference:
//!
//! 1. **hand-entered** literature algorithms (Strassen,
//!    Strassen–Winograd);
//! 2. **searched** coefficient files under `data/` produced by the
//!    `fmm-search` ALS tooling (the paper's §2.3.2 method) and embedded
//!    at build time;
//! 3. **derived** constructions from verified seeds via permutation,
//!    direct-sum splitting and tensor-product composition (§2.3) — the
//!    fallback when no searched file reaches the paper's rank, with the
//!    rank difference recorded in the provenance.
//!
//! Each catalog access re-checks the decomposition against the Brent
//! equations, so a corrupted data file cannot produce silent wrong
//! results. Discrete (dyadic-coefficient) schemes are *certified*
//! identically in ℚ via [`fmm_verify::certify_exact`] — not accepted at
//! a float tolerance — and APA instantiations go through
//! [`fmm_verify::check_apa_fit`], which replaces the old fixed-residual
//! heuristic with a rank-deficit + unique-rounding + header-agreement
//! check.

mod derive;
mod format;
mod hardcoded;

pub use derive::derive_best;
pub use format::{declared_residual, parse, serialize};
pub use hardcoded::{strassen, winograd};

use fmm_tensor::transform::permute_to;
use fmm_tensor::Decomposition;
use fmm_verify::Certify;

mod embedded {
    include!(concat!(env!("OUT_DIR"), "/embedded.rs"));
}

/// Where a catalog algorithm came from.
#[derive(Debug, Clone, PartialEq)]
pub enum Provenance {
    /// Transcribed from the literature and verified.
    HandCoded,
    /// Loaded from a searched `.alg` coefficient file (exact).
    Searched,
    /// Loaded from a searched `.alg` file with floating-point entries
    /// (exact within numerical tolerance, but not discrete).
    SearchedFloat,
    /// Derived by split/composition from seeds; the string describes
    /// the construction.
    Derived(String),
    /// Permutation (Prop. 2.1/2.2) of another entry.
    Permuted(&'static str),
    /// Approximate (APA) algorithm: exact only in the λ → 0 limit; the
    /// f64 is the Brent residual of this instantiation.
    Apa(f64),
    /// The classical algorithm.
    Classical,
}

/// A named, verified fast multiplication algorithm.
#[derive(Debug, Clone)]
pub struct FastAlgorithm {
    /// Display name, e.g. `"strassen"` or `"<4,2,4>"`.
    pub name: String,
    /// The underlying decomposition.
    pub dec: Decomposition,
    /// Provenance record.
    pub provenance: Provenance,
}

impl FastAlgorithm {
    /// Paper-style base-case label `⟨m,k,n⟩` rendered as `<m,k,n>`.
    pub fn base_label(&self) -> String {
        let (m, k, n) = self.dec.base();
        format!("<{m},{k},{n}>")
    }

    /// True when the algorithm is only approximately correct (APA).
    pub fn is_apa(&self) -> bool {
        matches!(self.provenance, Provenance::Apa(_))
    }
}

/// Tolerance below which a catalog decomposition must satisfy the Brent
/// equations to be considered exact.
pub const EXACT_TOL: f64 = 1e-9;

/// The raw `.alg` files embedded at build time, as
/// `(file_name, contents)` pairs — exposed so integration tests can
/// smoke-check every shipped coefficient file.
pub fn embedded_files() -> &'static [(&'static str, &'static str)] {
    embedded::EMBEDDED
}

fn load_embedded(m: usize, k: usize, n: usize, rank: usize) -> Option<(Decomposition, Provenance)> {
    let want = format!("searched_{m}{k}{n}_{rank}.alg");
    for (name, text) in embedded::EMBEDDED {
        if *name == want {
            let dec = parse(text).ok()?;
            if dec.base() != (m, k, n) || dec.rank() != rank {
                return None;
            }
            // Discrete schemes must survive exact ℚ certification —
            // every Brent equation identically, no tolerance. Only
            // genuinely float-fitted schemes fall back to the float
            // check.
            if dec.is_discrete(1e-9) {
                if dec.certify().is_ok() {
                    return Some((dec, Provenance::Searched));
                }
            } else if dec.verify(EXACT_TOL).is_ok() {
                return Some((dec, Provenance::SearchedFloat));
            }
            return None;
        }
    }
    None
}

fn load_apa(m: usize, k: usize, n: usize, rank: usize, label: &str) -> Option<FastAlgorithm> {
    let want = format!("apa_{m}{k}{n}_{rank}.alg");
    for (name, text) in embedded::EMBEDDED {
        if *name == want {
            let dec = parse(text).ok()?;
            if dec.base() != (m, k, n) || dec.rank() != rank {
                return None;
            }
            // Principled acceptance (fmm-verify): the fit must claim a
            // rank deficit, its residual must be < 1/2 so the matmul
            // tensor is the *unique* nearest integer tensor, and the
            // header-declared residual must match the recomputation.
            let declared = declared_residual(text)?;
            let report = fmm_verify::check_apa_fit(&dec, declared).ok()?;
            return Some(FastAlgorithm {
                name: label.to_string(),
                dec,
                provenance: Provenance::Apa(report.residual),
            });
        }
    }
    None
}

/// Seeds available to the construction optimizer: hand-coded entries
/// plus every exact searched file.
fn seeds() -> Vec<Decomposition> {
    let mut s = vec![strassen()];
    for (name, text) in embedded::EMBEDDED {
        if name.starts_with("searched_") {
            if let Ok(dec) = parse(text) {
                let exact = if dec.is_discrete(1e-9) {
                    dec.certify().is_ok()
                } else {
                    dec.verify(EXACT_TOL).is_ok()
                };
                if exact {
                    s.push(dec);
                }
            }
        }
    }
    s
}

/// The canonical Table-2 base cases and their paper ranks.
pub const TABLE2_BASES: &[((usize, usize, usize), usize)] = &[
    ((2, 2, 2), 7),
    ((2, 2, 3), 11),
    ((2, 2, 4), 14),
    ((2, 2, 5), 18),
    ((2, 3, 3), 15),
    ((2, 3, 4), 20),
    ((2, 4, 4), 26),
    ((3, 3, 3), 23),
    ((3, 3, 4), 29),
    ((3, 4, 4), 38),
    ((3, 3, 6), 40),
];

/// Catalog entry for a base case: searched file at the paper rank when
/// available and exact, otherwise the best derived construction.
pub fn by_base(m: usize, k: usize, n: usize) -> FastAlgorithm {
    let mut sorted = [m, k, n];
    sorted.sort_unstable();
    // Find the canonical (sorted) Table-2 rank target, if listed.
    let paper_rank = TABLE2_BASES
        .iter()
        .find(|((a, b, c), _)| [*a, *b, *c] == sorted)
        .map(|(_, r)| *r);

    // Canonical orientation is the sorted one; permute at the end.
    let (cm, ck, cn) = (sorted[0], sorted[1], sorted[2]);
    let canonical = if let Some(rank) = paper_rank {
        if let Some((dec, prov)) = load_embedded(cm, ck, cn, rank) {
            FastAlgorithm {
                name: format!("<{cm},{ck},{cn}>"),
                dec,
                provenance: prov,
            }
        } else {
            let (dec, how) = derive_best(cm, ck, cn, &seeds());
            FastAlgorithm {
                name: format!("<{cm},{ck},{cn}>"),
                dec,
                provenance: Provenance::Derived(how),
            }
        }
    } else {
        let (dec, how) = derive_best(cm, ck, cn, &seeds());
        FastAlgorithm {
            name: format!("<{cm},{ck},{cn}>"),
            dec,
            provenance: Provenance::Derived(how),
        }
    };

    if (cm, ck, cn) == (m, k, n) {
        canonical
    } else {
        let dec = permute_to(&canonical.dec, (m, k, n)).expect("same multiset");
        FastAlgorithm {
            name: format!("<{m},{k},{n}>"),
            dec,
            provenance: Provenance::Permuted("Prop. 2.1/2.2 permutation of canonical base"),
        }
    }
}

/// The classical algorithm as a catalog entry.
pub fn classical(m: usize, k: usize, n: usize) -> FastAlgorithm {
    FastAlgorithm {
        name: format!("classical<{m},{k},{n}>"),
        dec: fmm_tensor::compose::classical(m, k, n),
        provenance: Provenance::Classical,
    }
}

/// Bini's approximate ⟨3,2,2⟩ algorithm with 10 multiplies, loaded as a
/// numerical border-rank instantiation (see DESIGN.md substitutions).
pub fn bini_apa() -> Option<FastAlgorithm> {
    load_apa(3, 2, 2, 10, "bini")
}

/// Schönhage's approximate ⟨3,3,3⟩ algorithm with 21 multiplies, loaded
/// as a numerical border-rank instantiation.
pub fn schonhage_apa() -> Option<FastAlgorithm> {
    load_apa(3, 3, 3, 21, "schonhage")
}

/// Look an algorithm up by name:
/// `"strassen"`, `"winograd"`, `"classical"`, `"bini"`, `"schonhage"`,
/// or a base-case label like `"<4,2,4>"` / `"4,2,4"`.
pub fn by_name(name: &str) -> Option<FastAlgorithm> {
    match name {
        "strassen" => Some(FastAlgorithm {
            name: "strassen".into(),
            dec: strassen(),
            provenance: Provenance::HandCoded,
        }),
        "winograd" | "strassen-winograd" => Some(FastAlgorithm {
            name: "winograd".into(),
            dec: winograd(),
            provenance: Provenance::HandCoded,
        }),
        "bini" => bini_apa(),
        "schonhage" => schonhage_apa(),
        _ => {
            let trimmed = name.trim_start_matches('<').trim_end_matches('>');
            let dims: Vec<usize> = trimmed
                .split(',')
                .map(|t| t.trim().parse().ok())
                .collect::<Option<_>>()?;
            if dims.len() == 3 {
                Some(by_base(dims[0], dims[1], dims[2]))
            } else {
                None
            }
        }
    }
}

/// Shape-indexed catalog lookup: every exact catalog algorithm, ranked
/// for a `p × q × r` problem — best candidate first.
///
/// The paper's shape lesson (§5.3, Fig. 5/6) is that the base case
/// should mirror the problem's aspect ratio (an outer-product-shaped
/// problem wants ⟨4,2,4⟩, not Strassen), so the ranking combines the
/// log-space distance between the base-case and problem aspect ratios
/// with the per-step multiplication speedup. Feed the result (mapped to
/// decompositions) to `fmm_core::Planner::auto_algorithm`, which then
/// applies the §3.4 depth rule per candidate.
pub fn candidates_for_shape(p: usize, q: usize, r: usize) -> Vec<FastAlgorithm> {
    let aspect = |x: usize, y: usize| (x.max(1) as f64 / y.max(1) as f64).ln();
    let mut entries = catalog();
    let score = |a: &FastAlgorithm| {
        let (m, k, n) = a.dec.base();
        let mismatch = (aspect(p, q) - aspect(m, k)).abs() + (aspect(q, r) - aspect(k, n)).abs();
        // Lower is better: each unit of log-aspect mismatch outweighs
        // the typical 10–30% per-step speedup spread.
        mismatch - a.dec.speedup_per_step()
    };
    entries.sort_by(|x, y| {
        score(x)
            .partial_cmp(&score(y))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    entries
}

/// All canonical Table-2 algorithms (exact entries only).
pub fn catalog() -> Vec<FastAlgorithm> {
    let mut out = vec![by_name("strassen").unwrap(), by_name("winograd").unwrap()];
    for ((m, k, n), _) in TABLE2_BASES {
        if (*m, *k, *n) == (2, 2, 2) {
            continue; // strassen already included
        }
        out.push(by_base(*m, *k, *n));
    }
    out
}

/// The level schedule of the composed ⟨54,54,54⟩ algorithm of §5.2:
/// ⟨3,3,6⟩ at level 0, ⟨3,6,3⟩ at level 1, ⟨6,3,3⟩ at level 2. Its
/// square-multiplication exponent is `3·log₅₄(R³) = 3·log₅₄ R` per
/// step — ω ≈ 2.775 with the paper's rank-40 ⟨3,3,6⟩.
pub fn schedule_54() -> Vec<Decomposition> {
    let a336 = by_base(3, 3, 6).dec;
    let a363 = permute_to(&a336, (3, 6, 3)).expect("permutation");
    let a633 = permute_to(&a336, (6, 3, 3)).expect("permutation");
    vec![a336, a363, a633]
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Base-case label.
    pub base: String,
    /// Fast rank (number of multiplies).
    pub fast_multiplies: usize,
    /// Classical multiply count `m·k·n`.
    pub classical_multiplies: usize,
    /// Speedup per recursive step, percent.
    pub speedup_percent: f64,
    /// Provenance note (searched / derived / hand-coded).
    pub provenance: String,
}

/// Generate Table 2 from the live catalog (plus APA rows when their
/// data files exist).
pub fn table2() -> Vec<Table2Row> {
    let mut rows: Vec<Table2Row> = catalog()
        .into_iter()
        .filter(|a| a.name != "winograd")
        .map(|a| Table2Row {
            base: a.base_label(),
            fast_multiplies: a.dec.rank(),
            classical_multiplies: a.dec.classical_rank(),
            speedup_percent: a.dec.speedup_per_step() * 100.0,
            provenance: format!("{:?}", a.provenance),
        })
        .collect();
    for apa in [bini_apa(), schonhage_apa()].into_iter().flatten() {
        rows.push(Table2Row {
            base: format!("{}*", apa.base_label()),
            fast_multiplies: apa.dec.rank(),
            classical_multiplies: apa.dec.classical_rank(),
            speedup_percent: apa.dec.speedup_per_step() * 100.0,
            provenance: format!("{:?}", apa.provenance),
        });
    }
    rows.sort_by(|a, b| {
        a.speedup_percent
            .partial_cmp(&b.speedup_percent)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_entries_all_certify_exactly() {
        for alg in catalog() {
            let cert = alg
                .dec
                .certify()
                .unwrap_or_else(|e| panic!("{} failed exact certification: {e}", alg.name));
            assert_eq!(cert.rank, alg.dec.rank());
        }
    }

    #[test]
    fn apa_entries_load_under_principled_acceptance() {
        // Both shipped APA fits satisfy rank-deficit + unique-rounding
        // + header agreement. (schonhage, residual ≈ 0.356, was
        // silently rejected by the old `> 0.25` magic number.)
        let bini = bini_apa().expect("bini APA fit must load");
        let sch = schonhage_apa().expect("schonhage APA fit must load");
        for (alg, max) in [(&bini, 1e-2), (&sch, 0.5)] {
            match alg.provenance {
                Provenance::Apa(r) => assert!(r < max, "{}: residual {r}", alg.name),
                ref other => panic!("unexpected provenance {other:?}"),
            }
            assert!(alg.dec.rank() < alg.dec.classical_rank());
        }
    }

    #[test]
    fn catalog_ranks_beat_classical() {
        for alg in catalog() {
            assert!(
                alg.dec.rank() < alg.dec.classical_rank(),
                "{} rank {} !< {}",
                alg.name,
                alg.dec.rank(),
                alg.dec.classical_rank()
            );
        }
    }

    #[test]
    fn by_name_variants() {
        assert_eq!(by_name("strassen").unwrap().dec.rank(), 7);
        assert_eq!(by_name("winograd").unwrap().dec.rank(), 7);
        let a = by_name("<4,2,4>").unwrap();
        assert_eq!(a.dec.base(), (4, 2, 4));
        a.dec.verify(EXACT_TOL).unwrap();
        let b = by_name("4,2,4").unwrap();
        assert_eq!(b.dec.base(), (4, 2, 4));
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn permuted_entries_share_rank_with_canonical() {
        let canon = by_base(2, 2, 4);
        for target in [(4, 2, 2), (2, 4, 2), (4, 2, 2)] {
            let p = by_base(target.0, target.1, target.2);
            assert_eq!(p.dec.rank(), canon.dec.rank());
            p.dec.verify(EXACT_TOL).unwrap();
        }
    }

    #[test]
    fn known_fixed_ranks() {
        assert_eq!(by_base(2, 2, 3).dec.rank(), 11);
        assert_eq!(by_base(2, 2, 4).dec.rank(), 14);
        assert_eq!(by_base(2, 2, 5).dec.rank(), 18);
        // Flip-graph-searched scheme (crates/algo/data/searched_233_15.alg)
        // and the derived entries it improves.
        assert_eq!(by_base(2, 3, 3).dec.rank(), 15);
        assert!(by_base(3, 3, 3).dec.rank() <= 24);
        assert!(by_base(3, 3, 6).dec.rank() <= 45);
    }

    #[test]
    fn table2_is_sorted_by_speedup_and_nonempty() {
        let rows = table2();
        assert!(rows.len() >= 11);
        for w in rows.windows(2) {
            assert!(w[0].speedup_percent <= w[1].speedup_percent + 1e-12);
        }
    }

    #[test]
    fn schedule_54_composes_to_54_cubed() {
        let sched = schedule_54();
        assert_eq!(sched[0].base(), (3, 3, 6));
        assert_eq!(sched[1].base(), (3, 6, 3));
        assert_eq!(sched[2].base(), (6, 3, 3));
        let m: usize = sched.iter().map(|d| d.m).product();
        let k: usize = sched.iter().map(|d| d.k).product();
        let n: usize = sched.iter().map(|d| d.n).product();
        assert_eq!((m, k, n), (54, 54, 54));
        for d in &sched {
            d.verify(EXACT_TOL).unwrap();
        }
    }

    #[test]
    fn candidates_for_shape_rank_by_fit() {
        // Square problems: a square base case with the best speedup
        // should lead, and every catalog entry must be present.
        let square = candidates_for_shape(1024, 1024, 1024);
        assert_eq!(square.len(), catalog().len());
        let (m, k, n) = square[0].dec.base();
        assert_eq!((m, k), (k, n), "square problem wants a square base");

        // Outer-product shape (large p, r; small q): the leader should
        // have its small dimension in the middle, like ⟨4,2,4⟩.
        let outer = candidates_for_shape(2000, 100, 2000);
        let (m, k, n) = outer[0].dec.base();
        assert!(
            k <= m && k <= n,
            "outer-product shape wants <{m},{k},{n}> with small k"
        );
    }

    #[test]
    fn classical_entry_rank() {
        let c = classical(3, 2, 4);
        assert_eq!(c.dec.rank(), 24);
        assert!(matches!(c.provenance, Provenance::Classical));
    }
}
