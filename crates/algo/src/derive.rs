//! Construction optimizer: derive the lowest-rank algorithm for a base
//! case reachable from a set of verified *seed* algorithms via the
//! paper's own constructions — permutation (Prop. 2.1/2.2),
//! tensor-product composition and direct-sum splitting (§2.3).
//!
//! This is how the catalog fills any Table-2 slot for which no searched
//! coefficient file is available: the result is always a *verified*
//! algorithm, possibly of slightly higher rank than the paper's
//! (recorded in the provenance string and in EXPERIMENTS.md).

use fmm_tensor::compose::{classical, direct_sum_k, direct_sum_m, direct_sum_n, kron_compose};
use fmm_tensor::transform::permute_to;
use fmm_tensor::Decomposition;
use std::collections::HashMap;

/// Upper bound on dimensions explored by the optimizer (the DP
/// enumerates splits below this; compositions can exceed it).
const MAX_DIM: usize = 12;

/// Derive the best construction for `⟨m,k,n⟩` from `seeds`.
///
/// Seeds are used directly and in all dimension permutations. Returns a
/// verified decomposition together with a human-readable derivation.
pub fn derive_best(
    m: usize,
    k: usize,
    n: usize,
    seeds: &[Decomposition],
) -> (Decomposition, String) {
    let mut memo: HashMap<(usize, usize, usize), (usize, Derivation)> = HashMap::new();
    let mut seed_map: HashMap<(usize, usize, usize), (usize, usize)> = HashMap::new();
    // seed_map: base → (rank, seed index); keep the best per base,
    // considering all permutations.
    for (idx, s) in seeds.iter().enumerate() {
        let (sm, sk, sn) = s.base();
        let mut dims = [sm, sk, sn];
        dims.sort_unstable();
        let perms = [
            (dims[0], dims[1], dims[2]),
            (dims[0], dims[2], dims[1]),
            (dims[1], dims[0], dims[2]),
            (dims[1], dims[2], dims[0]),
            (dims[2], dims[0], dims[1]),
            (dims[2], dims[1], dims[0]),
        ];
        for p in perms {
            let e = seed_map.entry(p).or_insert((s.rank(), idx));
            if s.rank() < e.0 {
                *e = (s.rank(), idx);
            }
        }
    }

    let rank = best_rank(m, k, n, &seed_map, &mut memo);
    let derivation = memo
        .get(&(m, k, n))
        .map(|(_, d)| d.clone())
        .unwrap_or(Derivation::Classical);
    let dec = build(m, k, n, &derivation, seeds, &memo);
    debug_assert_eq!(dec.rank(), rank);
    let desc = describe(m, k, n, &derivation, &memo);
    (dec, desc)
}

#[derive(Clone, Debug)]
enum Derivation {
    Classical,
    Seed(usize),
    SplitM(usize),
    SplitK(usize),
    SplitN(usize),
    Kron((usize, usize, usize), (usize, usize, usize)),
}

fn best_rank(
    m: usize,
    k: usize,
    n: usize,
    seeds: &HashMap<(usize, usize, usize), (usize, usize)>,
    memo: &mut HashMap<(usize, usize, usize), (usize, Derivation)>,
) -> usize {
    if let Some((r, _)) = memo.get(&(m, k, n)) {
        return *r;
    }
    // Prime with the classical rank so recursion terminates.
    memo.insert((m, k, n), (m * k * n, Derivation::Classical));
    let mut best = (m * k * n, Derivation::Classical);

    if let Some(&(r, idx)) = seeds.get(&(m, k, n)) {
        if r < best.0 {
            best = (r, Derivation::Seed(idx));
        }
    }

    if m.max(k).max(n) <= MAX_DIM {
        // Direct-sum splits along each dimension.
        for m1 in 1..m {
            let r = best_rank(m1, k, n, seeds, memo) + best_rank(m - m1, k, n, seeds, memo);
            if r < best.0 {
                best = (r, Derivation::SplitM(m1));
            }
        }
        for k1 in 1..k {
            let r = best_rank(m, k1, n, seeds, memo) + best_rank(m, k - k1, n, seeds, memo);
            if r < best.0 {
                best = (r, Derivation::SplitK(k1));
            }
        }
        for n1 in 1..n {
            let r = best_rank(m, k, n1, seeds, memo) + best_rank(m, k, n - n1, seeds, memo);
            if r < best.0 {
                best = (r, Derivation::SplitN(n1));
            }
        }
    }

    // Tensor-product factorizations m = m1·m2, k = k1·k2, n = n1·n2.
    for m1 in divisors(m) {
        for k1 in divisors(k) {
            for n1 in divisors(n) {
                let (m2, k2, n2) = (m / m1, k / k1, n / n1);
                if (m1, k1, n1) == (1, 1, 1) || (m2, k2, n2) == (1, 1, 1) {
                    continue;
                }
                let r = best_rank(m1, k1, n1, seeds, memo) * best_rank(m2, k2, n2, seeds, memo);
                if r < best.0 {
                    best = (r, Derivation::Kron((m1, k1, n1), (m2, k2, n2)));
                }
            }
        }
    }

    memo.insert((m, k, n), best.clone());
    best.0
}

fn divisors(x: usize) -> Vec<usize> {
    (1..=x).filter(|d| x.is_multiple_of(*d)).collect()
}

fn build(
    m: usize,
    k: usize,
    n: usize,
    d: &Derivation,
    seeds: &[Decomposition],
    memo: &HashMap<(usize, usize, usize), (usize, Derivation)>,
) -> Decomposition {
    let sub = |mm: usize, kk: usize, nn: usize| -> Decomposition {
        let der = memo
            .get(&(mm, kk, nn))
            .map(|(_, d)| d.clone())
            .unwrap_or(Derivation::Classical);
        build(mm, kk, nn, &der, seeds, memo)
    };
    match d {
        Derivation::Classical => classical(m, k, n),
        Derivation::Seed(idx) => permute_to(&seeds[*idx], (m, k, n))
            .expect("seed permutation must exist for matching multiset"),
        Derivation::SplitM(m1) => direct_sum_m(&sub(*m1, k, n), &sub(m - m1, k, n)),
        Derivation::SplitK(k1) => direct_sum_k(&sub(m, *k1, n), &sub(m, k - k1, n)),
        Derivation::SplitN(n1) => direct_sum_n(&sub(m, k, *n1), &sub(m, k, n - n1)),
        Derivation::Kron(a, b) => kron_compose(&sub(a.0, a.1, a.2), &sub(b.0, b.1, b.2)),
    }
}

fn describe(
    m: usize,
    k: usize,
    n: usize,
    d: &Derivation,
    memo: &HashMap<(usize, usize, usize), (usize, Derivation)>,
) -> String {
    let rank = memo.get(&(m, k, n)).map_or(m * k * n, |(r, _)| *r);
    match d {
        Derivation::Classical => format!("classical ⟨{m},{k},{n}⟩ (rank {rank})"),
        Derivation::Seed(_) => format!("seed permuted to ⟨{m},{k},{n}⟩ (rank {rank})"),
        Derivation::SplitM(m1) => format!("⟨{m1},{k},{n}⟩ ⊕ ⟨{},{k},{n}⟩ (rank {rank})", m - m1),
        Derivation::SplitK(k1) => format!("⟨{m},{k1},{n}⟩ ⊕ ⟨{m},{},{n}⟩ (rank {rank})", k - k1),
        Derivation::SplitN(n1) => format!("⟨{m},{k},{n1}⟩ ⊕ ⟨{m},{k},{}⟩ (rank {rank})", n - n1),
        Derivation::Kron(a, b) => format!(
            "⟨{},{},{}⟩ ⊗ ⟨{},{},{}⟩ (rank {rank})",
            a.0, a.1, a.2, b.0, b.1, b.2
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardcoded::strassen;

    #[test]
    fn strassen_seed_reproduces_known_ranks() {
        let seeds = vec![strassen()];
        // Hopcroft–Kerr ranks reachable by split/composition alone:
        for (base, want) in [
            ((2, 2, 2), 7),
            ((2, 2, 3), 11),
            ((2, 2, 4), 14),
            ((2, 2, 5), 18),
            ((4, 4, 4), 49),
        ] {
            let (dec, how) = derive_best(base.0, base.1, base.2, &seeds);
            assert_eq!(dec.rank(), want, "base {base:?} via {how}");
            dec.verify(1e-12).unwrap();
        }
    }

    #[test]
    fn permuted_bases_match_canonical_rank() {
        let seeds = vec![strassen()];
        for base in [(3, 2, 2), (2, 3, 2), (4, 2, 2), (5, 2, 2), (2, 5, 2)] {
            let (dec, _) = derive_best(base.0, base.1, base.2, &seeds);
            dec.verify(1e-12).unwrap();
            let mut dims = [base.0, base.1, base.2];
            dims.sort_unstable();
            let (canon, _) = derive_best(dims[0], dims[1], dims[2], &seeds);
            assert_eq!(dec.rank(), canon.rank());
        }
    }

    #[test]
    fn no_seeds_gives_classical() {
        let (dec, how) = derive_best(3, 3, 3, &[]);
        assert_eq!(dec.rank(), 27);
        assert!(how.contains("classical") || how.contains("⊗"));
        dec.verify(1e-12).unwrap();
    }

    #[test]
    fn extra_seed_improves_derived_rank() {
        // With a rank-23 ⟨3,3,3⟩ seed, ⟨3,3,6⟩ should compose to ≤ 46.
        let seeds = vec![strassen()];
        let (no_seed, _) = derive_best(3, 3, 6, &seeds);
        let base = no_seed.rank();
        // fake "searched" seed: classical 3,3,3 has rank 27; pretend a
        // rank-23 seed by using classical anyway — this test only checks
        // monotonicity of the DP, so use the classical seed and require
        // no regression.
        let seeds2 = vec![strassen(), classical(3, 3, 3)];
        let (with_seed, _) = derive_best(3, 3, 6, &seeds2);
        assert!(with_seed.rank() <= base);
        with_seed.verify(1e-12).unwrap();
    }

    #[test]
    fn rectangular_best_known_without_search() {
        let seeds = vec![strassen()];
        // ⟨2,3,3⟩: best split-based rank is 17 (15 needs a searched alg).
        let (dec, _) = derive_best(2, 3, 3, &seeds);
        assert_eq!(dec.rank(), 17);
        dec.verify(1e-12).unwrap();
        // ⟨3,3,3⟩: best derived from Strassen alone is 23? No —
        // split/compose reaches 7+4·... : check it is < 27 and verified.
        let (d333, how) = derive_best(3, 3, 3, &seeds);
        assert!(d333.rank() < 27, "got {} via {how}", d333.rank());
        d333.verify(1e-12).unwrap();
    }
}
