//! Hand-entered algorithms with literature provenance.

use fmm_matrix::Matrix;
use fmm_tensor::Decomposition;

/// Strassen's algorithm (Strassen 1969): ⟨2,2,2⟩ with 7 multiplies and
/// 18 additions. Factors as printed in §2.2.2 of the paper, with W
/// rows reordered to this workspace's row-major `vec(C)` convention.
pub fn strassen() -> Decomposition {
    let u = Matrix::from_rows(&[
        &[1., 0., 1., 0., 1., -1., 0.],
        &[0., 0., 0., 0., 1., 0., 1.],
        &[0., 1., 0., 0., 0., 1., 0.],
        &[1., 1., 0., 1., 0., 0., -1.],
    ]);
    let v = Matrix::from_rows(&[
        &[1., 1., 0., -1., 0., 1., 0.],
        &[0., 0., 1., 0., 0., 1., 0.],
        &[0., 0., 0., 1., 0., 0., 1.],
        &[1., 0., -1., 0., 1., 0., 1.],
    ]);
    let w = Matrix::from_rows(&[
        &[1., 0., 0., 1., -1., 0., 1.], // C11 = M1+M4-M5+M7
        &[0., 0., 1., 0., 1., 0., 0.],  // C12 = M3+M5
        &[0., 1., 0., 1., 0., 0., 0.],  // C21 = M2+M4
        &[1., -1., 1., 0., 0., 1., 0.], // C22 = M1-M2+M3+M6
    ]);
    Decomposition::new(2, 2, 2, u, v, w)
}

/// Strassen–Winograd variant (Winograd): ⟨2,2,2⟩ with 7 multiplies and
/// 15 additions in its hand-scheduled form. The `⟦U,V,W⟧` below encodes
/// the same bilinear algorithm; the executor's CSE recovers part of the
/// shared-intermediate savings automatically.
///
/// Products: `M1=A11·B11`, `M2=A12·B21`,
/// `M3=(A11+A12−A21−A22)·B22`, `M4=A22·(B11−B12−B21+B22)`,
/// `M5=(A21+A22)·(B12−B11)`, `M6=(A21+A22−A11)·(B11−B12+B22)`,
/// `M7=(A11−A21)·(B22−B12)`.
pub fn winograd() -> Decomposition {
    let u = Matrix::from_rows(&[
        &[1., 0., 1., 0., 0., -1., 1.],
        &[0., 1., 1., 0., 0., 0., 0.],
        &[0., 0., -1., 0., 1., 1., -1.],
        &[0., 0., -1., 1., 1., 1., 0.],
    ]);
    let v = Matrix::from_rows(&[
        &[1., 0., 0., 1., -1., 1., 0.],
        &[0., 0., 0., -1., 1., -1., -1.],
        &[0., 1., 0., -1., 0., 0., 0.],
        &[0., 0., 1., 1., 0., 1., 1.],
    ]);
    let w = Matrix::from_rows(&[
        &[1., 1., 0., 0., 0., 0., 0.],  // C11 = M1+M2
        &[1., 0., 1., 0., 1., 1., 0.],  // C12 = M1+M3+M5+M6
        &[1., 0., 0., -1., 0., 1., 1.], // C21 = M1-M4+M6+M7
        &[1., 0., 0., 0., 1., 1., 1.],  // C22 = M1+M5+M6+M7
    ]);
    Decomposition::new(2, 2, 2, u, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strassen_verifies() {
        let s = strassen();
        assert_eq!(s.rank(), 7);
        s.verify(0.0).unwrap();
        assert_eq!(s.addition_count(1e-12), 18);
    }

    #[test]
    fn winograd_verifies() {
        let w = winograd();
        assert_eq!(w.rank(), 7);
        w.verify(0.0).unwrap();
        // The flat (un-scheduled) bilinear form has more raw chain
        // additions than the scheduled 15; it must not exceed Strassen's
        // naive count by much and the W side must show the M1/M6 reuse
        // that scheduling exploits.
        assert!(w.addition_count(1e-12) <= 24);
    }

    #[test]
    fn winograd_differs_from_strassen() {
        assert_ne!(strassen().u, winograd().u);
    }
}
