//! The `.alg` coefficient-file format.
//!
//! A plain-text serialization of a `⟦U,V,W⟧` decomposition:
//!
//! ```text
//! # optional comment lines (provenance notes)
//! m k n rank
//! <m·k rows of U, `rank` whitespace-separated entries each>
//! <k·n rows of V>
//! <m·n rows of W>
//! ```
//!
//! This mirrors the coefficient files the paper's code generator
//! consumes, adapted to the row-major vec convention of this workspace.

use fmm_matrix::Matrix;
use fmm_tensor::Decomposition;
use std::fmt::Write as _;

/// Parse a `.alg` file.
pub fn parse(text: &str) -> Result<Decomposition, String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or("empty .alg file")?;
    let dims: Vec<usize> = header
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|e| format!("bad header token {t:?}: {e}"))
        })
        .collect::<Result<_, String>>()?;
    let [m, k, n, rank] = dims.as_slice() else {
        return Err(format!("header must be `m k n rank`, got {header:?}"));
    };
    let (m, k, n, rank) = (*m, *k, *n, *rank);

    let mut read_matrix = |rows: usize, what: &str| -> Result<Matrix, String> {
        let mut mat = Matrix::zeros(rows, rank);
        for i in 0..rows {
            let line = lines
                .next()
                .ok_or_else(|| format!("truncated file while reading {what} row {i}"))?;
            let vals: Vec<f64> = line
                .split_whitespace()
                .map(|t| t.parse().map_err(|e| format!("bad entry {t:?}: {e}")))
                .collect::<Result<_, String>>()?;
            if vals.len() != rank {
                return Err(format!(
                    "{what} row {i} has {} entries, expected {rank}",
                    vals.len()
                ));
            }
            for (j, v) in vals.into_iter().enumerate() {
                mat[(i, j)] = v;
            }
        }
        Ok(mat)
    };

    let u = read_matrix(m * k, "U")?;
    let v = read_matrix(k * n, "V")?;
    let w = read_matrix(m * n, "W")?;
    Ok(Decomposition::new(m, k, n, u, v, w))
}

/// Extract the machine-checked residual a `.alg` header comment
/// declares (`# … residual 3.561e-1`), if any. APA files must declare
/// one; the catalog loader and the xtask data lint both compare it
/// against a recomputation, so a stale comment is a hard error rather
/// than a misleading note.
pub fn declared_residual(text: &str) -> Option<f64> {
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('#') {
            // Comments only precede the header in this format.
            return None;
        }
        let mut tokens = line.split_whitespace();
        while let Some(tok) = tokens.next() {
            if tok == "residual" {
                return tokens.next()?.parse().ok();
            }
        }
    }
    None
}

/// Serialize a decomposition to the `.alg` format, with an optional
/// provenance comment.
pub fn serialize(d: &Decomposition, comment: Option<&str>) -> String {
    let mut s = String::new();
    if let Some(c) = comment {
        for line in c.lines() {
            writeln!(s, "# {line}").unwrap();
        }
    }
    writeln!(s, "{} {} {} {}", d.m, d.k, d.n, d.rank()).unwrap();
    for mat in [&d.u, &d.v, &d.w] {
        for i in 0..mat.rows() {
            let row: Vec<String> = (0..mat.cols())
                .map(|j| {
                    let x = mat[(i, j)];
                    if x == x.round() && x.abs() < 1e6 {
                        format!("{}", x as i64)
                    } else {
                        format!("{x:.17e}")
                    }
                })
                .collect();
            writeln!(s, "{}", row.join(" ")).unwrap();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_tensor::compose::classical;

    #[test]
    fn round_trip_classical() {
        let d = classical(2, 3, 4);
        let text = serialize(&d, Some("classical test"));
        let back = parse(&text).unwrap();
        assert_eq!(back.base(), (2, 3, 4));
        assert_eq!(back.rank(), 24);
        back.verify(0.0).unwrap();
        assert_eq!(back.u, d.u);
        assert_eq!(back.v, d.v);
        assert_eq!(back.w, d.w);
    }

    #[test]
    fn round_trip_float_entries() {
        let mut d = classical(2, 2, 2);
        d.u[(0, 0)] = 0.123456789012345;
        let text = serialize(&d, None);
        let back = parse(&text).unwrap();
        assert!((back.u[(0, 0)] - 0.123456789012345).abs() < 1e-16);
    }

    #[test]
    fn parse_rejects_truncated() {
        let d = classical(2, 2, 2);
        let text = serialize(&d, None);
        let cut: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(parse(&cut).is_err());
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(parse("2 2 2").is_err());
        assert!(parse("a b c d").is_err());
    }

    #[test]
    fn declared_residual_parses_header_comments() {
        assert_eq!(
            declared_residual("# APA border-rank fit, residual 3.561e-1\n3 3 3 21\n"),
            Some(3.561e-1)
        );
        assert_eq!(declared_residual("# no residual here\n2 2 2 7\n"), None);
        // Only leading comments count — data lines stop the scan.
        assert_eq!(declared_residual("2 2 2 7\n# residual 1.0\n"), None);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let d = classical(1, 1, 1);
        let mut text = String::from("# hello\n\n# world\n");
        text.push_str(&serialize(&d, None));
        parse(&text).unwrap().verify(0.0).unwrap();
    }
}
