//! Exact certification sweep over everything the catalog ships, plus
//! mutation testing: every single-site corruption of every exact
//! scheme must be rejected by `certify()`.
//!
//! This is the integration-level counterpart to
//! `crates/verify/tests/mutation.rs`: that suite drills the certifier
//! on a fixture; this one proves the *shipped data* — hand-coded
//! entries, `.alg` files, derived constructions, the ⟨54,54,54⟩
//! schedule — is certified, and that no mutant of it would be.

use fmm_algo as algo;
use fmm_tensor::Decomposition;
use fmm_verify::{Certify, CertifyError};

/// Every exact decomposition the catalog can produce, with a label.
fn exact_schemes() -> Vec<(String, Decomposition)> {
    let mut out: Vec<(String, Decomposition)> = algo::catalog()
        .into_iter()
        .map(|a| (a.name.clone(), a.dec))
        .collect();
    for (i, dec) in algo::schedule_54().into_iter().enumerate() {
        out.push((format!("schedule_54[{i}]"), dec));
    }
    for (name, text) in algo::embedded_files() {
        if !name.starts_with("apa_") {
            let dec = algo::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            out.push((name.to_string(), dec));
        }
    }
    out
}

#[test]
fn every_exact_scheme_certifies_in_q() {
    let schemes = exact_schemes();
    assert!(schemes.len() >= 12, "catalog unexpectedly small");
    for (name, dec) in &schemes {
        let cert = dec
            .certify()
            .unwrap_or_else(|e| panic!("{name} failed exact ℚ certification: {e}"));
        let (m, k, n) = dec.base();
        assert_eq!(cert.equations, m * k * k * n * m * n, "{name}");
        // Catalog coefficients are the paper's "simple values": small
        // dyadics, denominator at most 8.
        assert!(
            cert.max_denominator <= 8,
            "{name}: denom {}",
            cert.max_denominator
        );
    }
}

#[test]
fn sign_flip_mutants_of_every_scheme_are_rejected() {
    for (name, dec) in exact_schemes() {
        // Flip the first nonzero entry of each factor in turn.
        for which in 0..3 {
            let mut mutant = dec.clone();
            let mat = match which {
                0 => &mut mutant.u,
                1 => &mut mutant.v,
                _ => &mut mutant.w,
            };
            let (rows, cols) = (mat.rows(), mat.cols());
            'found: for i in 0..rows {
                for j in 0..cols {
                    if mat[(i, j)] != 0.0 {
                        mat[(i, j)] = -mat[(i, j)];
                        break 'found;
                    }
                }
            }
            assert!(
                matches!(mutant.certify(), Err(CertifyError::BrentViolation { .. })),
                "{name}: sign-flip mutant in factor {which} passed certification"
            );
        }
    }
}

#[test]
fn perturbation_mutants_of_every_scheme_are_rejected() {
    for (name, dec) in exact_schemes() {
        let mut mutant = dec.clone();
        // A perturbation far below EXACT_TOL: invisible to the float
        // path, fatal to the exact one.
        mutant.u[(0, 0)] += 2.0f64.powi(-40);
        assert!(
            matches!(mutant.certify(), Err(CertifyError::BrentViolation { .. })),
            "{name}: tiny-perturbation mutant passed certification"
        );
        assert!(
            mutant.verify(algo::EXACT_TOL).is_ok(),
            "{name}: perturbation should be below the float tolerance"
        );
    }
}

#[test]
fn dropped_rank_term_mutants_of_every_scheme_are_rejected() {
    for (name, dec) in exact_schemes() {
        let rank = dec.rank();
        // Zeroing a U column kills one rank-one term entirely.
        for r in [0, rank / 2, rank - 1] {
            let mut mutant = dec.clone();
            for i in 0..mutant.u.rows() {
                mutant.u[(i, r)] = 0.0;
            }
            assert!(
                matches!(mutant.certify(), Err(CertifyError::BrentViolation { .. })),
                "{name}: dropped rank-term {r} passed certification"
            );
        }
    }
}

#[test]
fn apa_fits_pass_checks_and_respect_declared_headers() {
    for (file, label) in [("apa_322_10.alg", "bini"), ("apa_333_21.alg", "schonhage")] {
        let text = algo::embedded_files()
            .iter()
            .find(|(n, _)| *n == file)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| panic!("{file} missing from embedded data"));
        let dec = algo::parse(text).unwrap();
        let declared = algo::declared_residual(text)
            .unwrap_or_else(|| panic!("{file} must declare a residual"));
        let report =
            fmm_verify::check_apa_fit(&dec, declared).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(report.rank < report.classical_rank);
        // And the loader agrees end to end.
        let alg = algo::by_name(label).unwrap_or_else(|| panic!("{label} failed to load"));
        assert!(alg.is_apa());
    }
}
