//! Embed every `.alg` coefficient file under `data/` into the crate as
//! a static table, so searched algorithms ship with the library and the
//! loader needs no filesystem access at run time.

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

fn main() {
    let manifest = env::var("CARGO_MANIFEST_DIR").unwrap();
    let data_dir = Path::new(&manifest).join("data");
    println!("cargo:rerun-if-changed={}", data_dir.display());

    let mut names: Vec<String> = Vec::new();
    if let Ok(entries) = fs::read_dir(&data_dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "alg") {
                names.push(path.file_name().unwrap().to_string_lossy().into_owned());
            }
        }
    }
    names.sort();

    let mut out = String::new();
    writeln!(
        out,
        "/// Embedded `.alg` coefficient files: `(file_name, contents)`."
    )
    .unwrap();
    writeln!(out, "pub static EMBEDDED: &[(&str, &str)] = &[").unwrap();
    for name in &names {
        writeln!(
            out,
            "    ({name:?}, include_str!(concat!(env!(\"CARGO_MANIFEST_DIR\"), \"/data/{name}\"))),"
        )
        .unwrap();
    }
    writeln!(out, "];").unwrap();

    let dest = Path::new(&env::var("OUT_DIR").unwrap()).join("embedded.rs");
    fs::write(dest, out).unwrap();
}
