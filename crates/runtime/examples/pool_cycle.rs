//! Stress check: many short-lived pools must start, serve work, and
//! shut down cleanly (workers joined, no leaked threads or wakeups) —
//! the lifecycle the bench harness exercises by building one pool per
//! measurement.
//!
//! Run with: `cargo run --release -p fmm-runtime --example pool_cycle`

use fmm_runtime::{join, ThreadPoolBuilder};

fn main() {
    for i in 0..50i64 {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let v = pool.install(|| {
            let (a, b) = join(|| i * 2, || i * 3);
            a + b
        });
        assert_eq!(v, i * 5);
        drop(pool);
    }
    println!("50 pool create/use/drop cycles OK");
}
