//! Type-erased jobs and completion latches.
//!
//! A [`JobRef`] is two words — a data pointer and an execute function —
//! small enough to live in a deque slot. The pointee is either a
//! [`StackJob`] (borrowed from the stack frame of a blocked `join` or
//! `install` caller, valid because that frame cannot unwind until the
//! job's latch is set) or a [`HeapJob`] (a boxed `scope` spawn, freed by
//! its own execution).

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Erased pointer to a job plus the function that runs it.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef crosses threads by design; the underlying Job impls
// are required (by the unsafe contract of `new`) to be Send-safe.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `data` must stay valid until the job executes exactly once.
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        JobRef {
            data: data as *const (),
            // SAFETY: `ptr` is the `data` stored alongside this thunk,
            // which the caller guarantees is a live `*const T` until
            // the single execution.
            execute_fn: |ptr| unsafe { T::execute(ptr as *const T) },
        }
    }

    /// Run the job. Consumes the (copy of the) ref.
    ///
    /// # Safety
    /// Must be called exactly once per underlying job.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }

    /// Split into two words for atomic deque slots.
    pub(crate) fn to_words(self) -> (usize, usize) {
        (self.data as usize, self.execute_fn as usize)
    }

    /// Rebuild from deque-slot words.
    ///
    /// # Safety
    /// The words must come from [`JobRef::to_words`] of a live job.
    pub(crate) unsafe fn from_words(data: usize, exec: usize) -> JobRef {
        JobRef {
            data: data as *const (),
            // SAFETY: `exec` is a fn pointer previously cast to usize by
            // `to_words`; round-tripping through usize is lossless.
            execute_fn: unsafe { std::mem::transmute::<usize, unsafe fn(*const ())>(exec) },
        }
    }

    /// Identity comparison (used by `join` to recognize its own job).
    /// The data pointer alone identifies a live job: it addresses a
    /// unique `StackJob`/`HeapJob` allocation.
    pub(crate) fn same_job(self, other: JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
    }
}

/// A unit of work the pool can execute through an erased pointer.
pub(crate) trait Job {
    /// # Safety
    /// Called exactly once, with `this` valid for the call's duration.
    unsafe fn execute(this: *const Self);
}

/// Outcome slot of a [`StackJob`].
pub(crate) enum JobResult<R> {
    /// Not executed yet.
    None,
    /// Completed with a value.
    Ok(R),
    /// The closure panicked; payload preserved for the owner to rethrow.
    Panic(Box<dyn Any + Send>),
}

/// A job whose closure, result and latch live on the spawning thread's
/// stack. Safe because the spawner blocks (stealing work or parked on a
/// condvar) until the latch is set, so the frame outlives the job.
pub(crate) struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    pub(crate) fn new(latch: L, func: F) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    /// # Safety
    /// The returned ref must execute before `self` drops.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        // SAFETY: the caller keeps `self` alive until execution (this
        // function's own contract).
        unsafe { JobRef::new(self) }
    }

    /// Reclaim the closure when the job was never handed to the pool
    /// (deque-full fallback) so the caller can run it directly.
    pub(crate) fn take_func(&self) -> F {
        // SAFETY: the closure cell is touched exactly once — either here
        // (deque-full fallback) or in `execute`, never both, and never
        // concurrently: until execution the job belongs to one thread.
        unsafe { (*self.func.get()).take() }.expect("job closure already taken")
    }

    /// Consume the result after the latch is set: returns the value or
    /// rethrows the job's panic on the caller's thread.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::Ok(r) => r,
            JobResult::Panic(p) => panic::resume_unwind(p),
            JobResult::None => unreachable!("StackJob result taken before execution"),
        }
    }
}

impl<L: Latch, F, R> Job for StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    unsafe fn execute(this: *const Self) {
        // SAFETY: `execute` is called exactly once while the spawner's
        // frame (which owns `this`) is blocked on the latch, so the
        // pointee is live and unaliased-for-writes.
        let this = unsafe { &*this };
        let func = this.take_func();
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        };
        // SAFETY: only the executor writes the result cell, once, before
        // the latch releases the (blocked) reader.
        unsafe { *this.result.get() = result };
        // Setting the latch releases the spawner, which may deallocate
        // the frame — it must be the last touch of `this`.
        this.latch.set();
    }
}

/// A boxed job for `scope` spawns, which outlive their spawn call site
/// (but never the scope itself). Executing frees the box.
pub(crate) struct HeapJob<F: FnOnce()> {
    func: F,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    /// Box the closure and erase it into a [`JobRef`].
    pub(crate) fn into_job_ref(func: F) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        // SAFETY: the raw pointer comes from `Box::into_raw`, so it is
        // valid until `execute` reclaims the box (exactly once).
        unsafe { JobRef::new(Box::into_raw(boxed)) }
    }
}

impl<F: FnOnce()> Job for HeapJob<F> {
    unsafe fn execute(this: *const Self) {
        // SAFETY: `this` came from `Box::into_raw` in `into_job_ref` and
        // execute runs once, so reclaiming the box here is sound.
        let boxed = unsafe { Box::from_raw(this as *mut Self) };
        // Panic handling is the closure's responsibility (scope wraps
        // its tasks); the box must still free on unwind.
        (boxed.func)();
    }
}

/// Completion signal a blocked spawner waits on.
pub(crate) trait Latch {
    /// Mark complete and wake any waiter. May be the last operation on
    /// the memory that owns the latch.
    fn set(&self);
}

/// Latch for waiters that are themselves pool workers: they poll
/// [`SpinLatch::probe`] between stealing other work, so `set` only
/// needs to flip the flag (plus a wake in case the waiter's pool went
/// to sleep — see `Registry::wait_until`).
pub(crate) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

impl Latch for &SpinLatch {
    fn set(&self) {
        (*self).set()
    }
}

/// Latch for external (non-worker) waiters: a mutex/condvar pair the
/// waiter parks on, since it has no queue to steal from.
pub(crate) struct LockLatch {
    state: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self) {
        let mut done = self.state.lock().unwrap();
        while !*done {
            done = self.cond.wait(done).unwrap();
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock().unwrap();
        *done = true;
        self.cond.notify_all();
    }
}

impl Latch for &LockLatch {
    fn set(&self) {
        (*self).set()
    }
}
