//! Fixed-capacity Chase–Lev work-stealing deque.
//!
//! The owner pushes and pops at the *bottom* (LIFO, which keeps the
//! recursive executor cache-hot); thieves steal from the *top* (FIFO,
//! which hands them the oldest — and for recursive decompositions the
//! largest — pending task, exactly the property the BFS scheme's load
//! balance relies on). Memory ordering follows Lê, Pop, Cohen &
//! Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
//! Models" (PPoPP 2013).
//!
//! The buffer is fixed-size rather than growable: a full deque makes
//! [`Deque::push`] return the job to the caller, who runs it inline.
//! That trades a rare loss of parallelism for never having to reclaim
//! a reallocated buffer under concurrent steals. A slot may be
//! overwritten by a `push` while a slow thief is still reading it; the
//! thief's compare-exchange on `top` then fails and the torn value is
//! discarded without being executed.

use crate::job::JobRef;
use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

/// Capacity in jobs. The executor spawns at most `rank` tasks per
/// recursion node (≤ 40 for every catalog algorithm) and the batch API
/// one per problem, so 8192 pending jobs per worker is far beyond any
/// real schedule; overflow degrades to inline execution, not an error.
const CAPACITY: usize = 8192;

/// One slot: a [`JobRef`] split into its two words so concurrent
/// accesses are data-race-free atomic loads/stores. Tearing between the
/// words is tolerated because a racing thief always revalidates with a
/// compare-exchange on `top` before executing what it read.
struct Slot {
    data: AtomicUsize,
    exec: AtomicUsize,
}

/// Result of a steal attempt.
pub(crate) enum Steal {
    /// Got a job.
    Success(JobRef),
    /// Deque was observed empty.
    Empty,
    /// Lost a race; worth retrying.
    Retry,
}

/// A single-owner, multi-thief work-stealing deque.
pub(crate) struct Deque {
    /// Thief end. Monotonically increasing.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it.
    bottom: AtomicIsize,
    buf: Box<[Slot]>,
}

impl Deque {
    pub(crate) fn new() -> Self {
        let buf = (0..CAPACITY)
            .map(|_| Slot {
                data: AtomicUsize::new(0),
                exec: AtomicUsize::new(0),
            })
            .collect();
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf,
        }
    }

    #[inline]
    fn slot(&self, index: isize) -> &Slot {
        &self.buf[(index as usize) & (CAPACITY - 1)]
    }

    /// Owner-only: push a job at the bottom. Returns the job back when
    /// the deque is full (caller should execute it inline).
    pub(crate) fn push(&self, job: JobRef) -> Result<(), JobRef> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= CAPACITY as isize {
            return Err(job);
        }
        let (data, exec) = job.to_words();
        let slot = self.slot(b);
        slot.data.store(data, Ordering::Relaxed);
        slot.exec.store(exec, Ordering::Relaxed);
        // Publish the slot before the new bottom becomes visible.
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop the most recently pushed job (LIFO).
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the bottom decrement against thieves'
        // top/bottom reads: either we see their increment of `top` or
        // they see our decrement of `bottom` — never both miss.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let slot = self.slot(b);
            let data = slot.data.load(Ordering::Relaxed);
            let exec = slot.exec.load(Ordering::Relaxed);
            // SAFETY: `t <= b` means slot `b` holds words a push stored
            // and no thief has claimed (the CAS below settles the t == b
            // race before the job is returned).
            let job = unsafe { JobRef::from_words(data, exec) };
            if t == b {
                // Last element: race the thieves for it.
                if self
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                    return None;
                }
                self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            }
            Some(job)
        } else {
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            None
        }
    }

    /// Thief: take the oldest job (FIFO).
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let slot = self.slot(t);
            let data = slot.data.load(Ordering::Relaxed);
            let exec = slot.exec.load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry;
            }
            // SAFETY: the successful CAS on `top` makes this thief the
            // unique claimant of slot `t`, whose words were stored by a
            // push that happens-before the fence above.
            Steal::Success(unsafe { JobRef::from_words(data, exec) })
        } else {
            Steal::Empty
        }
    }

    /// Cheap emptiness hint for the sleep heuristic (racy by nature).
    pub(crate) fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        b.wrapping_sub(t) <= 0
    }
}
