//! `fmm-runtime`: a real work-stealing scheduler for the fast-matmul
//! workspace.
//!
//! The paper's §4 parallel schemes (DFS, BFS, HYBRID) assume a runtime
//! in which spawned tasks are *stolen* by idle threads — OpenMP tasks
//! in the original, rayon in this reproduction's source code. The build
//! environment has no crates.io access, so this crate implements the
//! scheduler in-tree:
//!
//! * one OS thread per unit of pool width, each owning a fixed-capacity
//!   **Chase–Lev deque** (LIFO local push/pop for cache locality, FIFO
//!   steal so thieves take the oldest — largest — task);
//! * a FIFO **injector** for work handed in by non-pool threads;
//! * **parking**: idle workers sleep on a condvar and are woken when
//!   work is pushed, so an idle pool costs ~nothing;
//! * **work-stealing waits**: a worker blocked on a [`join`]/[`scope`]
//!   executes other tasks instead of sleeping, which makes arbitrarily
//!   nested parallelism deadlock-free on a fixed thread count;
//! * unwind-safe accounting: a panicking task neither leaks its scope's
//!   task count nor deadlocks the waiters — panics are captured and
//!   rethrown on the spawning side, as in rayon.
//!
//! The public surface mirrors the subset of rayon the workspace uses —
//! [`join`], [`scope`], [`spawn`], [`ThreadPool::install`],
//! [`current_num_threads`], and [`iter`]'s `par_chunks[_mut]` — so
//! `vendor/rayon` is a thin facade over this crate and the documented
//! one-line swap to the real rayon still holds.
//!
//! Two observability hooks go beyond rayon, feeding
//! `fmm_core::ExecStatsSnapshot`:
//!
//! * [`steal_count`] — monotonic process-wide count of deque steals
//!   (diff around a region to attribute steals to it);
//! * [`worker_index`] — which worker the current thread is, letting
//!   callers count distinct participating threads.
//!
//! The default (global) pool width honors the `FMM_THREADS` environment
//! variable, falling back to the hardware thread count; CI runs the
//! suite at both `FMM_THREADS=1` and `FMM_THREADS=4`.

mod deque;
pub mod iter;
mod job;
mod registry;

pub use registry::{
    current_num_threads, default_num_threads, join, scope, spawn, steal_count, worker_index,
    JobHandle, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder, THREADS_ENV,
};

#[cfg(test)]
mod tests {
    use super::*;
    use iter::{IndexedParallelIterator, ParallelSlice, ParallelSliceMut};
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn nested_joins_compute_fib() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(18), 2584);
    }

    #[test]
    fn scope_runs_every_task() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_tasks_can_spawn_nested_tasks() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        join(|| (), || panic!("boom"));
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn scope_propagates_task_panics() {
        scope(|s| {
            s.spawn(|_| panic!("task boom"));
        });
    }

    #[test]
    fn panic_does_not_poison_the_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        for trial in 0..4 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.install(|| {
                    scope(|s| {
                        s.spawn(|_| panic!("die {trial}"));
                        s.spawn(|_| ());
                    })
                })
            }));
            assert!(r.is_err(), "panic must propagate out of install");
            // The pool must still do real work afterwards.
            let sum = pool.install(|| {
                let (a, b) = join(|| 21, || 21);
                a + b
            });
            assert_eq!(sum, 42);
        }
    }

    #[test]
    fn install_reports_pool_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(pool.current_num_threads(), 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn nested_installs_on_same_pool_run_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let n = pool.install(|| pool.install(current_num_threads));
        assert_eq!(n, 2);
    }

    #[test]
    fn width_one_pool_is_deterministically_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let order = Mutex::new(Vec::new());
        let order_ref = &order;
        pool.install(|| {
            scope(|s| {
                for i in 0..10 {
                    s.spawn(move |_| order_ref.lock().unwrap().push(i));
                }
            });
        });
        // One worker pops its own LIFO deque: strict reverse order.
        assert_eq!(*order.lock().unwrap(), (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn steals_happen_with_many_workers() {
        // On a single hardware thread the four workers time-slice and a
        // worker can drain its own deque before anyone wakes to steal,
        // so the assertion below would be flaky. Skip, as the scaling
        // integration tests do.
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        if hw < 2 {
            eprintln!("steals_happen_with_many_workers: skipped ({hw} hardware threads < 2)");
            return;
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let before = steal_count();
        // Spawn enough slow-ish tasks that idle workers must steal.
        for _ in 0..8 {
            pool.install(|| {
                scope(|s| {
                    for _ in 0..64 {
                        s.spawn(|_| {
                            let mut x = 0u64;
                            for i in 0..50_000 {
                                x = x.wrapping_add(i * i);
                            }
                            std::hint::black_box(x);
                        });
                    }
                });
            });
        }
        assert!(
            steal_count() > before,
            "4 workers × 512 tasks must produce at least one steal"
        );
    }

    #[test]
    fn worker_index_is_set_only_on_workers() {
        assert_eq!(worker_index(), None);
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let idx = pool.install(worker_index);
        assert!(matches!(idx, Some(0 | 1)));
    }

    #[test]
    fn par_chunks_visits_everything_in_parallel() {
        let data: Vec<u64> = (0..10_000).collect();
        let sum = AtomicUsize::new(0);
        data.par_chunks(97).for_each(|chunk| {
            let s: u64 = chunk.iter().sum();
            sum.fetch_add(s as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_chunks_mut_zip_matches_sequential_triad() {
        let a: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..5000).map(|i| (i * 2) as f64).collect();
        let mut c = vec![0.0f64; 5000];
        c.par_chunks_mut(64)
            .zip(a.par_chunks(64).zip(b.par_chunks(64)))
            .for_each(|(cc, (aa, bb))| {
                for i in 0..cc.len() {
                    cc[i] = aa[i] + 3.0 * bb[i];
                }
            });
        for i in 0..5000 {
            assert_eq!(c[i], a[i] + 3.0 * b[i]);
        }
    }

    #[test]
    fn detached_spawn_completes() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        spawn(move || {
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(7));
    }

    #[test]
    fn scope_returns_body_value_after_tasks() {
        let done = AtomicU32::new(0);
        let v = scope(|s| {
            s.spawn(|_| {
                done.fetch_add(1, Ordering::Relaxed);
            });
            "body result"
        });
        assert_eq!(v, "body result");
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spawn_handle_returns_the_job_result() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let handle = pool.spawn(|| {
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert_eq!(handle.wait(), 499_500);
    }

    #[test]
    fn spawn_handle_is_done_flips_after_completion() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let handle = pool.spawn(|| 7);
        // Drain the pool with a barrier job so the spawned job must
        // have run before we probe.
        pool.install(|| ());
        assert!(handle.is_done());
        assert_eq!(handle.wait(), 7);
    }

    #[test]
    #[should_panic(expected = "handle boom")]
    fn spawn_handle_wait_rethrows_the_job_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let handle = pool.spawn(|| -> () { panic!("handle boom") });
        handle.wait();
    }

    #[test]
    fn spawn_handle_panic_does_not_poison_the_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let handle = pool.spawn(|| -> u32 { panic!("die") });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(r.is_err());
        assert_eq!(pool.install(|| 41 + 1), 42);
    }

    #[test]
    fn waiting_on_a_handle_from_a_pool_worker_helps_instead_of_blocking() {
        // One worker: if the waiting worker blocked instead of
        // executing queued jobs, this would deadlock (the handle's job
        // can only run on the thread doing the waiting).
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let pool = std::sync::Arc::new(pool);
        let inner = std::sync::Arc::clone(&pool);
        let outer = pool.spawn(move || {
            let h = inner.spawn(|| 21);
            h.wait() * 2
        });
        assert_eq!(outer.wait(), 42);
    }

    #[test]
    fn dropped_handles_still_run_their_jobs() {
        use std::sync::mpsc;
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (tx, rx) = mpsc::channel();
        for i in 0..16 {
            let tx = tx.clone();
            drop(pool.spawn(move || tx.send(i).unwrap()));
        }
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn pool_dropped_from_its_own_worker_detaches_instead_of_self_joining() {
        // A detached job owning the last Arc of its own pool: when the
        // job finishes, the pool drops on the worker executing it. The
        // drop must not try to join that worker (self-join errors and
        // would poison the job); the handle must still deliver.
        let pool = std::sync::Arc::new(ThreadPoolBuilder::new().num_threads(2).build().unwrap());
        let inner = std::sync::Arc::clone(&pool);
        let handle = pool.spawn(move || {
            drop(inner);
            5
        });
        drop(pool); // whichever side drops last frees the pool
        assert_eq!(handle.wait(), 5);
    }

    #[test]
    fn many_concurrent_handles_complete_with_correct_results() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let handles: Vec<_> = (0..64u64).map(|i| pool.spawn(move || i * i)).collect();
        let got: Vec<u64> = handles.into_iter().map(|h| h.wait()).collect();
        let want: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn deep_join_recursion_inside_small_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let span = range.end - range.start;
            if span <= 32 {
                return range.sum();
            }
            let mid = range.start + span / 2;
            let (a, b) = join(|| sum(range.start..mid), move || sum(mid..range.end));
            a + b
        }
        let total = pool.install(|| sum(0..100_000));
        assert_eq!(total, 100_000 * 99_999 / 2);
    }
}
