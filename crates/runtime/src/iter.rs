//! Minimal indexed parallel iterators: `par_chunks` / `par_chunks_mut`
//! with genuinely parallel `for_each`, plus `zip`.
//!
//! This is the small slice of rayon's `IndexedParallelIterator` the
//! workspace uses. Driving an iterator recursively splits it in half
//! with [`crate::join`] until either the pieces outnumber the pool
//! (oversplitting ~2× per worker so the deques always hold stealable
//! work) or a piece shrinks to one item, then runs the leaf
//! sequentially on whichever worker ends up owning it.

/// An exactly-sized, splittable parallel iterator.
pub trait IndexedParallelIterator: Sized + Send {
    /// Items handed to `for_each` (e.g. one chunk per item).
    type Item: Send;

    /// Remaining item count.
    fn len(&self) -> usize;

    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into the first `index` items and the rest.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Drain sequentially on the current thread (the leaf case).
    fn drive_seq<F: FnMut(Self::Item)>(self, f: &mut F);

    /// Pair items with a second iterator's, truncating to the shorter.
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Apply `f` to every item, in parallel across the current pool.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        // ~2 pieces per worker keeps every deque stocked for stealing
        // without drowning in scheduling overhead.
        let pieces = (crate::current_num_threads() * 2).max(1);
        drive(self, &f, pieces);
    }
}

fn drive<I, F>(iter: I, f: &F, pieces: usize)
where
    I: IndexedParallelIterator,
    F: Fn(I::Item) + Sync + Send,
{
    if pieces <= 1 || iter.len() <= 1 {
        let mut apply = |item| f(item);
        iter.drive_seq(&mut apply);
        return;
    }
    let mid = iter.len() / 2;
    let (left, right) = iter.split_at(mid);
    let right_pieces = pieces / 2;
    crate::join(
        || drive(left, f, pieces - right_pieces),
        || drive(right, f, right_pieces),
    );
}

/// Parallel iterator over `chunk_size`-sized pieces of a shared slice.
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> IndexedParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk_size).min(self.slice.len());
        let (left, right) = self.slice.split_at(elems);
        (
            ParChunks {
                slice: left,
                chunk_size: self.chunk_size,
            },
            ParChunks {
                slice: right,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn drive_seq<F: FnMut(Self::Item)>(self, f: &mut F) {
        for chunk in self.slice.chunks(self.chunk_size) {
            f(chunk);
        }
    }
}

/// Parallel iterator over `chunk_size`-sized pieces of a mutable slice.
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> IndexedParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk_size).min(self.slice.len());
        let (left, right) = self.slice.split_at_mut(elems);
        (
            ParChunksMut {
                slice: left,
                chunk_size: self.chunk_size,
            },
            ParChunksMut {
                slice: right,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn drive_seq<F: FnMut(Self::Item)>(self, f: &mut F) {
        for chunk in self.slice.chunks_mut(self.chunk_size) {
            f(chunk);
        }
    }
}

/// Lock-step pairing of two indexed parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn drive_seq<F: FnMut(Self::Item)>(self, f: &mut F) {
        // Lock-step by peeling one item off each side per round —
        // allocation-free, since leaves run inside timed hot loops.
        let mut rest = self;
        for _ in 0..rest.len() {
            let (head, tail) = rest.split_at(1);
            rest = tail;
            let mut item_a = None;
            head.a.drive_seq(&mut |item| item_a = Some(item));
            let mut item_b = None;
            head.b.drive_seq(&mut |item| item_b = Some(item));
            if let (Some(a), Some(b)) = (item_a, item_b) {
                f((a, b));
            }
        }
    }
}

/// `par_chunks` for shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-element pieces.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// `par_chunks_mut` for mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `chunk_size`-element mutable pieces.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}
