//! The worker registry: spawned threads, their deques, the global
//! injector, and the sleep machinery, plus the blocking primitives
//! (`join`, `scope`, `install`) built on top of them.
//!
//! Scheduling policy (the rayon/Cilk discipline):
//!
//! 1. a worker runs jobs popped LIFO from its own deque;
//! 2. when that is empty it takes from the FIFO injector (work handed
//!    in by non-worker threads);
//! 3. then it tries to steal FIFO from the other workers' deques;
//! 4. after repeated failure it parks on a condvar until new work is
//!    announced.
//!
//! Blocked operations never sleep while work might exist: a worker
//! waiting on a `join`/`scope` latch keeps executing other jobs
//! (work-stealing wait), which is what lets arbitrarily nested
//! parallelism run on a fixed thread count without deadlock.

use crate::deque::{Deque, Steal};
use crate::job::{HeapJob, JobRef, LockLatch, SpinLatch, StackJob};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Process-wide count of successful deque-to-deque steals. This is the
/// observable the executor surfaces as `ExecStatsSnapshot::tasks_stolen`
/// so tests can assert the scheduler actually balances load.
static STEALS: AtomicU64 = AtomicU64::new(0);

/// Total jobs taken from another worker's deque since process start,
/// across every pool. Monotonic; diff two readings to attribute steals
/// to a region of execution.
pub fn steal_count() -> u64 {
    STEALS.load(Ordering::Relaxed)
}

thread_local! {
    /// `(registry address, worker index)` of the current thread, when
    /// it is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Index of the current thread inside its pool, or `None` on threads
/// that are not pool workers.
pub fn worker_index() -> Option<usize> {
    WORKER.with(|w| w.get()).map(|(_, i)| i)
}

/// Environment variable overriding the default pool width.
pub const THREADS_ENV: &str = "FMM_THREADS";

/// Default pool width: `FMM_THREADS` when set to a positive integer,
/// otherwise the hardware thread count.
pub fn default_num_threads() -> usize {
    if let Ok(val) = std::env::var(THREADS_ENV) {
        if let Ok(n) = val.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub(crate) struct Registry {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Lock-free emptiness hint for `injector`.
    injector_len: AtomicUsize,
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
    /// Workers currently parked (or about to park) on `sleep_cond`.
    sleepers: AtomicUsize,
    terminating: AtomicBool,
    width: usize,
}

impl Registry {
    fn new(width: usize) -> Self {
        Registry {
            deques: (0..width).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            terminating: AtomicBool::new(false),
            width,
        }
    }

    fn addr(&self) -> usize {
        self as *const Registry as usize
    }

    /// Is the current thread a worker of this registry? Returns its
    /// index if so.
    fn current_index(&self) -> Option<usize> {
        match WORKER.with(|w| w.get()) {
            Some((addr, index)) if addr == self.addr() => Some(index),
            _ => None,
        }
    }

    fn has_work(&self) -> bool {
        self.injector_len.load(Ordering::Relaxed) > 0 || self.deques.iter().any(|d| !d.is_empty())
    }

    /// Wake parked workers because new work exists. Cheap when nobody
    /// sleeps (one fenced load).
    fn notify_work(&self) {
        // Store-buffer pairing with `idle_sleep`: our work became
        // visible (push) before this fence; a worker that incremented
        // `sleepers` before our load re-checks `has_work` after its own
        // fence. One of the two must observe the other.
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_mutex.lock().unwrap();
            self.sleep_cond.notify_all();
        }
    }

    /// Push onto the current worker's own deque; `Err` gives the job
    /// back when the deque is full.
    fn push_local(&self, index: usize, job: JobRef) -> Result<(), JobRef> {
        let res = self.deques[index].push(job);
        if res.is_ok() {
            self.notify_work();
        }
        res
    }

    /// Hand work in from outside (or across pools): FIFO injector.
    fn inject(&self, job: JobRef) {
        {
            let mut q = self.injector.lock().unwrap();
            q.push_back(job);
            self.injector_len.store(q.len(), Ordering::Relaxed);
        }
        self.notify_work();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        if self.injector_len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut q = self.injector.lock().unwrap();
        let job = q.pop_front();
        self.injector_len.store(q.len(), Ordering::Relaxed);
        job
    }

    /// One full work-finding pass for worker `index`: own deque, then
    /// the injector, then one steal sweep over the other workers.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[index].pop() {
            return Some(job);
        }
        if let Some(job) = self.pop_injected() {
            return Some(job);
        }
        self.steal_work(index)
    }

    /// Steal sweep: scan the other deques (starting after ourselves so
    /// thieves spread out), retrying victims that report contention.
    fn steal_work(&self, index: usize) -> Option<JobRef> {
        if self.width <= 1 {
            return None;
        }
        let mut contended = true;
        while std::mem::take(&mut contended) {
            for k in 1..self.width {
                let victim = (index + k) % self.width;
                match self.deques[victim].steal() {
                    Steal::Success(job) => {
                        STEALS.fetch_add(1, Ordering::Relaxed);
                        fmm_trace::event(fmm_trace::SpanKind::Steal, victim as u64);
                        return Some(job);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
        }
        None
    }

    /// Park until work is announced. The advertise-then-recheck
    /// protocol (fenced against `notify_work`) makes the wakeup
    /// reliable; the long timeout is only a belt-and-braces bound so an
    /// idle pool costs ~2 wakeups/s/worker rather than a busy poll.
    fn idle_sleep(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);
        if !self.has_work() && !self.terminating.load(Ordering::Acquire) {
            let guard = self.sleep_mutex.lock().unwrap();
            if !self.has_work() && !self.terminating.load(Ordering::Acquire) {
                let t_park = fmm_trace::span_start();
                let _ = self
                    .sleep_cond
                    .wait_timeout(guard, Duration::from_millis(500));
                fmm_trace::span_end(fmm_trace::SpanKind::Park, t_park, 0);
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Work-stealing wait: keep the CPU busy with other jobs until the
    /// latch fires. Only callable on a worker of this registry.
    fn wait_until(&self, index: usize, latch: &SpinLatch) {
        self.wait_while(index, || !latch.probe());
    }

    /// The work-stealing wait discipline shared by every blocked
    /// worker-side wait (`join` latches, [`JobHandle::wait`]): execute
    /// other jobs while `probe` holds, spinning briefly then yielding
    /// when none exist. Only callable on a worker of this registry.
    fn wait_while(&self, index: usize, probe: impl Fn() -> bool) {
        let mut idle_spins = 0u32;
        while probe() {
            if let Some(job) = self.find_work(index) {
                // SAFETY: `find_work` yields each queued job exactly
                // once, and a queued job's pointee is alive until it
                // runs (StackJob frames block; HeapJobs own themselves).
                unsafe { job.execute() };
                idle_spins = 0;
            } else if idle_spins < 32 {
                idle_spins += 1;
                std::hint::spin_loop();
            } else {
                // Let the thread that holds our awaited work run
                // (essential on machines with fewer cores than
                // workers).
                std::thread::yield_now();
            }
        }
    }

    /// Run `op` on a worker of this registry, blocking the calling
    /// thread until it completes. No-op indirection when the caller
    /// already is one.
    fn in_worker<OP, R>(self: &Arc<Registry>, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        if self.current_index().is_some() {
            return op();
        }
        let latch = LockLatch::new();
        let job = StackJob::new(&latch, op);
        // SAFETY: this frame blocks on the latch until the job ran.
        let job_ref = unsafe { job.as_job_ref() };
        self.inject(job_ref);
        latch.wait();
        job.into_result()
    }

    fn terminate(&self) {
        self.terminating.store(true, Ordering::Release);
        let _guard = self.sleep_mutex.lock().unwrap();
        self.sleep_cond.notify_all();
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((registry.addr(), index))));
    fmm_trace::set_thread_label(&format!("fmm-worker-{index}"));
    loop {
        if let Some(job) = registry.find_work(index) {
            // Jobs handle their own panics (StackJob catches for the
            // owner; scope tasks catch for the scope), so an unwind
            // escaping here would indicate a runtime bug and is allowed
            // to take the worker down loudly.
            // SAFETY: `find_work` hands out each job once, live until run.
            unsafe { job.execute() };
            continue;
        }
        if registry.terminating.load(Ordering::Acquire) && !registry.has_work() {
            break;
        }
        registry.idle_sleep();
    }
}

/// Error from [`ThreadPoolBuilder::build`] (thread spawn failure).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with the default width
    /// ([`default_num_threads`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the pool width; `0` means "default", as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Spawn the worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = self.num_threads.unwrap_or_else(default_num_threads).max(1);
        let registry = Arc::new(Registry::new(width));
        let mut handles = Vec::with_capacity(width);
        for index in 0..width {
            let reg = Arc::clone(&registry);
            let handle = std::thread::Builder::new()
                .name(format!("fmm-worker-{index}"))
                .spawn(move || worker_main(reg, index))
                .map_err(|e| ThreadPoolBuildError { msg: e.to_string() })?;
            handles.push(handle);
        }
        Ok(ThreadPool { registry, handles })
    }
}

/// A work-stealing thread pool: one OS thread per unit of width, each
/// with a private Chase–Lev deque, sharing a FIFO injector.
///
/// Dropping the pool drains outstanding work and joins the workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.width)
            .finish()
    }
}

impl ThreadPool {
    /// Run `op` inside the pool: `join`/`scope`/`spawn` calls made from
    /// `op` schedule onto this pool's workers, and
    /// [`current_num_threads`] reports this pool's width. The calling
    /// thread blocks until `op` returns; panics propagate.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        self.registry.in_worker(op)
    }

    /// This pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.registry.width
    }

    /// Detached spawn with a completion latch: schedule `op` onto this
    /// pool and return immediately with a [`JobHandle`] that
    /// [`JobHandle::wait`] later joins on. Called from a worker of this
    /// pool, the job goes to that worker's deque (cheap, stealable);
    /// from any other thread it goes through the injector.
    ///
    /// Unlike [`join`]/[`scope`], the closure must be `'static`: the
    /// spawning frame does not block, so the job can outlive it.
    pub fn spawn<F, T>(&self, op: F) -> JobHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let state = Arc::new(HandleState {
            result: Mutex::new(None),
            cond: Condvar::new(),
            done: AtomicBool::new(false),
        });
        let job_state = Arc::clone(&state);
        let job = HeapJob::into_job_ref(move || {
            let outcome = panic::catch_unwind(AssertUnwindSafe(op));
            let mut slot = job_state.result.lock().unwrap();
            *slot = Some(outcome);
            // Publish under the lock, before notify: an external waiter
            // holding the lock either sees the result or reaches the
            // condvar before this notify fires.
            job_state.done.store(true, Ordering::Release);
            job_state.cond.notify_all();
        });
        match self.registry.current_index() {
            Some(index) => {
                if let Err(job) = self.registry.push_local(index, job) {
                    // Deque full (pathological fan-out): run inline.
                    // SAFETY: the rejected ref is this HeapJob's only
                    // copy; executing it here is its single run.
                    unsafe { job.execute() };
                }
            }
            None => self.registry.inject(job),
        }
        JobHandle {
            state,
            registry: Arc::clone(&self.registry),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        let myself = std::thread::current().id();
        for handle in self.handles.drain(..) {
            // The pool can die *on one of its own workers*: a detached
            // job may own the last handle to a structure containing the
            // pool (e.g. an engine dropped while a submit is in
            // flight). Joining ourselves would error ("resource
            // deadlock avoided") and panic inside the job; detach
            // instead — this worker exits its loop normally once the
            // terminating registry drains.
            if handle.thread().id() == myself {
                continue;
            }
            let _ = handle.join();
        }
    }
}

/// Completion state shared between a detached [`ThreadPool::spawn`] job
/// and its [`JobHandle`]. The `result` mutex doubles as the condvar
/// mutex for external waiters, so the store-then-notify in the job and
/// the check-then-wait in the handle can never miss each other.
struct HandleState<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    cond: Condvar,
    done: AtomicBool,
}

/// Completion latch of a detached [`ThreadPool::spawn`] job.
///
/// [`JobHandle::wait`] joins the job and returns its result (rethrowing
/// its panic, as `join` does). A waiter that is itself a worker of the
/// spawning pool does not block: it executes other pool jobs until the
/// latch fires — the same work-stealing wait `join`/`scope` use — so a
/// pool thread can submit work to its own pool and wait on it without
/// deadlock. External threads park on a condvar.
///
/// Dropping the handle without waiting detaches the job; it still runs.
///
/// This goes beyond the rayon API surface (rayon's `ThreadPool::spawn`
/// returns nothing); like [`steal_count`]/[`worker_index`], callers that
/// need it should depend on `fmm-runtime` directly rather than on the
/// `vendor/rayon` facade.
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
    registry: Arc<Registry>,
}

impl<T: Send + 'static> JobHandle<T> {
    /// Has the job finished (successfully or by panicking)?
    pub fn is_done(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }

    /// Block until the job completes and return its result, rethrowing
    /// the job's panic if it had one. On a worker of the spawning pool
    /// this is the same work-stealing wait `join`/`scope` use: the
    /// caller executes other pool jobs, spinning then yielding when
    /// none exist (yields hand the core to whichever thread runs the
    /// awaited job on oversubscribed machines). External threads park
    /// on the handle's condvar.
    pub fn wait(self) -> T {
        if let Some(index) = self.registry.current_index() {
            self.registry.wait_while(index, || !self.is_done());
        } else {
            let mut guard = self.state.result.lock().unwrap();
            while guard.is_none() {
                guard = self.state.cond.wait(guard).unwrap();
            }
        }
        let outcome = self
            .state
            .result
            .lock()
            .unwrap()
            .take()
            .expect("JobHandle latch fired without a result");
        match outcome {
            Ok(value) => value,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The lazily-created global pool ([`default_num_threads`] wide) that
/// serves `join`/`scope`/`spawn` calls made outside any
/// [`ThreadPool::install`].
fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("failed to build the global thread pool")
    })
}

/// Advertised parallelism: the width of the pool the current thread
/// runs in (the global pool outside any [`ThreadPool::install`]).
///
/// Deliberately side-effect free: querying the width does *not* spawn
/// the global pool (a sequential caller sizing its splits should not
/// pay for worker threads it never uses), it only reads the width the
/// pool has or would have.
pub fn current_num_threads() -> usize {
    match WORKER.with(|w| w.get()) {
        // SAFETY: the worker TLS holds its own registry's address, and
        // a registry outlives its workers.
        Some((addr, _)) => unsafe { &*(addr as *const Registry) }.width,
        None => match GLOBAL.get() {
            Some(pool) => pool.current_num_threads(),
            None => default_num_threads(),
        },
    }
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Panics in either closure propagate to the caller.
///
/// On a worker thread, `oper_b` is pushed onto the local deque (where
/// idle workers steal it) while `oper_a` runs inline; if nobody stole
/// it, the worker pops it back and runs it itself — the classic
/// work-stealing `join`. Called from outside a pool, the whole join
/// first migrates onto the global pool.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let worker = WORKER.with(|w| w.get());
    match worker {
        Some((addr, index)) => {
            // SAFETY: the worker TLS holds its own registry's address,
            // and a registry outlives its workers.
            let registry = unsafe { &*(addr as *const Registry) };
            join_on_worker(registry, index, oper_a, oper_b)
        }
        None => global_pool().install(|| join(oper_a, oper_b)),
    }
}

fn join_on_worker<A, B, RA, RB>(registry: &Registry, index: usize, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let latch = SpinLatch::new();
    let job_b = StackJob::new(&latch, oper_b);
    // SAFETY: this frame outlives the job — every path below either
    // executes it or waits for its latch before returning/unwinding.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    if registry.push_local(index, job_b_ref).is_err() {
        // Deque full (pathological fan-out): degrade to sequential.
        let func_b = job_b.take_func();
        return (oper_a(), func_b());
    }

    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    // Resolve b: pop it back if still local (running jobs pushed above
    // it first), otherwise wait for the thief — executing other work
    // the whole time.
    while !latch.probe() {
        match registry.deques[index].pop() {
            Some(job) if job.same_job(job_b_ref) => {
                if result_a.is_err() {
                    // a panicked: discard b rather than running it.
                    drop(job_b.take_func());
                } else {
                    // SAFETY: we popped our own b back — this is its
                    // only copy and only run; the frame is live.
                    unsafe { job.execute() };
                }
                break;
            }
            // SAFETY: a pop yields each pushed job exactly once.
            Some(job) => unsafe { job.execute() },
            None => {
                registry.wait_until(index, &latch);
                break;
            }
        }
    }

    match result_a {
        Ok(ra) => (ra, job_b.into_result()),
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Raw pointer wrapper that asserts cross-thread validity; used to
/// smuggle the scope pointer into erased task closures, which is sound
/// because the scope outlives (blocks on) all of its tasks.
struct SendPtr(*const ());
// SAFETY: only used for the scope pointer, which stays valid on every
// thread because the scope blocks until all of its tasks are done.
unsafe impl Send for SendPtr {}

impl SendPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Send` wrapper, not the raw-pointer field.
    fn get(&self) -> *const () {
        self.0
    }
}

/// Structured task scope handed to [`scope`] closures: every task
/// spawned through it completes before `scope` returns, so tasks may
/// borrow from the enclosing environment (`'scope`).
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    /// Outstanding tasks (+1 virtual token held by the scope body, so
    /// the count cannot reach zero before `complete` runs).
    pending: AtomicUsize,
    /// First task panic, rethrown after all tasks finish.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done_mutex: Mutex<()>,
    done_cond: Condvar,
    /// Invariant over `'scope`, as in rayon.
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    fn new(registry: Arc<Registry>) -> Self {
        Scope {
            registry,
            pending: AtomicUsize::new(1),
            panic: Mutex::new(None),
            done_mutex: Mutex::new(()),
            done_cond: Condvar::new(),
            marker: PhantomData,
        }
    }

    /// Schedule `body` to run on the scope's pool before the scope
    /// ends. Tasks spawned from a worker go to its deque (and get
    /// stolen from there); tasks spawned from other threads go through
    /// the injector.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = SendPtr(self as *const Scope<'scope> as *const ());
        let task = move || {
            // SAFETY: the scope blocks in `wait_all` until `pending`
            // drains, so the pointer is valid for the task's lifetime.
            let scope = unsafe { &*(scope_ptr.get() as *const Scope<'scope>) };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.store_panic(payload);
            }
            scope.task_done(); // must be the task's last touch of the scope
        };
        let job = HeapJob::into_job_ref(task);
        match self.registry.current_index() {
            Some(index) => {
                if let Err(job) = self.registry.push_local(index, job) {
                    // Deque full: run inline; unwind-safety is inside
                    // the closure.
                    // SAFETY: the rejected ref is this HeapJob's only
                    // copy; executing it here is its single run.
                    unsafe { job.execute() };
                }
            }
            None => self.registry.inject(job),
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn task_done(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.done_mutex.lock().unwrap();
            self.done_cond.notify_all();
        }
    }

    /// Block until every spawned task has finished. On a worker this is
    /// a work-stealing wait (executing pending tasks, including this
    /// scope's own); externally it parks on the scope's condvar.
    fn wait_all(&self) {
        // Release the scope body's virtual token.
        self.task_done();
        match self.registry.current_index() {
            Some(index) => {
                let mut idle_spins = 0u32;
                while self.pending.load(Ordering::SeqCst) > 0 {
                    if let Some(job) = self.registry.find_work(index) {
                        // SAFETY: `find_work` hands out each queued job
                        // exactly once, live until run.
                        unsafe { job.execute() };
                        idle_spins = 0;
                    } else if idle_spins < 32 {
                        idle_spins += 1;
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
            None => {
                let mut guard = self.done_mutex.lock().unwrap();
                while self.pending.load(Ordering::SeqCst) > 0 {
                    let (g, _) = self
                        .done_cond
                        .wait_timeout(guard, Duration::from_millis(10))
                        .unwrap();
                    guard = g;
                }
            }
        }
    }
}

/// Structured task scope: every task spawned inside completes before
/// `scope` returns; task panics propagate to the caller. Runs on the
/// current pool, migrating onto the global pool when called from a
/// non-worker thread.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let worker = WORKER.with(|w| w.get());
    match worker {
        Some((addr, _)) => {
            // SAFETY: the worker TLS holds its own registry's address,
            // and a registry outlives its workers.
            let registry = unsafe { &*(addr as *const Registry) };
            // Re-arc through the worker's registry address. SAFETY: the
            // address points into a live Arc<Registry> allocation, so
            // bumping the count and re-wrapping yields a valid handle.
            let registry = unsafe {
                Arc::increment_strong_count(registry as *const Registry);
                Arc::from_raw(registry as *const Registry)
            };
            scope_on(registry, op)
        }
        None => global_pool().install(|| scope(op)),
    }
}

fn scope_on<'scope, OP, R>(registry: Arc<Registry>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope::new(registry);
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    // The scope body's borrows end before wait_all, and every spawned
    // task finishes inside it — even when the body panicked.
    s.wait_all();
    match result {
        Ok(r) => {
            if let Some(payload) = s.panic.lock().unwrap().take() {
                panic::resume_unwind(payload);
            }
            r
        }
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Fire-and-forget task on the current (or global) pool. The closure
/// must be `'static`; a panic inside is caught and reported to stderr
/// rather than taking the worker down.
pub fn spawn<F>(body: F)
where
    F: FnOnce() + Send + 'static,
{
    let job = HeapJob::into_job_ref(move || {
        if panic::catch_unwind(AssertUnwindSafe(body)).is_err() {
            eprintln!("fmm-runtime: detached task panicked (ignored)");
        }
    });
    let worker = WORKER.with(|w| w.get());
    match worker {
        Some((addr, index)) => {
            // SAFETY: the worker TLS holds its own registry's address,
            // and a registry outlives its workers.
            let registry = unsafe { &*(addr as *const Registry) };
            if let Err(job) = registry.push_local(index, job) {
                // SAFETY: deque full — the rejected ref is this
                // HeapJob's only copy; this is its single run.
                unsafe { job.execute() };
            }
        }
        None => global_pool().registry.inject(job),
    }
}
