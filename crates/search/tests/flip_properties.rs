//! Property tests for the flip-graph move algebra (ISSUE satellite):
//! flips preserve the Brent equations identically in ℤ, reductions drop
//! rank by exactly one per merge, and the canonical-form hash is
//! invariant under term permutations and sign relabelings.

use fmm_search::{apply_flip, reduce_all, split, FlipMove, IntScheme, Slot};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small base cases to exercise; kept tiny so the reconstruction check
/// (`is_valid` multiplies out the full tensor) stays fast per case.
const BASES: [(usize, usize, usize); 4] = [(2, 2, 2), (2, 2, 3), (2, 3, 3), (3, 3, 3)];

fn random_move(rng: &mut StdRng, rank: usize) -> FlipMove {
    let r = rng.gen_range(0..rank);
    let mut s = rng.gen_range(0..rank - 1);
    if s >= r {
        s += 1;
    }
    FlipMove {
        r,
        s,
        slot: Slot::ALL[rng.gen_range(0..3usize)],
        variant: rng.gen_bool(0.5),
        negate: rng.gen_bool(0.5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every applied flip leaves the represented tensor — i.e. all
    /// (mk)(kn)(mn) Brent equations — identically satisfied over ℤ.
    #[test]
    fn flips_preserve_brent_equations(base in 0usize..4, seed in 0u64..1 << 48) {
        let (m, k, n) = BASES[base];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scheme = IntScheme::classical(m, k, n);
        let mut applied = 0;
        for _ in 0..200 {
            let mv = random_move(&mut rng, scheme.rank());
            if apply_flip(&mut scheme, mv, 3).is_some() {
                applied += 1;
                prop_assert!(scheme.is_valid(), "flip #{applied} broke a Brent equation");
            }
        }
        prop_assert!(applied > 0, "no flip applied in 200 draws from classical");
    }

    /// A split adds exactly one term; the reduction that merges the two
    /// halves back drops rank by exactly one and restores validity.
    #[test]
    fn reductions_drop_rank_by_exactly_one(base in 0usize..4, seed in 0u64..1 << 48) {
        let (m, k, n) = BASES[base];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scheme = IntScheme::classical(m, k, n);
        let rank0 = scheme.rank();
        let r = rng.gen_range(0..rank0);
        let slot = Slot::ALL[rng.gen_range(0..3usize)];
        let len = match slot {
            Slot::A => m * k,
            Slot::B => k * n,
            Slot::C => m * n,
        };
        let mut d = vec![0i32; len];
        d[rng.gen_range(0..len)] = if rng.gen_bool(0.5) { 1 } else { -1 };
        if !split(&mut scheme, r, slot, &d, 2) {
            // d equalled the factor or zeroed a part: nothing to test.
            return Ok(());
        }
        prop_assert_eq!(scheme.rank(), rank0 + 1);
        prop_assert!(scheme.is_valid(), "split broke the tensor");
        let removed = reduce_all(&mut scheme, 2);
        // The split pair must merge back as exactly one reduction.
        prop_assert_eq!(removed, 1);
        prop_assert_eq!(scheme.rank(), rank0);
        prop_assert!(scheme.is_valid(), "reduction broke the tensor");
    }

    /// The canonical hash ignores term order and per-term sign-orbit
    /// relabelings (negating two of a term's three factors), while both
    /// rewrites leave the scheme valid.
    #[test]
    fn canonical_hash_is_relabeling_invariant(base in 0usize..4, seed in 0u64..1 << 48) {
        let (m, k, n) = BASES[base];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scheme = IntScheme::classical(m, k, n);
        // Walk a few flips first so the hashed state is not the highly
        // symmetric classical scheme.
        for _ in 0..40 {
            let mv = random_move(&mut rng, scheme.rank());
            let _ = apply_flip(&mut scheme, mv, 2);
        }
        let reference = scheme.canonical_hash();

        // Fisher–Yates shuffle of the terms.
        let mut relabeled = scheme.clone();
        for i in (1..relabeled.terms.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            relabeled.terms.swap(i, j);
        }
        // Random sign-orbit relabel per term: negate two of the three
        // factors, which preserves the rank-one term exactly.
        for term in &mut relabeled.terms {
            let pair = rng.gen_range(0..4usize);
            let (fst, snd): (&mut Vec<i32>, &mut Vec<i32>) = match pair {
                0 => (&mut term.a, &mut term.b),
                1 => (&mut term.a, &mut term.c),
                2 => (&mut term.b, &mut term.c),
                _ => continue,
            };
            fst.iter_mut().for_each(|x| *x = -*x);
            snd.iter_mut().for_each(|x| *x = -*x);
        }
        prop_assert!(relabeled.is_valid(), "relabeling must preserve the tensor");
        prop_assert_eq!(relabeled.canonical_hash(), reference);
    }
}
