//! Alternating least squares for CP decomposition of matmul tensors.

use fmm_matrix::Matrix;
use fmm_tensor::linalg::{khatri_rao, ridge_solve, ridge_solve_toward};
use fmm_tensor::{Decomposition, Tensor3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options controlling one ALS run.
#[derive(Debug, Clone, Copy)]
pub struct AlsOptions {
    /// Maximum number of full (U,V,W) sweeps.
    pub max_sweeps: usize,
    /// Stop when the Frobenius residual drops below this value.
    pub target_residual: f64,
    /// Initial ridge-regularization weight (paper: Smirnov's penalty).
    pub reg_start: f64,
    /// Multiplicative decay of the regularization per sweep.
    pub reg_decay: f64,
    /// Floor for the regularization weight.
    pub reg_floor: f64,
    /// Every `snap_every` sweeps, project entries near small dyadic
    /// rationals onto them (0 disables). This "discretization during
    /// the iteration" mirrors the paper's §2.3.2 sparsification trick
    /// and helps ALS escape the swamps that plague matmul tensors.
    pub snap_every: usize,
    /// Weight of the attraction penalty `μ‖X − snap(X)‖²` added to
    /// each half-step (0 disables): the soft, Smirnov-style version of
    /// snapping that pulls factors toward discrete values without hard
    /// projections.
    pub attract: f64,
}

impl Default for AlsOptions {
    fn default() -> Self {
        AlsOptions {
            max_sweeps: 1500,
            target_residual: 1e-10,
            reg_start: 5e-3,
            reg_decay: 0.92,
            reg_floor: 1e-13,
            snap_every: 0,
            attract: 0.0,
        }
    }
}

/// Convergence report of a single ALS run.
#[derive(Debug, Clone)]
pub struct AlsReport {
    /// Frobenius-norm residual after the final sweep.
    pub residual: f64,
    /// Number of sweeps executed.
    pub sweeps: usize,
    /// Whether `target_residual` was reached.
    pub converged: bool,
}

/// Frobenius residual `‖T − ⟦U,V,W⟧‖_F`.
pub fn frob_residual(t: &Tensor3, u: &Matrix, v: &Matrix, w: &Matrix) -> f64 {
    let [i_dim, j_dim, k_dim] = t.dims();
    let r = u.cols();
    let mut s = 0.0;
    for i in 0..i_dim {
        for j in 0..j_dim {
            for k in 0..k_dim {
                let mut val = 0.0;
                for c in 0..r {
                    val += u[(i, c)] * v[(j, c)] * w[(k, c)];
                }
                let d = val - t.get(i, j, k);
                s += d * d;
            }
        }
    }
    s.sqrt()
}

/// Run ALS from the given starting factors, mutating them in place.
///
/// Each half-step solves a ridge-regularized linear least-squares
/// problem with the Khatri–Rao product of the two fixed factors as the
/// design matrix; the regularization decays geometrically so early
/// sweeps are stabilized and late sweeps converge to the unpenalized
/// solution (the paper's "adjusting the regularization penalty term
/// throughout the iteration").
pub fn als_fit(
    t: &Tensor3,
    u: &mut Matrix,
    v: &mut Matrix,
    w: &mut Matrix,
    opts: &AlsOptions,
) -> AlsReport {
    let x1t = t.unfold1().transpose();
    let x2t = t.unfold2().transpose();
    let x3t = t.unfold3().transpose();
    let mut lambda = opts.reg_start;
    let mut residual = frob_residual(t, u, v, w);
    let mut sweeps = 0;
    let mut last_check = residual;

    let snap_matrix = |mat: &Matrix| -> Matrix {
        let mut t = mat.clone();
        for x in t.as_mut_slice() {
            let doubled = (*x * 2.0).round() / 2.0;
            *x = if doubled.abs() <= 2.0 {
                doubled
            } else {
                x.round()
            };
        }
        t
    };
    for sweep in 0..opts.max_sweeps {
        sweeps = sweep + 1;
        let half_solve = |design: &Matrix, rhs: &Matrix, cur: &Matrix| -> Option<Matrix> {
            if opts.attract > 0.0 {
                let target = snap_matrix(&cur.transpose());
                ridge_solve_toward(design, rhs, lambda, opts.attract, &target)
            } else {
                ridge_solve(design, rhs, lambda)
            }
        };
        // U update: X(1)ᵀ ≈ KR(V,W)·Uᵀ
        if let Some(ut) = half_solve(&khatri_rao(v, w), &x1t, u) {
            *u = ut.transpose();
        }
        // V update: X(2)ᵀ ≈ KR(U,W)·Vᵀ
        if let Some(vt) = half_solve(&khatri_rao(u, w), &x2t, v) {
            *v = vt.transpose();
        }
        // W update: X(3)ᵀ ≈ KR(U,V)·Wᵀ
        if let Some(wt) = half_solve(&khatri_rao(u, v), &x3t, w) {
            *w = wt.transpose();
        }
        lambda = (lambda * opts.reg_decay).max(opts.reg_floor);
        residual = frob_residual(t, u, v, w);
        if residual < opts.target_residual {
            return AlsReport {
                residual,
                sweeps,
                converged: true,
            };
        }
        if opts.snap_every > 0 && sweep % opts.snap_every == opts.snap_every - 1 && residual < 0.2 {
            for mat in [&mut *u, &mut *v, &mut *w] {
                for x in mat.as_mut_slice() {
                    if x.abs() < 0.08 {
                        *x = 0.0;
                        continue;
                    }
                    for q in [1.0f64, 2.0] {
                        let scaled = *x * q;
                        if (scaled - scaled.round()).abs() < 0.12 * q {
                            *x = scaled.round() / q;
                            break;
                        }
                    }
                }
            }
            residual = frob_residual(t, u, v, w);
        }
        // Abort restarts that are stuck at a high plateau: no meaningful
        // progress over 60 sweeps while still far from a solution.
        // (Disabled in snap mode: projections cause residual jumps that
        // look like stagnation but often precede convergence.)
        if opts.snap_every == 0 && sweep % 60 == 59 {
            if residual > 0.05 && residual > 0.995 * last_check {
                break;
            }
            last_check = residual;
        }
    }
    AlsReport {
        residual,
        sweeps,
        converged: false,
    }
}

/// Draw a random starting point with entries in `{-1, -1/2, 0, 1/2, 1}`
/// biased toward sparsity — matmul-tensor decompositions are sparse and
/// discrete, so discrete-ish inits converge to roundable solutions far
/// more often than Gaussian ones.
pub fn random_init(rows: usize, rank: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, rank, |_, _| {
        let roll: f64 = rng.gen();
        if roll < 0.45 {
            0.0
        } else if roll < 0.65 {
            1.0
        } else if roll < 0.85 {
            -1.0
        } else if roll < 0.925 {
            0.5
        } else {
            -0.5
        }
    })
}

/// Convenience: run ALS from a seeded random start for `⟨m,k,n⟩` at
/// rank `r`, returning the fitted candidate and its report.
pub fn als_from_random(
    m: usize,
    k: usize,
    n: usize,
    rank: usize,
    seed: u64,
    opts: &AlsOptions,
) -> (Decomposition, AlsReport) {
    let t = fmm_tensor::matmul_tensor(m, k, n);
    let mut rng = StdRng::seed_from_u64(seed);
    // Alternate between sparse-discrete and continuous starting points:
    // discrete inits often land in roundable basins, continuous ones
    // avoid the degenerate stalls discrete inits occasionally hit.
    let (mut u, mut v, mut w) = if seed.is_multiple_of(2) {
        (
            random_init(m * k, rank, &mut rng),
            random_init(k * n, rank, &mut rng),
            random_init(m * n, rank, &mut rng),
        )
    } else {
        let mut cont = |rows: usize| Matrix::from_fn(rows, rank, |_, _| rng.gen_range(-1.0..1.0));
        (cont(m * k), cont(k * n), cont(m * n))
    };
    // Guard against an all-zero column which makes the LS problem singular.
    for mat in [&mut u, &mut v, &mut w] {
        for c in 0..rank {
            if (0..mat.rows()).all(|i| mat[(i, c)] == 0.0) {
                let row = rng.gen_range(0..mat.rows());
                mat[(row, c)] = 1.0;
            }
        }
    }
    let report = als_fit(&t, &mut u, &mut v, &mut w, opts);
    (Decomposition::new(m, k, n, u, v, w), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn als_descends_from_random_start() {
        let t = fmm_tensor::matmul_tensor(2, 2, 2);
        let mut rng = StdRng::seed_from_u64(17);
        let mut u = random_init(4, 8, &mut rng);
        let mut v = random_init(4, 8, &mut rng);
        let mut w = random_init(4, 8, &mut rng);
        let before = frob_residual(&t, &u, &v, &w);
        let report = als_fit(
            &t,
            &mut u,
            &mut v,
            &mut w,
            &AlsOptions {
                max_sweeps: 50,
                ..Default::default()
            },
        );
        assert!(report.residual <= before + 1e-9, "ALS must not diverge");
    }

    #[test]
    fn rank_eight_classical_fits_exactly() {
        // Rank mkn always admits the classical decomposition, so ALS
        // should reach numerical zero quickly at that rank.
        let opts = AlsOptions::default();
        let mut best = f64::INFINITY;
        for seed in 0..12 {
            let (_, report) = als_from_random(2, 2, 2, 8, seed, &opts);
            best = best.min(report.residual);
            if report.converged {
                break;
            }
        }
        assert!(best < 1e-8, "best residual {best}");
    }

    #[test]
    fn attraction_keeps_exact_solutions_exact() {
        // Starting AT an exact discrete decomposition, the attraction
        // penalty must not push the iteration away from it.
        let t = fmm_tensor::matmul_tensor(2, 2, 2);
        let c = fmm_tensor::compose::classical(2, 2, 2);
        let (mut u, mut v, mut w) = (c.u.clone(), c.v.clone(), c.w.clone());
        let opts = AlsOptions {
            max_sweeps: 30,
            attract: 1e-2,
            reg_start: 0.0,
            ..Default::default()
        };
        let report = als_fit(&t, &mut u, &mut v, &mut w, &opts);
        assert!(report.residual < 1e-9, "residual {}", report.residual);
    }

    #[test]
    fn frob_residual_zero_for_exact() {
        let t = fmm_tensor::matmul_tensor(2, 3, 2);
        let c = fmm_tensor::compose::classical(2, 3, 2);
        assert_eq!(frob_residual(&t, &c.u, &c.v, &c.w), 0.0);
    }
}
